//! Recovery-rate models for replication vs erasure-coded checkpointing.
//!
//! Reproduces the paper's reliability analysis (§II-B Eqns. 1–2, Fig. 3,
//! and §V-G Fig. 15): with independent per-node failure probability `p`,
//!
//! * an erasure-coded group of `n` nodes with `m` parity nodes recovers
//!   iff at most `m` nodes fail ([`ec_recovery`]);
//! * a GEMINI-style pairwise-replication group of `n` nodes (the same
//!   2× redundancy) recovers iff no replication *pair* loses both
//!   members ([`replication_pairs_recovery`]);
//! * a whole cluster of `g` independent groups recovers iff every group
//!   does ([`cluster_recovery`]).
//!
//! Every closed form is cross-validated against Monte-Carlo sampling in
//! the test suite.
//!
//! # Examples
//!
//! ```
//! use ecc_reliability::{ec_recovery, replication_pairs_recovery};
//!
//! // Paper §II-B: R_era - R_rep = 2 p² (1-p)² for a 4-node group.
//! let p = 0.1;
//! let diff = ec_recovery(4, 2, p) - replication_pairs_recovery(4, p);
//! assert!((diff - 2.0 * p * p * (1.0 - p) * (1.0 - p)).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Natural log of `n!`, via a cumulative table (exact enough for the
/// cluster sizes the paper considers, up to thousands of nodes).
fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|k| (k as f64).ln()).sum()
}

/// `C(n, k) · p^k · (1-p)^(n-k)` computed in log space for numerical
/// stability at cluster scale (e.g. `n = 2000`).
///
/// # Panics
///
/// Panics when `k > n` or `p` is outside `[0, 1]`.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    assert!(k <= n, "k must not exceed n");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
        + k as f64 * p.ln()
        + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// Recovery rate of an erasure-coded group: `n` nodes, any `m` of which
/// may fail concurrently (paper Eqn. 2 generalised).
///
/// # Panics
///
/// Panics when `m >= n` or `p` is outside `[0, 1]`.
pub fn ec_recovery(n: usize, m: usize, p: f64) -> f64 {
    assert!(m < n, "parity count must be smaller than the group");
    (0..=m).map(|i| binomial_pmf(n, i, p)).sum()
}

/// Recovery rate of GEMINI-style pairwise replication over `n` nodes
/// (nodes paired; each node mirrors its partner's checkpoint): recovery
/// succeeds iff no pair loses both members. Closed form (paper §V-G):
/// `Σ_{i=0}^{n/2} C(n/2, i) · 2^i · p^i · (1-p)^(n-i)`.
///
/// # Panics
///
/// Panics when `n` is odd or `p` is outside `[0, 1]`.
pub fn replication_pairs_recovery(n: usize, p: f64) -> f64 {
    assert!(n.is_multiple_of(2), "pairwise replication needs an even group size");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p == 0.0 {
        return 1.0;
    }
    if p == 1.0 {
        return if n == 0 { 1.0 } else { 0.0 };
    }
    let half = n / 2;
    (0..=half)
        .map(|i| {
            let ln = ln_factorial(half) - ln_factorial(i) - ln_factorial(half - i)
                + i as f64 * (2.0 * p).ln()
                + (n - i) as f64 * (1.0 - p).ln();
            ln.exp()
        })
        .sum()
}

/// Recovery rate of a cluster of `groups` independent groups, each with
/// per-group recovery rate `group_rate` — any group failure renders
/// recovery impossible (paper Fig. 3's `R^500`).
///
/// # Panics
///
/// Panics when `group_rate` is outside `[0, 1]`.
pub fn cluster_recovery(group_rate: f64, groups: usize) -> f64 {
    assert!((0.0..=1.0).contains(&group_rate), "rate must be a probability");
    group_rate.powi(groups as i32)
}

/// Monte-Carlo estimate of a recovery rate: samples `trials` independent
/// failure patterns of `n` nodes and counts those where `recoverable`
/// returns `true`. Deterministic for a given seed.
pub fn monte_carlo_recovery(
    n: usize,
    p: f64,
    trials: usize,
    seed: u64,
    mut recoverable: impl FnMut(&[bool]) -> bool,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ok = 0usize;
    let mut failed = vec![false; n];
    for _ in 0..trials {
        for f in failed.iter_mut() {
            *f = rng.gen_bool(p);
        }
        if recoverable(&failed) {
            ok += 1;
        }
    }
    ok as f64 / trials as f64
}

/// Predicate for [`monte_carlo_recovery`]: an erasure-coded group
/// tolerating up to `m` failures.
pub fn ec_predicate(m: usize) -> impl FnMut(&[bool]) -> bool {
    move |failed| failed.iter().filter(|&&f| f).count() <= m
}

/// Predicate for [`monte_carlo_recovery`]: pairwise replication over
/// consecutive pairs `(0,1), (2,3), …`.
pub fn pairs_predicate() -> impl FnMut(&[bool]) -> bool {
    |failed| failed.chunks(2).all(|pair| !pair.iter().all(|&f| f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eqn1_matches_paper_expansion() {
        // R_rep = (1-p)^4 + 4p(1-p)^3 + (C(4,2)-2) p²(1-p)².
        for p in [0.01, 0.05, 0.1, 0.3, 0.5] {
            let q: f64 = 1.0 - p;
            let expected = q.powi(4) + 4.0 * p * q.powi(3) + 4.0 * p * p * q * q;
            let got = replication_pairs_recovery(4, p);
            assert!((got - expected).abs() < 1e-12, "p={p}: {got} vs {expected}");
        }
    }

    #[test]
    fn eqn2_matches_paper_expansion() {
        // R_era = (1-p)^4 + 4p(1-p)^3 + 6p²(1-p)².
        for p in [0.01, 0.05, 0.1, 0.3, 0.5] {
            let q: f64 = 1.0 - p;
            let expected = q.powi(4) + 4.0 * p * q.powi(3) + 6.0 * p * p * q * q;
            let got = ec_recovery(4, 2, p);
            assert!((got - expected).abs() < 1e-12, "p={p}: {got} vs {expected}");
        }
    }

    #[test]
    fn era_minus_rep_is_2p2q2() {
        for p in [0.0, 0.02, 0.1, 0.25, 0.5, 0.9, 1.0] {
            let q: f64 = 1.0 - p;
            let diff = ec_recovery(4, 2, p) - replication_pairs_recovery(4, p);
            assert!((diff - 2.0 * p * p * q * q).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn monte_carlo_confirms_closed_forms() {
        let p = 0.15;
        let trials = 200_000;
        let mc_ec = monte_carlo_recovery(4, p, trials, 1, ec_predicate(2));
        let mc_rep = monte_carlo_recovery(4, p, trials, 2, pairs_predicate());
        assert!((mc_ec - ec_recovery(4, 2, p)).abs() < 0.005, "EC mc={mc_ec}");
        assert!((mc_rep - replication_pairs_recovery(4, p)).abs() < 0.005, "rep mc={mc_rep}");
    }

    #[test]
    fn larger_groups_amplify_the_gap() {
        // Fig. 15: the EC advantage grows with n at equal redundancy.
        let p = 0.1;
        let mut last_gap = 0.0;
        for n in [4usize, 8, 16, 32] {
            let gap = ec_recovery(n, n / 2, p) - replication_pairs_recovery(n, p);
            assert!(gap >= last_gap, "gap should grow with n (n={n})");
            last_gap = gap;
        }
    }

    #[test]
    fn cluster_compounding() {
        // Fig. 3: 2000 nodes = 500 groups of 4.
        let p = 0.05;
        let rep = cluster_recovery(replication_pairs_recovery(4, p), 500);
        let era = cluster_recovery(ec_recovery(4, 2, p), 500);
        assert!(era > rep);
        assert!((0.0..=1.0).contains(&rep) && (0.0..=1.0).contains(&era));
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for (n, p) in [(10usize, 0.3), (100, 0.01), (2000, 0.001)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn edge_probabilities() {
        assert_eq!(ec_recovery(4, 2, 0.0), 1.0);
        assert!(ec_recovery(4, 2, 1.0).abs() < 1e-12);
        assert_eq!(replication_pairs_recovery(4, 0.0), 1.0);
        assert!(replication_pairs_recovery(4, 1.0).abs() < 1e-12);
        assert_eq!(cluster_recovery(1.0, 500), 1.0);
    }

    proptest! {
        /// EC with m = n/2 always beats (or ties) pairwise replication —
        /// the paper's core reliability claim — and both are probabilities.
        #[test]
        fn prop_ec_dominates_replication(
            half in 1usize..12,
            p in 0.0f64..1.0,
        ) {
            let n = 2 * half;
            let ec = ec_recovery(n, half, p);
            let rep = replication_pairs_recovery(n, p);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ec));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&rep));
            prop_assert!(ec >= rep - 1e-12, "n={n} p={p}: ec={ec} rep={rep}");
        }

        /// Recovery rates decrease monotonically in p.
        #[test]
        fn prop_monotone_in_p(
            half in 1usize..8,
            p1 in 0.0f64..1.0,
            p2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let n = 2 * half;
            prop_assert!(ec_recovery(n, half, lo) >= ec_recovery(n, half, hi) - 1e-12);
            prop_assert!(
                replication_pairs_recovery(n, lo) >= replication_pairs_recovery(n, hi) - 1e-12
            );
        }
    }
}
