//! Bit-exact snapshot → exposition → parse round trip.
//!
//! Every counter and every histogram bucket/sum/count in a
//! [`Recorder`] snapshot must survive rendering to the Prometheus text
//! format and parsing back with its exact `u64` value — no float
//! precision loss anywhere on the scrape path.

use ecc_obs::{parse_exposition, sanitize_metric_name, MetricValue, ObsHub, ObsHubConfig};
use ecc_telemetry::{HistogramSnapshot, Recorder};

#[test]
fn snapshot_round_trips_bit_exactly_through_the_exposition() {
    let (recorder, clock) = Recorder::with_manual_clock();
    clock.set_ns(7);

    // Counters crossing the f64 exact-integer boundary (2^53) — the
    // round trip must preserve them anyway, because integral values
    // render and parse as u64, never through a float.
    let counters = [
        ("ecc.save.calls", 3u64),
        ("ecc.save.bytes_encoded", (1u64 << 53) + 1),
        ("ecc.save.traffic_bytes", u64::MAX),
    ];
    for (name, v) in counters {
        recorder.counter(name).add(v);
    }

    // Histogram samples spread across many power-of-two buckets,
    // including 0, bucket edges, and a huge outlier.
    let samples = [0u64, 1, 2, 3, 4, 1023, 1024, 1025, 250_000_000, (1u64 << 53) + 5];
    for &s in &samples {
        recorder.record("ecc.save.ns", s);
    }

    let snapshot = recorder.snapshot();
    let hub = ObsHub::new(recorder, ObsHubConfig::default());
    let text = hub.render_metrics();
    let scrape = parse_exposition(&text).expect("rendered exposition must parse");

    // Every counter: exact u64 equality.
    for (name, _) in counters {
        let value = snapshot.counters.get(name).copied().expect("counter in snapshot");
        let fam = format!("{}_total", sanitize_metric_name(name));
        assert_eq!(
            scrape.value(&fam),
            Some(&MetricValue::Int(value)),
            "counter {name} must round-trip exactly"
        );
    }

    // Every histogram: per-bucket cumulative counts, sum, and count.
    for (name, hist) in &snapshot.histograms {
        let fam = sanitize_metric_name(name);
        assert_eq!(
            scrape.value(&format!("{fam}_sum")),
            Some(&MetricValue::Int(hist.sum)),
            "histogram {name} sum must round-trip exactly"
        );
        assert_eq!(
            scrape.value(&format!("{fam}_count")),
            Some(&MetricValue::Int(hist.count)),
            "histogram {name} count must round-trip exactly"
        );
        let mut buckets = hist.buckets.clone();
        buckets.sort_unstable_by_key(|&(i, _)| i);
        let mut cumulative = 0u64;
        for (index, count) in buckets {
            cumulative += count;
            let le = HistogramSnapshot::bucket_upper_bound(index).to_string();
            let sample = scrape
                .labeled(&format!("{fam}_bucket"), &[("le", &le)])
                .unwrap_or_else(|| panic!("bucket le={le} of {name} missing"));
            assert_eq!(sample.value, MetricValue::Int(cumulative));
            // The bucket's cumulative count must agree with the
            // snapshot-side accessor used by the SLO tracker.
            assert_eq!(
                cumulative as f64,
                hist.count_le(HistogramSnapshot::bucket_upper_bound(index))
            );
        }
        let inf = scrape
            .labeled(&format!("{fam}_bucket"), &[("le", "+Inf")])
            .expect("terminal +Inf bucket");
        assert_eq!(inf.value, MetricValue::Int(hist.count));
    }

    // The sum here exceeds 2^53: a float-mediated path would corrupt it.
    let save_ns = snapshot.histograms.get("ecc.save.ns").expect("histogram");
    assert!(save_ns.sum > (1u64 << 53));
}

#[test]
fn label_escaping_and_utf8_survive_the_parser() {
    use ecc_obs::ExpositionBuilder;

    let cases = [
        ("backslash", r"a\b"),
        ("quote", r#"say "hi""#),
        ("newline", "line\nbreak"),
        ("utf8", "héllo→世界"),
        ("mixed", "q\"\\\nü"),
    ];
    let mut b = ExpositionBuilder::new();
    b.family("escaping_probe", "gauge", "Label-escaping probe.");
    for (key, value) in cases {
        b.sample("escaping_probe", &[("case", key), ("payload", value)], MetricValue::Int(1));
    }
    let text = b.finish();

    // Escapes on the wire: backslash, quote, and newline must appear in
    // their escaped forms, never raw inside a label value.
    assert!(text.contains(r#"payload="a\\b""#), "backslash must escape: {text}");
    assert!(text.contains(r#"\"hi\""#), "quotes must escape: {text}");
    assert!(text.contains(r#"line\nbreak"#), "newlines must escape: {text}");
    assert!(text.contains("héllo→世界"), "UTF-8 passes through unescaped: {text}");

    let scrape = parse_exposition(&text).expect("escaped document parses");
    for (key, value) in cases {
        let sample = scrape
            .labeled("escaping_probe", &[("case", key)])
            .unwrap_or_else(|| panic!("case {key} missing"));
        assert_eq!(
            sample.labels.get("payload").map(String::as_str),
            Some(value),
            "payload for case {key} must round-trip"
        );
    }
}
