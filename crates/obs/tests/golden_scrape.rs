//! Golden-scrape regression tests: a fixed workload on a [`ManualClock`]
//! recorder must render the exact same `/metrics` document on every
//! run, and the text-exposition parser must validate its UTF-8, label
//! escaping, and HELP/TYPE ordering.

use ecc_cluster::{HealthConfig, HealthRegistry};
use ecc_obs::{parse_exposition, MetricValue, ObsHub, ObsHubConfig, SloSpec};
use ecc_telemetry::Recorder;

/// Builds a hub over a deterministic ManualClock workload: two saves,
/// one load, a couple of events (one with non-ASCII detail), and a
/// health registry with one dead node.
fn golden_hub() -> ObsHub {
    let (recorder, clock) = Recorder::with_manual_clock();
    clock.set_ns(1_000);

    recorder.counter("ecc.save.calls").add(2);
    recorder.counter("ecc.save.bytes_encoded").add(8_192);
    recorder.counter("ecc.save.traffic_bytes").add(16_384);
    // Both samples sit in the 64–134ms power-of-two bucket, whose upper
    // bound is below the 250ms SLO threshold — so the latency objective
    // counts them as fully compliant (no partial-bucket interpolation).
    recorder.record("ecc.save.ns", 100_000_000);
    recorder.record("ecc.save.ns", 130_000_000);
    recorder.record("ecc.load.ns", 700_000_000);
    recorder.event("ecc.save", "version=1 packets_per_worker=4 flushed=false");
    recorder.event("chaos.fault.crash_nodes", "nodes [2] — zählt als Ausfall ✓");

    let health =
        HealthRegistry::new(4, HealthConfig { suspect_after_ns: 5_000, dead_after_ns: 10_000 });
    for node in 0..4 {
        health.record_heartbeat(node, 1_000);
    }
    health.mark_dead(2, 1_500);
    clock.set_ns(2_000);

    let slos = vec![
        SloSpec::latency(
            "save_stall",
            "99% of saves within 250ms",
            "ecc.save.ns",
            250_000_000,
            0.99,
        ),
        SloSpec::ratio(
            "traffic",
            "traffic within the m*s*W bound",
            "ecc.save.traffic_bytes",
            "ecc.save.bytes_encoded",
            2.0,
        ),
    ];
    ObsHub::new(recorder, ObsHubConfig { slos, ..ObsHubConfig::default() }).with_health(health)
}

#[test]
fn golden_manual_clock_scrape_is_byte_identical_across_runs() {
    let first = golden_hub().render_metrics();
    let second = golden_hub().render_metrics();
    assert_eq!(first, second, "independent runs of the same workload must render identical bytes");

    // Pin the exact headline lines so a formatting drift (float
    // rendering, label order, sanitization) fails loudly.
    for line in [
        "ecc_save_calls_total 2",
        "ecc_save_bytes_encoded_total 8192",
        "ecc_save_traffic_bytes_total 16384",
        "ecc_save_ns_count 2",
        "ecc_save_ns_sum 230000000",
        "ecc_node_health{node=\"2\"} 0",
        "ecc_health_transitions_total{to=\"dead\"} 1",
        "ecc_slo_burn_rate{slo=\"traffic\"} 1",
        "ecc_slo_breached{slo=\"save_stall\"} 0",
    ] {
        assert!(first.lines().any(|l| l == line), "expected exact line {line:?} in:\n{first}");
    }
}

#[test]
fn golden_scrape_parses_and_validates_ordering() {
    let text = golden_hub().render_metrics();
    let scrape = parse_exposition(&text).expect("golden scrape must be valid exposition");
    assert!(!scrape.samples.is_empty());

    // HELP must directly precede TYPE for every family, and every
    // sample must belong to the most recently declared family (the
    // parser enforces contiguity; this re-checks the raw layout).
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let fam = rest.split_whitespace().next().expect("family name");
            let prev = lines.get(i.wrapping_sub(1)).copied().unwrap_or("");
            assert!(
                prev.starts_with(&format!("# HELP {fam} ")),
                "TYPE for {fam} must be directly preceded by its HELP, got {prev:?}"
            );
        }
    }

    // The document is valid UTF-8 by construction (String); the event
    // with non-ASCII detail must not have leaked into metric names.
    for s in &scrape.samples {
        assert!(s.name.is_ascii(), "metric names must stay ASCII, got {:?}", s.name);
    }
}

#[test]
fn golden_scrape_windows_and_slos_are_exact() {
    let scrape = parse_exposition(&golden_hub().render_metrics()).expect("valid");

    // Both save samples fall in the window; the p99 interpolates inside
    // the 64–134ms power-of-two bucket, so it must land in that range.
    let p99 = scrape
        .labeled("ecc_save_ns_window", &[("quantile", "0.99")])
        .expect("windowed p99 present");
    match p99.value {
        MetricValue::Float(v) => {
            assert!((67_108_864.0..=134_217_727.0).contains(&v), "p99 {v} outside its bucket")
        }
        ref other => panic!("expected float p99, got {other:?}"),
    }
    assert_eq!(
        scrape.labeled("ecc_save_ns_window", &[("stat", "count")]).map(|s| &s.value),
        Some(&MetricValue::Int(2))
    );

    // Traffic SLO: 16384 <= 2.0 * 8192 exactly -> burn rate exactly 1
    // (integral floats render bare, so the parser reads them as ints).
    let burn = scrape.labeled("ecc_slo_burn_rate", &[("slo", "traffic")]).expect("traffic burn");
    assert_eq!(burn.value, MetricValue::Int(1));

    // save_stall: both saves under 250ms -> fully compliant, burn 0.
    let stall = scrape.labeled("ecc_slo_burn_rate", &[("slo", "save_stall")]).expect("stall burn");
    assert_eq!(stall.value, MetricValue::Int(0));
}

#[test]
fn events_endpoint_carries_the_utf8_detail() {
    let hub = golden_hub();
    hub.refresh();
    let json = hub.render_events_json();
    assert!(json.contains("zählt als Ausfall ✓"), "UTF-8 event detail must survive: {json}");
    assert!(json.contains("\"severity\":\"error\""), "crash fault must classify as error: {json}");
}
