//! `ecc-top` — a one-screen terminal dashboard over a live exporter.
//!
//! Scrapes `/metrics` (and `/events`) from a running `ecc-obs` endpoint
//! and renders windowed phase quantiles, per-node health, and SLO burn
//! rates. `--once` prints a single frame and exits (used by CI and the
//! README sample); otherwise the screen refreshes every
//! `--interval-ms`.
//!
//! ```text
//! ecc-top --addr 127.0.0.1:9184 --interval-ms 2000
//! ```

use std::collections::BTreeMap;

use ecc_obs::{http_get, parse_exposition, MetricValue};
use ecc_telemetry::fmt_ns;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return args.get(i + 1).cloned();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

fn as_f64(v: &MetricValue) -> f64 {
    match v {
        MetricValue::Int(i) => *i as f64,
        MetricValue::Float(f) => *f,
        MetricValue::Inf => f64::INFINITY,
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn render_frame(addr: &str) -> Result<String, std::io::Error> {
    let metrics = http_get(addr, "/metrics")?;
    let scrape = parse_exposition(&metrics)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let events = http_get(addr, "/events").unwrap_or_default();

    let mut out = String::new();
    let scrapes = scrape.value("ecc_obs_scrapes_total").map(as_f64).unwrap_or(0.0);
    out.push_str(&format!("ecc-top — {addr}  (scrape #{scrapes:.0})\n\n"));

    // Headline counters.
    let counter = |name: &str| scrape.value(name).map(as_f64).unwrap_or(0.0);
    out.push_str(&format!(
        "saves {}   loads {}   encoded {}B   traffic {}B   recoveries {}\n\n",
        fmt_count(counter("ecc_save_calls_total")),
        fmt_count(counter("ecc_load_calls_total")),
        fmt_count(counter("ecc_save_bytes_encoded_total")),
        fmt_count(counter("ecc_save_traffic_bytes_total")),
        fmt_count(counter("ecc_load_recovered_total")),
    ));

    // Windowed phase quantiles: every `<base>_window` family.
    out.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}\n",
        "phase (window)", "p50", "p95", "p99", "samples"
    ));
    let mut families: BTreeMap<&str, BTreeMap<&str, f64>> = BTreeMap::new();
    for s in &scrape.samples {
        if let Some(base) = s.name.strip_suffix("_window") {
            let entry = families.entry(base).or_default();
            if let Some(q) = s.labels.get("quantile") {
                entry.insert(
                    match q.as_str() {
                        "0.5" => "p50",
                        "0.95" => "p95",
                        "0.99" => "p99",
                        _ => continue,
                    },
                    as_f64(&s.value),
                );
            } else if s.labels.get("stat").map(String::as_str) == Some("count") {
                entry.insert("count", as_f64(&s.value));
            }
        }
    }
    for (base, stats) in &families {
        let q = |k: &str| stats.get(k).map(|v| fmt_ns(*v)).unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<28} {:>10} {:>10} {:>10} {:>10}\n",
            base,
            q("p50"),
            q("p95"),
            q("p99"),
            fmt_count(stats.get("count").copied().unwrap_or(0.0)),
        ));
    }

    // Node health.
    let nodes = scrape.series("ecc_node_health");
    if !nodes.is_empty() {
        out.push_str("\nnodes: ");
        for s in &nodes {
            let state = match s.value {
                MetricValue::Int(2) => "alive",
                MetricValue::Int(1) => "SUSPECT",
                MetricValue::Int(0) => "DEAD",
                _ => "?",
            };
            out.push_str(&format!(
                "{}:{} ",
                s.labels.get("node").map(String::as_str).unwrap_or("?"),
                state
            ));
        }
        out.push('\n');
    }

    // SLOs.
    let burns = scrape.series("ecc_slo_burn_rate");
    if !burns.is_empty() {
        out.push_str(&format!(
            "\n{:<20} {:>8} {:>12} {:>9}\n",
            "SLO", "burn", "compliance", "breached"
        ));
        for s in &burns {
            let name = s.labels.get("slo").map(String::as_str).unwrap_or("?");
            let compliance =
                scrape.labeled("ecc_slo_compliance", &[("slo", name)]).map(|c| as_f64(&c.value));
            let breached = scrape
                .labeled("ecc_slo_breached", &[("slo", name)])
                .map(|b| as_f64(&b.value) > 0.0)
                .unwrap_or(false);
            out.push_str(&format!(
                "{:<20} {:>8} {:>12} {:>9}\n",
                name,
                format_burn(as_f64(&s.value)),
                compliance.map(|c| format!("{c:.4}")).unwrap_or_else(|| "-".into()),
                if breached { "YES" } else { "no" },
            ));
        }
    }

    // Event severity tallies from /events.
    let tally = |needle: &str| events.matches(needle).count();
    out.push_str(&format!(
        "\nevents: {} error  {} warn  {} info\n",
        tally("\"severity\":\"error\""),
        tally("\"severity\":\"warn\""),
        tally("\"severity\":\"info\"")
    ));
    Ok(out)
}

fn format_burn(burn: f64) -> String {
    if burn.is_nan() {
        "-".into()
    } else {
        format!("{burn:.2}")
    }
}

#[cfg(test)]
fn dashboard_scrape_is_wellformed(scrape: &ecc_obs::Scrape) -> bool {
    scrape.value("ecc_obs_scrapes_total").is_some()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "ecc-top: terminal dashboard for an ecc-obs exporter\n\n\
             USAGE: ecc-top [--addr HOST:PORT] [--interval-ms N] [--once]\n\n\
             --addr HOST:PORT   exporter address (default 127.0.0.1:9184)\n\
             --interval-ms N    refresh period (default 2000)\n\
             --once             print one frame and exit"
        );
        return;
    }
    let addr = arg_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:9184".to_string());
    let interval_ms: u64 = arg_value(&args, "--interval-ms")
        .map(|v| v.parse().expect("--interval-ms must be an integer"))
        .unwrap_or(2000);
    let once = args.iter().any(|a| a == "--once");

    loop {
        match render_frame(&addr) {
            Ok(frame) => {
                if !once {
                    print!("\x1b[2J\x1b[H");
                }
                print!("{frame}");
            }
            Err(e) => {
                eprintln!("ecc-top: scrape of {addr} failed: {e}");
                if once {
                    std::process::exit(1);
                }
            }
        }
        if once {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing_supports_both_forms() {
        let args =
            vec!["--addr".to_string(), "1.2.3.4:9".to_string(), "--interval-ms=5".to_string()];
        assert_eq!(arg_value(&args, "--addr").as_deref(), Some("1.2.3.4:9"));
        assert_eq!(arg_value(&args, "--interval-ms").as_deref(), Some("5"));
        assert_eq!(arg_value(&args, "--missing"), None);
    }

    #[test]
    fn frame_renders_from_a_synthetic_scrape() {
        let text = "\
# HELP ecc_obs_scrapes_total t\n# TYPE ecc_obs_scrapes_total counter\necc_obs_scrapes_total 3\n\
# HELP ecc_save_ns_window t\n# TYPE ecc_save_ns_window gauge\n\
ecc_save_ns_window{quantile=\"0.5\"} 1000\n\
ecc_save_ns_window{stat=\"count\"} 10\n";
        let scrape = parse_exposition(text).expect("parses");
        assert!(dashboard_scrape_is_wellformed(&scrape));
    }
}
