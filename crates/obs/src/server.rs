//! A dependency-free HTTP/1.1 server for the observability endpoints.
//!
//! Built directly on [`std::net::TcpListener`]: one accept thread hands
//! connections to a small fixed pool of workers over an `mpsc` channel.
//! Only `GET` is supported and every response closes the connection —
//! exactly what a Prometheus scraper or `curl` needs, with nothing a
//! real web framework would add.
//!
//! | Path       | Content type                        | Body                          |
//! |------------|-------------------------------------|-------------------------------|
//! | `/metrics` | `text/plain; version=0.0.4`         | Prometheus text exposition    |
//! | `/health`  | `application/json`                  | node states + overall status  |
//! | `/ready`   | `application/json`                  | readiness probe (503 until)   |
//! | `/events`  | `application/json`                  | classified event ring         |

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::hub::ObsHub;

/// Worker threads serving requests.
const WORKERS: usize = 3;

/// Per-connection socket timeout so a stuck client cannot pin a worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// A running exporter. Dropping it (or calling [`ObsServer::shutdown`])
/// stops the accept loop and joins every thread.
pub struct ObsServer {
    addr: SocketAddr,
    hub: Arc<ObsHub>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `hub`. Marks the hub ready once listening.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn serve(hub: Arc<ObsHub>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(WORKERS + 1);
        for _ in 0..WORKERS {
            let rx = Arc::clone(&rx);
            let hub = Arc::clone(&hub);
            threads.push(std::thread::spawn(move || loop {
                let stream = match rx.lock().expect("obs worker queue poisoned").recv() {
                    Ok(s) => s,
                    Err(_) => return, // accept loop gone: drain and exit
                };
                let _ = handle_connection(stream, &hub);
            }));
        }

        {
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        return; // dropping `tx` shuts the workers down
                    }
                    if let Ok(stream) = stream {
                        let _ = tx.send(stream);
                    }
                }
            }));
        }

        hub.set_ready(true);
        Ok(Self { addr: local, hub, stop, threads })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served hub.
    pub fn hub(&self) -> &Arc<ObsHub> {
        &self.hub
    }

    /// Stops accepting, wakes the accept loop, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.hub.set_ready(false);
        // The accept loop blocks in `incoming()`; poke it with a
        // connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn handle_connection(stream: TcpStream, hub: &ObsHub) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; we route purely on the request line.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }

    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => {
                ("200 OK", "text/plain; version=0.0.4; charset=utf-8", hub.render_metrics())
            }
            "/health" => ("200 OK", "application/json", hub.render_health_json()),
            "/ready" => {
                let status = if hub.is_ready() { "200 OK" } else { "503 Service Unavailable" };
                (status, "application/json", hub.render_ready_json())
            }
            "/events" => ("200 OK", "application/json", hub.render_events_json()),
            "/" => (
                "200 OK",
                "text/plain; charset=utf-8",
                "ecc-obs: /metrics /health /ready /events\n".to_string(),
            ),
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        }
    };

    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A minimal HTTP GET against an exporter, returning the body on a 2xx
/// status. Used by `ecc-top` and the integration tests; kept here so
/// the client and server agree on the protocol subset.
///
/// # Errors
///
/// I/O errors, malformed responses, and non-2xx statuses all surface as
/// `std::io::Error`.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut stream = stream;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut response = Vec::new();
    BufReader::new(stream).read_to_end(&mut response)?;
    let text = String::from_utf8(response)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status = head.lines().next().and_then(|l| l.split_whitespace().nth(1)).unwrap_or("");
    if !status.starts_with('2') {
        return Err(std::io::Error::other(format!("HTTP status {status} for {path}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::parse_exposition;
    use crate::hub::ObsHubConfig;
    use ecc_telemetry::Recorder;

    fn serve() -> (ObsServer, Recorder) {
        let rec = Recorder::new();
        let hub = Arc::new(ObsHub::new(rec.clone(), ObsHubConfig::default()));
        let server = ObsServer::serve(hub, "127.0.0.1:0").expect("bind");
        (server, rec)
    }

    #[test]
    fn serves_metrics_health_ready_events_and_404() {
        let (server, rec) = serve();
        rec.counter("ecc.save.calls").add(7);
        rec.event("chaos.fault.crash", "node 3");
        let addr = server.local_addr().to_string();

        let metrics = http_get(&addr, "/metrics").expect("/metrics");
        let scrape = parse_exposition(&metrics).expect("valid exposition");
        assert_eq!(scrape.value("ecc_save_calls_total"), Some(&crate::expo::MetricValue::Int(7)));

        let health = http_get(&addr, "/health").expect("/health");
        assert!(health.contains("\"status\":\"ok\""));

        let ready = http_get(&addr, "/ready").expect("/ready");
        assert!(ready.contains("\"ready\":true"));

        let events = http_get(&addr, "/events").expect("/events");
        assert!(events.contains("chaos.fault.crash"));

        assert!(http_get(&addr, "/nope").is_err(), "404 surfaces as an error");
        server.shutdown();
    }

    #[test]
    fn concurrent_scrapes_all_succeed() {
        let (server, rec) = serve();
        rec.counter("c").add(1);
        let addr = server.local_addr().to_string();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || http_get(&addr, "/metrics").expect("scrape"))
            })
            .collect();
        for h in handles {
            let body = h.join().expect("thread");
            assert!(body.contains("c_total 1"));
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_and_port_closes() {
        let (server, _rec) = serve();
        let addr = server.local_addr().to_string();
        assert!(http_get(&addr, "/ready").is_ok());
        server.shutdown();
        // After shutdown the connection must fail (or be refused fast).
        assert!(http_get(&addr, "/ready").is_err());
    }
}
