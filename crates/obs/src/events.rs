//! The `/events` ring: recorder events, classified by severity.
//!
//! The telemetry recorder's event log is an append-only bounded buffer
//! with no notion of importance. The observability plane drains newly
//! appended entries on every refresh, classifies each by name
//! ([`classify`]) and keeps the most recent `N` in a ring — so fault
//! injections, CRC reclassifications, retries, health transitions and
//! perf-gate downgrades are visible over HTTP without grepping a
//! snapshot JSON.

use std::collections::VecDeque;

use ecc_telemetry::Event;

/// How loud an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine progress.
    Info,
    /// Degraded but operating: injected faults, retries, advisory gate
    /// downgrades, suspect nodes.
    Warn,
    /// Data was at risk or a component was lost: corruption detected,
    /// node death.
    Error,
}

impl Severity {
    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Classifies a recorder event name into a severity. The rules encode
/// the stack's naming conventions:
///
/// * anything mentioning corruption (`ecc.load.corrupt`,
///   `chaos.fault.corrupt_put`, …) or a crash/death — including the
///   placement controller writing a slot off (`membership.dead`) — is
///   an error;
/// * injected faults, retries, fallbacks and perf-gate warnings are
///   warnings;
/// * everything else is informational.
pub fn classify(name: &str, detail: &str) -> Severity {
    if name.contains("corrupt") || name.contains("crash") || name == "membership.dead" {
        return Severity::Error;
    }
    if name == "health.transition" {
        return if detail.contains("-> dead") {
            Severity::Error
        } else if detail.contains("-> suspect") {
            Severity::Warn
        } else {
            Severity::Info
        };
    }
    if name.starts_with("chaos.fault.")
        || name.contains("retry")
        || name.contains("fallback")
        || name == "gate.warning"
    {
        return Severity::Warn;
    }
    Severity::Info
}

/// One classified entry in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Clock reading when the underlying recorder event was stamped.
    pub at_ns: u64,
    /// Severity from [`classify`].
    pub severity: Severity,
    /// Recorder event name.
    pub name: String,
    /// Free-form detail.
    pub detail: String,
}

/// A bounded ring of the most recent classified events.
#[derive(Debug, Clone)]
pub struct EventRing {
    capacity: usize,
    events: VecDeque<ObsEvent>,
    /// Events pushed out of the ring (still counted).
    evicted: u64,
    /// Recorder events consumed so far (the drain cursor).
    drained: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), events: VecDeque::new(), evicted: 0, drained: 0 }
    }

    /// Ingests the recorder's event log, consuming only entries not
    /// seen by a previous drain (the recorder log is append-only and
    /// bounded, so the cursor is simply how many entries were seen).
    pub fn drain_from(&mut self, log: &[Event]) {
        let start = usize::try_from(self.drained).unwrap_or(usize::MAX).min(log.len());
        for event in &log[start..] {
            self.push(ObsEvent {
                at_ns: event.at_ns,
                severity: classify(&event.name, &event.detail),
                name: event.name.clone(),
                detail: event.detail.clone(),
            });
        }
        self.drained = self.drained.max(log.len() as u64);
    }

    /// Appends one event directly (used for obs-plane-local events that
    /// never touch the recorder, e.g. SLO breaches).
    pub fn push(&mut self, event: ObsEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter()
    }

    /// Retained events at or above `min`, oldest first.
    pub fn at_least(&self, min: Severity) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter().filter(move |e| e.severity >= min)
    }

    /// How many events fell off the front of the ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the ring as a deterministic JSON document:
    /// `{"events": [...], "evicted": N}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_ns\":{},\"severity\":\"{}\",\"name\":{},\"detail\":{}}}",
                e.at_ns,
                e.severity.as_str(),
                json_string(&e.name),
                json_string(&e.detail)
            ));
        }
        out.push_str(&format!("],\"evicted\":{}}}", self.evicted));
        out
    }
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_stack_conventions() {
        assert_eq!(classify("ecc.load.corrupt", ""), Severity::Error);
        assert_eq!(classify("chaos.fault.crash", ""), Severity::Error);
        assert_eq!(classify("chaos.fault.corrupt_put", ""), Severity::Error);
        assert_eq!(classify("chaos.fault.drop_put", ""), Severity::Warn);
        assert_eq!(classify("chaos.fault.transient_get", ""), Severity::Warn);
        assert_eq!(classify("gate.warning", ""), Severity::Warn);
        assert_eq!(classify("health.transition", "node 2 alive -> dead"), Severity::Error);
        assert_eq!(classify("health.transition", "node 2 alive -> suspect"), Severity::Warn);
        assert_eq!(classify("health.transition", "node 2 dead -> alive"), Severity::Info);
        assert_eq!(classify("membership.dead", "slot 1 written off"), Severity::Error);
        assert_eq!(classify("membership.join", "slot 1 admitted incarnation 2"), Severity::Info);
        assert_eq!(classify("membership.leave", "slot 3 draining"), Severity::Info);
        assert_eq!(classify("ecc.save", "version=3"), Severity::Info);
        assert_eq!(classify("kernel.selected", "avx2"), Severity::Info);
    }

    #[test]
    fn drain_consumes_only_new_entries() {
        let mut ring = EventRing::new(8);
        let mut log = vec![Event { at_ns: 1, name: "a".into(), detail: String::new() }];
        ring.drain_from(&log);
        assert_eq!(ring.len(), 1);
        log.push(Event { at_ns: 2, name: "b".into(), detail: String::new() });
        ring.drain_from(&log);
        ring.drain_from(&log); // idempotent
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.events().map(|e| e.at_ns).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let mut ring = EventRing::new(2);
        for i in 0..5u64 {
            ring.push(ObsEvent {
                at_ns: i,
                severity: Severity::Info,
                name: "e".into(),
                detail: String::new(),
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.evicted(), 3);
        assert_eq!(ring.events().map(|e| e.at_ns).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn severity_filter_is_inclusive() {
        let mut ring = EventRing::new(8);
        for (sev, name) in [(Severity::Info, "i"), (Severity::Warn, "w"), (Severity::Error, "e")] {
            ring.push(ObsEvent {
                at_ns: 0,
                severity: sev,
                name: name.into(),
                detail: String::new(),
            });
        }
        assert_eq!(ring.at_least(Severity::Warn).count(), 2);
        assert_eq!(ring.at_least(Severity::Error).count(), 1);
    }

    #[test]
    fn json_escapes_details() {
        let mut ring = EventRing::new(2);
        ring.push(ObsEvent {
            at_ns: 7,
            severity: Severity::Warn,
            name: "gate.warning".into(),
            detail: "quote \" and\nnewline".into(),
        });
        let json = ring.to_json();
        assert!(json.contains("\\\""));
        assert!(json.contains("\\n"));
        assert!(json.ends_with("\"evicted\":0}"));
    }
}
