//! # ecc-obs — live observability plane for ECCheck
//!
//! Everything a running checkpoint stack exposes over HTTP, with zero
//! dependencies beyond the workspace:
//!
//! * [`ObsServer`] — a [`std::net::TcpListener`] HTTP server with a
//!   small worker pool serving `/metrics` (Prometheus text exposition
//!   0.0.4), `/health` and `/ready` (JSON probes), and `/events` (a
//!   bounded ring of severity-classified events).
//! * [`ObsHub`] — the read-only view behind those endpoints: it derives
//!   sliding-window quantiles ([`SlidingWindow`]), SLO burn rates
//!   ([`SloTracker`]), and classified events ([`EventRing`]) purely
//!   from successive [`ecc_telemetry::Recorder`] snapshots. The hub
//!   never writes to the recorder, so attaching the exporter leaves
//!   core telemetry byte-identical; under a
//!   [`ecc_telemetry::ManualClock`] the whole `/metrics` document is
//!   deterministic.
//! * [`SloSpec`] — declarative objectives covering the paper's claims:
//!   latency budgets (save stall, recovery) and counter-ratio bounds
//!   (network traffic ≤ m·s·W, expressed as traffic ≤ k × encoded
//!   parity bytes).
//! * [`expo`] — the exposition writer and a validating parser, shared
//!   by the exporter, the `ecc-top` terminal dashboard, and the
//!   golden-scrape tests.
//!
//! ```
//! use std::sync::Arc;
//! use ecc_obs::{ObsHub, ObsHubConfig, ObsServer, SloSpec};
//! use ecc_telemetry::Recorder;
//!
//! let recorder = Recorder::new();
//! let config = ObsHubConfig {
//!     slos: vec![SloSpec::latency(
//!         "save_stall",
//!         "99% of saves stall training for at most 250ms",
//!         "ecc.save.ns",
//!         250_000_000,
//!         0.99,
//!     )],
//!     ..ObsHubConfig::default()
//! };
//! let server = ObsServer::serve(Arc::new(ObsHub::new(recorder.clone(), config)), "127.0.0.1:0")
//!     .expect("bind");
//! recorder.counter("ecc.save.calls").incr();
//! let body = ecc_obs::http_get(&server.local_addr().to_string(), "/metrics").expect("scrape");
//! assert!(body.contains("ecc_save_calls_total 1"));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod expo;
pub mod hub;
pub mod server;
pub mod slo;
pub mod window;

pub use events::{classify, EventRing, ObsEvent, Severity};
pub use expo::{
    parse_exposition, sanitize_metric_name, ExpositionBuilder, MetricValue, ParseError, Sample,
    Scrape,
};
pub use hub::{default_windowed, ObsHub, ObsHubConfig};
pub use server::{http_get, ObsServer};
pub use slo::{SloKind, SloSpec, SloStatus, SloTracker};
pub use window::{SlidingWindow, WindowDelta, DEFAULT_WINDOW_NS};
