//! The observability hub: one read-only view over a recorder.
//!
//! [`ObsHub`] owns everything the HTTP endpoints serve: sliding windows
//! over the hot-phase histograms, the SLO tracker, the classified event
//! ring, and (optionally) a [`HealthRegistry`]. Every render starts
//! with [`ObsHub::refresh`], which takes **one** snapshot of the
//! recorder and derives all views from it — the hub never writes to the
//! recorder, so attaching it leaves the core's telemetry snapshots and
//! traces byte-identical.
//!
//! Under a `ManualClock` the entire `/metrics` document is a pure
//! function of the recorded telemetry and the clock readings at refresh
//! time, which is what makes the golden-scrape test possible.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use ecc_cluster::{HealthRegistry, HealthTransition, NodeHealth};
use ecc_telemetry::{Recorder, Snapshot};

use crate::events::{classify, json_string, EventRing, ObsEvent};
use crate::expo::{sanitize_metric_name, ExpositionBuilder, MetricValue};
use crate::slo::{SloSpec, SloTracker};
use crate::window::{SlidingWindow, DEFAULT_WINDOW_NS};

/// Quantiles rendered for every windowed histogram.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Construction knobs for [`ObsHub`].
#[derive(Debug, Clone)]
pub struct ObsHubConfig {
    /// Width of the sliding windows (quantiles and SLOs), nanoseconds.
    pub window_ns: u64,
    /// Capacity of the `/events` ring.
    pub event_capacity: usize,
    /// Histogram names to expose windowed quantiles for.
    pub windowed: Vec<String>,
    /// Objectives to track.
    pub slos: Vec<SloSpec>,
}

impl Default for ObsHubConfig {
    fn default() -> Self {
        Self {
            window_ns: DEFAULT_WINDOW_NS,
            event_capacity: 1024,
            windowed: default_windowed(),
            slos: Vec::new(),
        }
    }
}

/// The hot-phase histograms every ECCheck deployment cares about:
/// end-to-end save, the encode phase, the pipelined save wall time, the
/// restore path, and the raw erasure kernel.
pub fn default_windowed() -> Vec<String> {
    [
        "ecc.save.ns",
        "ecc.save.encode_ns",
        "ecc.save.pipeline_ns",
        "ecc.load.ns",
        "erasure.encode.ns",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

struct HubState {
    windows: BTreeMap<String, SlidingWindow>,
    slo: SloTracker,
    ring: EventRing,
    /// Health transitions by destination state, indexed by
    /// `NodeHealth::gauge()` (dead, suspect, alive).
    transitions_to: [u64; 3],
    /// Cursor into the registry's transition log (see
    /// [`HealthRegistry::transitions_since`]).
    health_cursor: u64,
    scrapes: u64,
}

impl HubState {
    fn note_transition(&mut self, t: &HealthTransition) {
        self.transitions_to[t.to.gauge() as usize] += 1;
        let detail = format!("node {} {} -> {}", t.node, t.from.as_str(), t.to.as_str());
        self.ring.push(ObsEvent {
            at_ns: t.at_ns,
            severity: classify("health.transition", &detail),
            name: "health.transition".into(),
            detail,
        });
    }
}

/// Read-only observability surface over one [`Recorder`].
pub struct ObsHub {
    recorder: Recorder,
    health: Option<HealthRegistry>,
    config: ObsHubConfig,
    ready: AtomicBool,
    state: Mutex<HubState>,
}

impl ObsHub {
    /// A hub over `recorder` with `config`.
    pub fn new(recorder: Recorder, config: ObsHubConfig) -> Self {
        let windows = config
            .windowed
            .iter()
            .map(|name| (name.clone(), SlidingWindow::new(config.window_ns)))
            .collect();
        let slo = SloTracker::new(config.slos.clone(), config.window_ns);
        let ring = EventRing::new(config.event_capacity);
        Self {
            recorder,
            health: None,
            config,
            ready: AtomicBool::new(false),
            state: Mutex::new(HubState {
                windows,
                slo,
                ring,
                transitions_to: [0; 3],
                health_cursor: 0,
                scrapes: 0,
            }),
        }
    }

    /// Attaches a health registry. The hub sweeps it on every refresh
    /// using the recorder's clock and surfaces transitions as `/events`
    /// entries and `/metrics` counters — it does **not** call
    /// [`HealthRegistry::set_recorder`], keeping the recorder untouched.
    pub fn with_health(mut self, health: HealthRegistry) -> Self {
        self.health = Some(health);
        self
    }

    /// The underlying recorder (cloning shares the sink).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The attached health registry, if any.
    pub fn health(&self) -> Option<&HealthRegistry> {
        self.health.as_ref()
    }

    /// Marks the hub ready (`/ready` flips to 200). The server does
    /// this once it is listening.
    pub fn set_ready(&self, ready: bool) {
        self.ready.store(ready, Ordering::SeqCst);
    }

    /// Current readiness.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst)
    }

    /// Takes one snapshot and folds it into every derived view: drains
    /// new events into the ring, sweeps health, advances the sliding
    /// windows and the SLO tracker. Returns the snapshot so renderers
    /// see exactly the state they folded in.
    pub fn refresh(&self) -> Snapshot {
        let now = self.recorder.now_ns();
        let snapshot = self.recorder.snapshot();
        let mut st = self.state.lock().expect("obs hub state poisoned");
        st.ring.drain_from(&snapshot.events);
        if let Some(health) = &self.health {
            // The sweep's transitions land in the registry log; drain
            // that instead so `mark_dead` and heartbeat revivals done
            // between refreshes are counted too.
            health.sweep(now);
            let (transitions, cursor) = health.transitions_since(st.health_cursor);
            st.health_cursor = cursor;
            for t in transitions {
                st.note_transition(&t);
            }
        }
        for (name, window) in st.windows.iter_mut() {
            if let Some(hist) = snapshot.histogram(name) {
                window.observe(now, hist.clone());
            }
        }
        st.slo.observe(now, &snapshot);
        snapshot
    }

    /// Renders the full `/metrics` document (text exposition 0.0.4).
    pub fn render_metrics(&self) -> String {
        let snapshot = self.refresh();
        let mut st = self.state.lock().expect("obs hub state poisoned");
        st.scrapes += 1;
        let mut b = ExpositionBuilder::new();

        // 1. Every recorder counter, exact.
        for (name, value) in &snapshot.counters {
            let fam = format!("{}_total", sanitize_metric_name(name));
            b.family(&fam, "counter", &format!("Recorder counter {name}."));
            b.sample(&fam, &[], MetricValue::Int(*value));
        }

        // 2. Every recorder histogram as cumulative le-buckets, exact.
        for (name, hist) in &snapshot.histograms {
            let fam = sanitize_metric_name(name);
            b.family(
                &fam,
                "histogram",
                &format!("Recorder histogram {name} (power-of-two buckets)."),
            );
            let mut buckets = hist.buckets.clone();
            buckets.sort_unstable_by_key(|&(i, _)| i);
            let mut cumulative = 0u64;
            for (index, count) in buckets {
                cumulative += count;
                let le = ecc_telemetry::HistogramSnapshot::bucket_upper_bound(index).to_string();
                b.sample(&format!("{fam}_bucket"), &[("le", &le)], MetricValue::Int(cumulative));
            }
            b.sample(&format!("{fam}_bucket"), &[("le", "+Inf")], MetricValue::Int(hist.count));
            b.sample(&format!("{fam}_sum"), &[], MetricValue::Int(hist.sum));
            b.sample(&format!("{fam}_count"), &[], MetricValue::Int(hist.count));
        }

        // 3. Windowed quantiles for the configured hot-phase histograms.
        for (name, window) in &st.windows {
            let delta = window.delta();
            let fam = format!("{}_window", sanitize_metric_name(name));
            b.family(
                &fam,
                "gauge",
                &format!("Sliding-window view of {name} over the last {} ns.", window.window_ns()),
            );
            for (q, label) in QUANTILES {
                if let Some(v) = delta.quantile(q) {
                    b.sample(&fam, &[("quantile", label)], MetricValue::Float(v));
                }
            }
            if let Some(mean) = delta.mean() {
                b.sample(&fam, &[("stat", "mean")], MetricValue::Float(mean));
            }
            b.sample(&fam, &[("stat", "count")], MetricValue::Int(delta.count));
            b.sample(&fam, &[("stat", "sum")], MetricValue::Int(delta.sum));
        }

        // 4. Per-node health.
        if let Some(health) = &self.health {
            b.family(
                "ecc_node_health",
                "gauge",
                "Node liveness: 2 = alive, 1 = suspect, 0 = dead.",
            );
            for node in 0..health.nodes() {
                let label = node.to_string();
                b.sample(
                    "ecc_node_health",
                    &[("node", &label)],
                    MetricValue::Int(health.state(node).gauge()),
                );
            }
            b.family(
                "ecc_node_last_heartbeat_ns",
                "gauge",
                "Clock reading of each node's most recent heartbeat.",
            );
            for node in 0..health.nodes() {
                let label = node.to_string();
                b.sample(
                    "ecc_node_last_heartbeat_ns",
                    &[("node", &label)],
                    MetricValue::Int(health.last_heartbeat_ns(node)),
                );
            }
            b.family(
                "ecc_health_transitions_total",
                "counter",
                "Health state transitions observed, by destination state.",
            );
            for to in [NodeHealth::Alive, NodeHealth::Suspect, NodeHealth::Dead] {
                b.sample(
                    "ecc_health_transitions_total",
                    &[("to", to.as_str())],
                    MetricValue::Int(st.transitions_to[to.gauge() as usize]),
                );
            }
        }

        // 5. SLO burn rates.
        let statuses = st.slo.statuses();
        if !statuses.is_empty() {
            b.family(
                "ecc_slo_burn_rate",
                "gauge",
                "Error-budget burn rate per objective; > 1 exhausts the budget early.",
            );
            for s in &statuses {
                b.sample(
                    "ecc_slo_burn_rate",
                    &[("slo", &s.name)],
                    MetricValue::Float(s.burn_rate.unwrap_or(f64::NAN)),
                );
            }
            b.family(
                "ecc_slo_compliance",
                "gauge",
                "Compliant fraction per objective in the window.",
            );
            for s in &statuses {
                b.sample(
                    "ecc_slo_compliance",
                    &[("slo", &s.name)],
                    MetricValue::Float(s.compliance.unwrap_or(f64::NAN)),
                );
            }
            b.family("ecc_slo_breached", "gauge", "1 when the objective's burn rate exceeds 1.");
            for s in &statuses {
                b.sample(
                    "ecc_slo_breached",
                    &[("slo", &s.name)],
                    MetricValue::Int(u64::from(s.breached)),
                );
            }
            b.family(
                "ecc_slo_window_units",
                "gauge",
                "Samples (or reference units) per objective in the window.",
            );
            for s in &statuses {
                b.sample(
                    "ecc_slo_window_units",
                    &[("slo", &s.name)],
                    MetricValue::Int(s.window_units),
                );
            }
        }

        // 6. Exporter self-telemetry.
        b.family("ecc_obs_scrapes_total", "counter", "Metrics documents rendered by this hub.");
        b.sample("ecc_obs_scrapes_total", &[], MetricValue::Int(st.scrapes));
        b.family("ecc_obs_events_retained", "gauge", "Events currently held in the /events ring.");
        b.sample("ecc_obs_events_retained", &[], MetricValue::Int(st.ring.len() as u64));
        b.family(
            "ecc_obs_events_evicted_total",
            "counter",
            "Events pushed out of the /events ring.",
        );
        b.sample("ecc_obs_events_evicted_total", &[], MetricValue::Int(st.ring.evicted()));
        b.family(
            "ecc_telemetry_dropped_events_total",
            "counter",
            "Events the recorder discarded because its buffer was full.",
        );
        b.sample(
            "ecc_telemetry_dropped_events_total",
            &[],
            MetricValue::Int(snapshot.dropped_events),
        );
        b.family("ecc_obs_window_ns", "gauge", "Width of the sliding windows in nanoseconds.");
        b.sample("ecc_obs_window_ns", &[], MetricValue::Int(self.config.window_ns));

        b.finish()
    }

    /// Renders the `/health` JSON body. `status` is `"degraded"` when
    /// any node is suspect or dead, else `"ok"`.
    pub fn render_health_json(&self) -> String {
        let mut nodes = String::from("[");
        let mut degraded = false;
        if let Some(health) = &self.health {
            for node in 0..health.nodes() {
                let state = health.state(node);
                degraded |= state != NodeHealth::Alive;
                if node > 0 {
                    nodes.push(',');
                }
                nodes.push_str(&format!(
                    "{{\"node\":{node},\"health\":\"{}\",\"last_heartbeat_ns\":{}}}",
                    state.as_str(),
                    health.last_heartbeat_ns(node)
                ));
            }
        }
        nodes.push(']');
        let scrapes = self.state.lock().expect("obs hub state poisoned").scrapes;
        format!(
            "{{\"status\":{},\"ready\":{},\"nodes\":{nodes},\"scrapes\":{scrapes}}}",
            json_string(if degraded { "degraded" } else { "ok" }),
            self.is_ready()
        )
    }

    /// Renders the `/ready` JSON body.
    pub fn render_ready_json(&self) -> String {
        format!("{{\"ready\":{}}}", self.is_ready())
    }

    /// Renders the `/events` JSON body (refreshing first so the ring
    /// includes everything recorded up to now).
    pub fn render_events_json(&self) -> String {
        self.refresh();
        self.state.lock().expect("obs hub state poisoned").ring.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::parse_exposition;
    use ecc_cluster::HealthConfig;

    fn hub_with_slos() -> (ObsHub, ecc_telemetry::ManualClock) {
        let (rec, clock) = Recorder::with_manual_clock();
        let config = ObsHubConfig {
            slos: vec![SloSpec::latency("save_stall", "saves fast", "ecc.save.ns", 1_000, 0.99)],
            ..ObsHubConfig::default()
        };
        (ObsHub::new(rec, config), clock)
    }

    #[test]
    fn metrics_document_parses_and_carries_every_surface() {
        let (hub, clock) = hub_with_slos();
        let hub = hub.with_health(HealthRegistry::new(
            2,
            HealthConfig { suspect_after_ns: 10, dead_after_ns: 30 },
        ));
        let rec = hub.recorder().clone();
        rec.counter("ecc.save.calls").add(3);
        for _ in 0..10 {
            rec.record("ecc.save.ns", 500);
        }
        rec.event("chaos.fault.crash", "node 1");
        clock.advance_ns(100);

        let text = hub.render_metrics();
        let scrape = parse_exposition(&text).expect("valid exposition");
        assert_eq!(scrape.value("ecc_save_calls_total"), Some(&MetricValue::Int(3)));
        assert_eq!(scrape.value("ecc_save_ns_count"), Some(&MetricValue::Int(10)));
        assert!(scrape.labeled("ecc_save_ns_window", &[("quantile", "0.99")]).is_some());
        assert!(scrape.labeled("ecc_slo_burn_rate", &[("slo", "save_stall")]).is_some());
        assert_eq!(
            scrape.labeled("ecc_slo_breached", &[("slo", "save_stall")]).unwrap().value,
            MetricValue::Int(0)
        );
        // Both nodes are past the dead window at t=100 (heartbeats at 0).
        assert_eq!(
            scrape.labeled("ecc_node_health", &[("node", "1")]).unwrap().value,
            MetricValue::Int(0)
        );
        assert_eq!(
            scrape.labeled("ecc_health_transitions_total", &[("to", "dead")]).unwrap().value,
            MetricValue::Int(2)
        );
        assert_eq!(scrape.value("ecc_obs_scrapes_total"), Some(&MetricValue::Int(1)));
    }

    #[test]
    fn rendering_does_not_perturb_the_recorder() {
        let (hub, clock) = hub_with_slos();
        let rec = hub.recorder().clone();
        rec.record("ecc.save.ns", 123);
        rec.event("ecc.save", "version=1");
        clock.advance_ns(50);
        let before = rec.snapshot().to_json();
        for _ in 0..3 {
            hub.render_metrics();
            hub.render_events_json();
            hub.render_health_json();
        }
        assert_eq!(rec.snapshot().to_json(), before, "obs rendering must be read-only");
    }

    #[test]
    fn manual_clock_scrapes_are_byte_identical_across_hubs() {
        let render = || {
            let (hub, clock) = hub_with_slos();
            let rec = hub.recorder().clone();
            for i in 0..20 {
                rec.record("ecc.save.ns", 100 + i);
                rec.counter("ecc.save.calls").incr();
            }
            rec.event("ecc.load.corrupt", "node 2 chunk 0");
            clock.set_ns(1_000);
            hub.render_metrics()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn events_endpoint_classifies_and_drains() {
        let (hub, _clock) = hub_with_slos();
        hub.recorder().event("chaos.fault.corrupt_put", "node 0");
        hub.recorder().event("ecc.save", "version=1");
        let json = hub.render_events_json();
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"severity\":\"info\""));
        // Draining twice must not duplicate.
        let again = hub.render_events_json();
        assert_eq!(json, again);
    }

    #[test]
    fn health_json_reports_degraded_on_dead_nodes() {
        let (hub, clock) = hub_with_slos();
        let hub = hub.with_health(HealthRegistry::new(
            1,
            HealthConfig { suspect_after_ns: 10, dead_after_ns: 30 },
        ));
        assert!(hub.render_health_json().contains("\"status\":\"ok\""));
        clock.advance_ns(100);
        hub.refresh();
        let json = hub.render_health_json();
        assert!(json.contains("\"status\":\"degraded\""), "{json}");
        assert!(json.contains("\"health\":\"dead\""), "{json}");
    }
}
