//! Prometheus text exposition format: a writer and a validating parser.
//!
//! The writer produces [version 0.0.4 text
//! exposition](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! one `# HELP` and `# TYPE` line per metric family, immediately
//! followed by that family's samples, families in sorted order so the
//! output is deterministic. Metric names are sanitized from the
//! recorder's dotted-path names (`ecc.save.ns` → `ecc_save_ns`); label
//! values are escaped per the spec (`\\`, `\"`, `\n`).
//!
//! The parser is the same format read back — used by `ecc-top` to
//! consume a live scrape and by the test suite to prove the
//! snapshot → exposition → parse round trip is bit-exact for every
//! counter and histogram bucket.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Converts a recorder metric name (dotted path) into a valid
/// Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`, with every
/// invalid character mapped to `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition spec: backslash, double
/// quote and newline get backslash escapes; everything else (including
/// non-ASCII UTF-8) passes through.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a HELP text: only backslash and newline per the spec.
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A metric value that renders without precision loss: counters and
/// bucket counts stay exact `u64` integers, gauges may be floats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Rendered as a decimal integer — round-trips bit-exactly.
    Int(u64),
    /// Rendered via Rust's shortest-roundtrip `{}` float formatting.
    Float(f64),
    /// Rendered as `+Inf` (the terminal histogram bucket bound).
    Inf,
}

impl MetricValue {
    fn render(&self) -> String {
        match self {
            MetricValue::Int(v) => v.to_string(),
            MetricValue::Float(v) => {
                if v.is_infinite() {
                    if *v > 0.0 {
                        "+Inf".into()
                    } else {
                        "-Inf".into()
                    }
                } else if v.is_nan() {
                    "NaN".into()
                } else {
                    format!("{v}")
                }
            }
            MetricValue::Inf => "+Inf".into(),
        }
    }
}

/// One sample line: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full sample name (family name plus `_bucket`/`_sum`/… suffix).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: BTreeMap<String, String>,
    /// The value.
    pub value: MetricValue,
}

/// An exposition document under construction. Families render in
/// insertion order; [`ExpositionBuilder::finish`] yields the text.
#[derive(Debug, Default)]
pub struct ExpositionBuilder {
    out: String,
}

impl ExpositionBuilder {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a metric family: emits `# HELP` then `# TYPE`, in that
    /// order, as the spec requires. `name` must already be sanitized.
    pub fn family(&mut self, name: &str, metric_type: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {metric_type}");
    }

    /// Emits one sample line under the current family.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: MetricValue) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label_value(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", value.render());
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// A parsed scrape: samples in document order plus the HELP/TYPE
/// metadata per family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scrape {
    /// Every sample line, in order.
    pub samples: Vec<Sample>,
    /// `# HELP` text per family.
    pub help: BTreeMap<String, String>,
    /// `# TYPE` per family.
    pub types: BTreeMap<String, String>,
}

impl Scrape {
    /// The first sample with this exact name and no labels.
    pub fn value(&self, name: &str) -> Option<&MetricValue> {
        self.samples.iter().find(|s| s.name == name && s.labels.is_empty()).map(|s| &s.value)
    }

    /// All samples of `name` (any labels), in order.
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// The sample of `name` whose labels contain every `(k, v)` pair.
    pub fn labeled(&self, name: &str, pairs: &[(&str, &str)]) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            s.name == name
                && pairs.iter().all(|(k, v)| s.labels.get(*k).map(String::as_str) == Some(*v))
        })
    }
}

/// A structural violation found while parsing (or validating) a scrape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub detail: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.detail)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, detail: impl Into<String>) -> ParseError {
    ParseError { line, detail: detail.into() }
}

/// Base family name of a sample: strips the canonical suffixes so
/// `foo_bucket`/`foo_sum`/`foo_count` group under family `foo` when
/// that family was declared.
fn family_of<'a>(sample_name: &'a str, declared: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if declared.contains_key(base) {
                return base;
            }
        }
    }
    sample_name
}

/// Parses and structurally validates a text exposition document.
///
/// Beyond tokenizing, this enforces the properties the golden-scrape
/// test cares about:
///
/// * every sample's family has a `# TYPE` (and `# HELP`) line, and the
///   HELP line precedes the TYPE line;
/// * metadata precedes the family's first sample, and a family's
///   samples are contiguous (no interleaving);
/// * sample names are valid, labels are well-formed and escaped, and
///   values parse;
/// * the document is valid UTF-8 by construction (`&str` input) and
///   every line is either a comment, blank, or a sample.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse_exposition(text: &str) -> Result<Scrape, ParseError> {
    let mut scrape = Scrape::default();
    // Family name -> whether we've seen its first sample; used to catch
    // metadata arriving after samples and non-contiguous families.
    let mut finished_families: Vec<String> = Vec::new();
    let mut current_family: Option<String> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (kind, rest) = rest.split_once(' ').ok_or_else(|| err(lineno, "bare comment"))?;
            match kind {
                "HELP" => {
                    let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
                    validate_name(name, lineno)?;
                    if scrape.help.insert(name.to_string(), unescape_help(help)).is_some() {
                        return Err(err(lineno, format!("duplicate HELP for {name}")));
                    }
                    if scrape.types.contains_key(name) {
                        return Err(err(lineno, format!("HELP for {name} after its TYPE")));
                    }
                    if finished_families.iter().any(|f| f == name)
                        || current_family.as_deref() == Some(name)
                    {
                        return Err(err(lineno, format!("HELP for {name} after its samples")));
                    }
                }
                "TYPE" => {
                    let (name, ty) = rest
                        .split_once(' ')
                        .ok_or_else(|| err(lineno, "TYPE line missing a type"))?;
                    validate_name(name, lineno)?;
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                        return Err(err(lineno, format!("unknown type {ty:?} for {name}")));
                    }
                    if scrape.types.insert(name.to_string(), ty.to_string()).is_some() {
                        return Err(err(lineno, format!("duplicate TYPE for {name}")));
                    }
                    if finished_families.iter().any(|f| f == name)
                        || current_family.as_deref() == Some(name)
                    {
                        return Err(err(lineno, format!("TYPE for {name} after its samples")));
                    }
                }
                other => return Err(err(lineno, format!("unknown comment keyword {other:?}"))),
            }
            continue;
        }
        if line.starts_with('#') {
            // Plain comment; legal, ignored.
            continue;
        }

        let sample = parse_sample_line(line, lineno)?;
        let family = family_of(&sample.name, &scrape.types).to_string();
        if !scrape.types.contains_key(&family) {
            return Err(err(lineno, format!("sample {} has no TYPE metadata", sample.name)));
        }
        if !scrape.help.contains_key(&family) {
            return Err(err(lineno, format!("sample {} has no HELP metadata", sample.name)));
        }
        match &current_family {
            Some(cur) if *cur == family => {}
            _ => {
                if finished_families.contains(&family) {
                    return Err(err(
                        lineno,
                        format!("family {family} is not contiguous (interleaved samples)"),
                    ));
                }
                if let Some(prev) = current_family.take() {
                    finished_families.push(prev);
                }
                current_family = Some(family);
            }
        }
        scrape.samples.push(sample);
    }
    Ok(scrape)
}

fn validate_name(name: &str, lineno: usize) -> Result<(), ParseError> {
    let mut chars = name.chars();
    let ok_first = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    let ok_rest = chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    if ok_first && ok_rest {
        Ok(())
    } else {
        Err(err(lineno, format!("invalid metric name {name:?}")))
    }
}

fn unescape_help(text: &str) -> String {
    unescape(text, false)
}

fn unescape(text: &str, in_label: bool) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('"') if in_label => out.push('"'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

fn parse_sample_line(line: &str, lineno: usize) -> Result<Sample, ParseError> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ')
        .ok_or_else(|| err(lineno, "sample line has no value"))?;
    let name = &line[..name_end];
    validate_name(name, lineno)?;

    let mut labels = BTreeMap::new();
    let mut rest = &line[name_end..];
    if let Some(after_brace) = rest.strip_prefix('{') {
        let mut chars = after_brace.char_indices();
        let mut consumed = 0usize;
        loop {
            // Label key (or closing brace).
            let mut key = String::new();
            let mut closed = false;
            for (i, c) in chars.by_ref() {
                consumed = i + c.len_utf8();
                match c {
                    '}' => {
                        closed = true;
                        break;
                    }
                    '=' => break,
                    ',' if key.is_empty() => continue,
                    c => key.push(c),
                }
            }
            if closed {
                if !key.is_empty() {
                    return Err(err(lineno, format!("label {key:?} missing a value")));
                }
                break;
            }
            if key.is_empty() {
                return Err(err(lineno, "empty label name"));
            }
            // Opening quote.
            match chars.next() {
                Some((i, '"')) => consumed = i + 1,
                _ => return Err(err(lineno, format!("label {key} value must be quoted"))),
            }
            // Escaped value until the closing quote.
            let mut value = String::new();
            let mut escaped = false;
            let mut terminated = false;
            for (i, c) in chars.by_ref() {
                consumed = i + c.len_utf8();
                if escaped {
                    match c {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => {
                            value.push('\\');
                            value.push(other);
                        }
                    }
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    terminated = true;
                    break;
                } else {
                    value.push(c);
                }
            }
            if !terminated {
                return Err(err(lineno, format!("unterminated value for label {key}")));
            }
            labels.insert(key, value);
        }
        rest = &after_brace[consumed..];
    }

    let value_str = rest.trim();
    // A timestamp field after the value is legal in the format; we never
    // emit one, so reject it to keep the golden scrapes strict.
    if value_str.contains(' ') {
        return Err(err(lineno, "unexpected timestamp field"));
    }
    if value_str.is_empty() {
        return Err(err(lineno, "sample line has no value"));
    }
    let value = match value_str {
        "+Inf" => MetricValue::Inf,
        s => {
            // Preserve bit-exactness: bare integers stay integers.
            if let Ok(v) = s.parse::<u64>() {
                MetricValue::Int(v)
            } else {
                MetricValue::Float(
                    s.parse::<f64>()
                        .map_err(|_| err(lineno, format!("unparseable value {s:?}")))?,
                )
            }
        }
    };
    Ok(Sample { name: name.to_string(), labels, value })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize_metric_name("ecc.save.ns"), "ecc_save_ns");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn label_escaping_round_trips() {
        let nasty = "a\"b\\c\nd — ünïcode";
        let mut b = ExpositionBuilder::new();
        b.family("m", "gauge", "help");
        b.sample("m", &[("k", nasty)], MetricValue::Int(1));
        let text = b.finish();
        let scrape = parse_exposition(&text).expect("parses");
        assert_eq!(scrape.samples[0].labels["k"], nasty);
    }

    #[test]
    fn builder_output_parses_and_orders_help_before_type() {
        let mut b = ExpositionBuilder::new();
        b.family("ecc_save_calls", "counter", "Total save calls");
        b.sample("ecc_save_calls", &[], MetricValue::Int(42));
        b.family("ecc_hist", "histogram", "A histogram");
        b.sample("ecc_hist_bucket", &[("le", "1")], MetricValue::Int(2));
        b.sample("ecc_hist_bucket", &[("le", "+Inf")], MetricValue::Int(3));
        b.sample("ecc_hist_sum", &[], MetricValue::Int(99));
        b.sample("ecc_hist_count", &[], MetricValue::Int(3));
        let text = b.finish();
        let scrape = parse_exposition(&text).expect("parses");
        assert_eq!(scrape.value("ecc_save_calls"), Some(&MetricValue::Int(42)));
        assert_eq!(scrape.types["ecc_hist"], "histogram");
        assert_eq!(scrape.series("ecc_hist_bucket").len(), 2);
        assert_eq!(
            scrape.labeled("ecc_hist_bucket", &[("le", "+Inf")]).unwrap().value,
            MetricValue::Int(3)
        );
    }

    #[test]
    fn parser_rejects_samples_without_metadata() {
        let e = parse_exposition("orphan 1\n").unwrap_err();
        assert!(e.detail.contains("no TYPE"), "{e}");
    }

    #[test]
    fn parser_rejects_type_after_samples() {
        let text = "# HELP m h\n# TYPE m counter\nm 1\n# TYPE m counter\n";
        let e = parse_exposition(text).unwrap_err();
        assert!(e.detail.contains("duplicate TYPE"), "{e}");

        let text = "# HELP m h\n# TYPE m counter\nm 1\n# HELP n h\n# TYPE n counter\nn 1\nm 2\n";
        let e = parse_exposition(text).unwrap_err();
        assert!(e.detail.contains("not contiguous"), "{e}");
    }

    #[test]
    fn parser_rejects_help_after_type() {
        let text = "# TYPE m counter\n# HELP m h\nm 1\n";
        let e = parse_exposition(text).unwrap_err();
        assert!(e.detail.contains("after its TYPE"), "{e}");
    }

    #[test]
    fn integer_values_round_trip_bit_exactly() {
        for v in [0u64, 1, u64::MAX, 1 << 53, (1 << 53) + 1] {
            let mut b = ExpositionBuilder::new();
            b.family("m", "counter", "h");
            b.sample("m", &[], MetricValue::Int(v));
            let scrape = parse_exposition(&b.finish()).expect("parses");
            assert_eq!(scrape.value("m"), Some(&MetricValue::Int(v)), "value {v}");
        }
    }

    #[test]
    fn float_and_inf_values_parse() {
        let mut b = ExpositionBuilder::new();
        b.family("m", "gauge", "h");
        b.sample("m", &[("q", "0.99")], MetricValue::Float(1.25));
        b.sample("m", &[("q", "inf")], MetricValue::Inf);
        let scrape = parse_exposition(&b.finish()).expect("parses");
        assert_eq!(scrape.labeled("m", &[("q", "0.99")]).unwrap().value, MetricValue::Float(1.25));
        assert_eq!(scrape.labeled("m", &[("q", "inf")]).unwrap().value, MetricValue::Inf);
    }

    #[test]
    fn timestamps_are_rejected() {
        let text = "# HELP m h\n# TYPE m counter\nm 1 1234567890\n";
        assert!(parse_exposition(text).is_err());
    }
}
