//! Declarative service-level objectives with error-budget burn rates.
//!
//! Two objective shapes cover the paper's claims:
//!
//! * [`SloKind::LatencyBudget`] — "at least `target` of recent samples
//!   of `histogram` finish within `threshold_ns`". Save-stall and
//!   recovery-latency objectives are this shape. The burn rate is the
//!   classic multi-window formula `error_rate / (1 - target)`: 1.0
//!   means the error budget is being spent exactly as provisioned,
//!   above 1.0 it will exhaust early.
//! * [`SloKind::RatioBound`] — "counter `numerator` stays within
//!   `multiplier` × counter `reference`". The paper's traffic bound
//!   (network bytes ≤ m·s·W per save) is this shape: encoded parity
//!   bytes are m·s·W/k, so traffic ≤ k × bytes_encoded. Burn is the
//!   observed ratio over the allowed ratio; 1.0 is exactly at the
//!   bound.
//!
//! Objectives are evaluated over the same sliding window as the
//! exporter's quantiles, purely from successive [`Snapshot`]s — the
//! tracker never writes to the recorder, so attaching it cannot perturb
//! the core's deterministic telemetry.

use std::collections::VecDeque;

use ecc_telemetry::Snapshot;

use crate::window::{SlidingWindow, WindowDelta};

/// What an objective demands.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// `target` fraction of samples of `histogram` must be
    /// `<= threshold_ns`.
    LatencyBudget {
        /// Histogram name in the recorder (e.g. `ecc.save.ns`).
        histogram: String,
        /// Budgeted latency in nanoseconds.
        threshold_ns: u64,
        /// Required compliant fraction in `(0, 1)` (e.g. 0.99).
        target: f64,
    },
    /// Counter `numerator` must stay `<= multiplier * reference`.
    RatioBound {
        /// Bounded counter (e.g. `ecc.save.traffic_bytes`).
        numerator: String,
        /// Reference counter (e.g. `ecc.save.bytes_encoded`).
        reference: String,
        /// Allowed ratio (e.g. `k`, since parity bytes are m·s·W/k and
        /// the bound is m·s·W).
        multiplier: f64,
    },
}

/// A named objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable identifier, used as the `slo` label on `/metrics`.
    pub name: String,
    /// Human-readable statement of the objective.
    pub objective: String,
    /// The evaluated rule.
    pub kind: SloKind,
}

impl SloSpec {
    /// A latency-budget objective.
    pub fn latency(
        name: impl Into<String>,
        objective: impl Into<String>,
        histogram: impl Into<String>,
        threshold_ns: u64,
        target: f64,
    ) -> Self {
        assert!(target > 0.0 && target < 1.0, "latency SLO target must be in (0, 1), got {target}");
        Self {
            name: name.into(),
            objective: objective.into(),
            kind: SloKind::LatencyBudget { histogram: histogram.into(), threshold_ns, target },
        }
    }

    /// A counter-ratio bound objective.
    pub fn ratio(
        name: impl Into<String>,
        objective: impl Into<String>,
        numerator: impl Into<String>,
        reference: impl Into<String>,
        multiplier: f64,
    ) -> Self {
        assert!(multiplier > 0.0, "ratio SLO multiplier must be positive, got {multiplier}");
        Self {
            name: name.into(),
            objective: objective.into(),
            kind: SloKind::RatioBound {
                numerator: numerator.into(),
                reference: reference.into(),
                multiplier,
            },
        }
    }
}

/// Point-in-time evaluation of one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The spec's name.
    pub name: String,
    /// The spec's human-readable objective.
    pub objective: String,
    /// Compliant fraction in the window (`None` with no data yet).
    pub compliance: Option<f64>,
    /// Error-budget burn rate (`None` with no data yet). `<= 1.0` is
    /// within budget.
    pub burn_rate: Option<f64>,
    /// `true` when the window has data and the burn rate exceeds 1.0.
    pub breached: bool,
    /// Samples (latency) or reference units (ratio) in the window.
    pub window_units: u64,
}

/// Sliding window over a pair of cumulative counters.
#[derive(Debug, Clone)]
struct CounterWindow {
    window_ns: u64,
    history: VecDeque<(u64, u64, u64)>,
}

impl CounterWindow {
    fn new(window_ns: u64) -> Self {
        Self { window_ns: window_ns.max(1), history: VecDeque::new() }
    }

    fn observe(&mut self, at_ns: u64, numerator: u64, reference: u64) {
        if self.history.back().is_some_and(|(t, _, _)| *t > at_ns) {
            self.history.clear();
        }
        self.history.push_back((at_ns, numerator, reference));
        let start = at_ns.saturating_sub(self.window_ns);
        while self.history.len() > 1 && self.history[1].0 <= start {
            self.history.pop_front();
        }
    }

    /// `(Δnumerator, Δreference)` across the window, saturating on
    /// counter resets. Mirrors [`SlidingWindow::delta`]: the front
    /// observation is only an anchor once it predates the window start;
    /// before that, everything seen so far counts as recent.
    fn delta(&self) -> (u64, u64) {
        let Some((now, n1, r1)) = self.history.back() else {
            return (0, 0);
        };
        let start = now.saturating_sub(self.window_ns);
        match self.history.front() {
            Some((t0, n0, r0)) if *t0 <= start => (n1.saturating_sub(*n0), r1.saturating_sub(*r0)),
            _ => (*n1, *r1),
        }
    }
}

enum TrackerState {
    Latency(SlidingWindow),
    Ratio(CounterWindow),
}

/// Evaluates a fixed set of [`SloSpec`]s over a sliding window of
/// recorder snapshots.
pub struct SloTracker {
    specs: Vec<SloSpec>,
    states: Vec<TrackerState>,
    window_ns: u64,
}

impl SloTracker {
    /// A tracker for `specs`, evaluated over `window_ns`-wide windows.
    pub fn new(specs: Vec<SloSpec>, window_ns: u64) -> Self {
        let states = specs
            .iter()
            .map(|s| match s.kind {
                SloKind::LatencyBudget { .. } => {
                    TrackerState::Latency(SlidingWindow::new(window_ns))
                }
                SloKind::RatioBound { .. } => TrackerState::Ratio(CounterWindow::new(window_ns)),
            })
            .collect();
        Self { specs, states, window_ns }
    }

    /// The configured specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// The window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Feeds one cumulative snapshot observed at `at_ns`.
    pub fn observe(&mut self, at_ns: u64, snapshot: &Snapshot) {
        for (spec, state) in self.specs.iter().zip(self.states.iter_mut()) {
            match (&spec.kind, state) {
                (SloKind::LatencyBudget { histogram, .. }, TrackerState::Latency(w)) => {
                    let hist = snapshot.histogram(histogram).cloned().unwrap_or_default();
                    w.observe(at_ns, hist);
                }
                (SloKind::RatioBound { numerator, reference, .. }, TrackerState::Ratio(w)) => {
                    w.observe(at_ns, snapshot.counter(numerator), snapshot.counter(reference));
                }
                _ => unreachable!("tracker state built from the same spec list"),
            }
        }
    }

    /// Evaluates every objective against the current window.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.specs
            .iter()
            .zip(self.states.iter())
            .map(|(spec, state)| match (&spec.kind, state) {
                (SloKind::LatencyBudget { threshold_ns, target, .. }, TrackerState::Latency(w)) => {
                    latency_status(spec, w.delta(), *threshold_ns, *target)
                }
                (SloKind::RatioBound { multiplier, .. }, TrackerState::Ratio(w)) => {
                    ratio_status(spec, w.delta(), *multiplier)
                }
                _ => unreachable!("tracker state built from the same spec list"),
            })
            .collect()
    }
}

fn latency_status(spec: &SloSpec, delta: WindowDelta, threshold_ns: u64, target: f64) -> SloStatus {
    if delta.count == 0 {
        return SloStatus {
            name: spec.name.clone(),
            objective: spec.objective.clone(),
            compliance: None,
            burn_rate: None,
            breached: false,
            window_units: 0,
        };
    }
    let good = delta.count_le(threshold_ns).min(delta.count as f64);
    let compliance = good / delta.count as f64;
    let burn = (1.0 - compliance) / (1.0 - target);
    SloStatus {
        name: spec.name.clone(),
        objective: spec.objective.clone(),
        compliance: Some(compliance),
        burn_rate: Some(burn),
        breached: burn > 1.0,
        window_units: delta.count,
    }
}

fn ratio_status(spec: &SloSpec, (num, reference): (u64, u64), multiplier: f64) -> SloStatus {
    if reference == 0 {
        return SloStatus {
            name: spec.name.clone(),
            objective: spec.objective.clone(),
            compliance: None,
            burn_rate: None,
            breached: false,
            window_units: 0,
        };
    }
    let allowed = multiplier * reference as f64;
    let burn = num as f64 / allowed;
    SloStatus {
        name: spec.name.clone(),
        objective: spec.objective.clone(),
        compliance: Some((allowed / num.max(1) as f64).min(1.0)),
        burn_rate: Some(burn),
        breached: burn > 1.0,
        window_units: reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_telemetry::Recorder;

    fn tracker(specs: Vec<SloSpec>) -> SloTracker {
        SloTracker::new(specs, 1_000_000)
    }

    #[test]
    fn latency_slo_within_budget_has_low_burn() {
        let rec = Recorder::new();
        // 100 samples at 100ns, threshold 1000ns: full compliance.
        for _ in 0..100 {
            rec.record("save.ns", 100);
        }
        let mut t =
            tracker(vec![SloSpec::latency("stall", "saves finish fast", "save.ns", 1000, 0.99)]);
        t.observe(10, &rec.snapshot());
        let s = &t.statuses()[0];
        assert_eq!(s.compliance, Some(1.0));
        assert_eq!(s.burn_rate, Some(0.0));
        assert!(!s.breached);
        assert_eq!(s.window_units, 100);
    }

    #[test]
    fn latency_slo_breaches_when_error_budget_exceeded() {
        let rec = Recorder::new();
        // Half the samples far above the threshold with a 99% target.
        for _ in 0..50 {
            rec.record("save.ns", 100);
        }
        for _ in 0..50 {
            rec.record("save.ns", 1_000_000);
        }
        let mut t = tracker(vec![SloSpec::latency("stall", "", "save.ns", 1000, 0.99)]);
        t.observe(10, &rec.snapshot());
        let s = &t.statuses()[0];
        let burn = s.burn_rate.unwrap();
        assert!(burn > 1.0, "50% error rate vs 1% budget should burn hot, got {burn}");
        assert!(s.breached);
    }

    #[test]
    fn latency_slo_is_windowed() {
        let (rec, clock) = Recorder::with_manual_clock();
        for _ in 0..100 {
            rec.record("save.ns", 1_000_000); // slow era
        }
        let mut t =
            SloTracker::new(vec![SloSpec::latency("stall", "", "save.ns", 1000, 0.99)], 1_000);
        t.observe(0, &rec.snapshot());
        clock.advance_ns(10_000);
        for _ in 0..100 {
            rec.record("save.ns", 10); // fast era
        }
        t.observe(5_000, &rec.snapshot());
        t.observe(10_000, &rec.snapshot());
        let s = &t.statuses()[0];
        assert!(!s.breached, "old slow samples must age out of the window: {:?}", s);
    }

    #[test]
    fn ratio_slo_tracks_the_traffic_bound() {
        let rec = Recorder::new();
        rec.counter("traffic").add(4_000);
        rec.counter("encoded").add(1_000);
        // Bound: traffic <= 4 x encoded (k = 4). Exactly at the bound.
        let mut t = tracker(vec![SloSpec::ratio("traffic", "", "traffic", "encoded", 4.0)]);
        t.observe(10, &rec.snapshot());
        let s = &t.statuses()[0];
        assert_eq!(s.burn_rate, Some(1.0));
        assert!(!s.breached, "exactly at the bound is compliant");

        rec.counter("traffic").add(4_001);
        rec.counter("encoded").add(1_000);
        t.observe(20, &rec.snapshot());
        let s = &t.statuses()[0];
        assert!(s.burn_rate.unwrap() > 1.0);
        assert!(s.breached);
    }

    #[test]
    fn empty_windows_report_no_data_rather_than_breach() {
        let rec = Recorder::new();
        let mut t = tracker(vec![
            SloSpec::latency("stall", "", "save.ns", 1000, 0.99),
            SloSpec::ratio("traffic", "", "traffic", "encoded", 4.0),
        ]);
        t.observe(10, &rec.snapshot());
        for s in t.statuses() {
            assert_eq!(s.burn_rate, None);
            assert!(!s.breached);
        }
    }

    #[test]
    #[should_panic(expected = "target must be in (0, 1)")]
    fn latency_target_validated() {
        SloSpec::latency("x", "", "h", 1, 1.0);
    }
}
