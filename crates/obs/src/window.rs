//! Sliding-window views over the recorder's cumulative histograms.
//!
//! The recorder's histograms are monotone since process start; a live
//! dashboard wants *recent* behaviour. [`SlidingWindow`] keeps a short
//! history of `(at_ns, HistogramSnapshot)` observations — one per
//! refresh/scrape — and exposes the **delta** between now and the
//! oldest observation still inside the window: recent sample count,
//! sum, and quantiles estimated from the power-of-two bucket layout
//! (bounds read from [`HistogramSnapshot::bucket_bounds`], with linear
//! interpolation inside the quantile's bucket).
//!
//! Everything is a pure function of the observed snapshots and
//! timestamps, so a `ManualClock`-driven run renders byte-identical
//! windows on every execution.

use std::collections::VecDeque;

use ecc_telemetry::HistogramSnapshot;

/// Default window width: the last 60 (simulated or wall) seconds.
pub const DEFAULT_WINDOW_NS: u64 = 60_000_000_000;

/// The delta of one histogram over the active window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowDelta {
    /// Samples recorded inside the window.
    pub count: u64,
    /// Sum of the samples recorded inside the window.
    pub sum: u64,
    /// Sparse `(bucket_index, count)` pairs of the window's samples.
    pub buckets: Vec<(u8, u64)>,
}

impl WindowDelta {
    /// Estimated value at quantile `q` (0.0 ..= 1.0) from the bucket
    /// populations: finds the bucket holding the q-th sample and
    /// interpolates linearly inside it. `None` when the window is
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = q * self.count as f64;
        let mut seen = 0.0;
        for &(index, n) in &self.buckets {
            let n = n as f64;
            if seen + n >= rank {
                let (lo, hi) = HistogramSnapshot::bucket_bounds(index);
                let within = if n > 0.0 { ((rank - seen) / n).clamp(0.0, 1.0) } else { 0.0 };
                return Some(lo as f64 + (hi - lo) as f64 * within);
            }
            seen += n;
        }
        // q == 1.0 (or rounding): the top of the last populated bucket.
        let (_, hi) = HistogramSnapshot::bucket_bounds(self.buckets.last()?.0);
        Some(hi as f64)
    }

    /// Mean of the window's samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Samples `<= bound` in the window (interpolated within the
    /// straddling bucket), for SLO compliance accounting.
    pub fn count_le(&self, bound: u64) -> f64 {
        let snap = HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: 0,
            max: 0,
            buckets: self.buckets.clone(),
        };
        snap.count_le(bound)
    }
}

/// Bucket-wise `current - past`, saturating so a reset (fresh recorder
/// behind the same window) degrades to "everything is recent" instead
/// of underflowing.
fn subtract(current: &HistogramSnapshot, past: &HistogramSnapshot) -> WindowDelta {
    let mut buckets = Vec::with_capacity(current.buckets.len());
    for &(index, n) in &current.buckets {
        let prior = past.buckets.iter().find_map(|&(i, p)| (i == index).then_some(p)).unwrap_or(0);
        let delta = n.saturating_sub(prior);
        if delta > 0 {
            buckets.push((index, delta));
        }
    }
    WindowDelta {
        count: current.count.saturating_sub(past.count),
        sum: current.sum.saturating_sub(past.sum),
        buckets,
    }
}

/// A bounded history of cumulative snapshots of one histogram, exposing
/// the window delta. Observations older than the window (keeping one
/// anchor just outside it) are discarded.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    window_ns: u64,
    history: VecDeque<(u64, HistogramSnapshot)>,
}

impl SlidingWindow {
    /// A window of `window_ns` nanoseconds.
    pub fn new(window_ns: u64) -> Self {
        Self { window_ns: window_ns.max(1), history: VecDeque::new() }
    }

    /// The configured width.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Records the cumulative snapshot observed at `at_ns`. Out-of-order
    /// observations (clock went backwards) replace the history.
    pub fn observe(&mut self, at_ns: u64, snapshot: HistogramSnapshot) {
        if self.history.back().is_some_and(|(t, _)| *t > at_ns) {
            self.history.clear();
        }
        self.history.push_back((at_ns, snapshot));
        // Keep exactly one observation at or before the window start as
        // the subtraction anchor.
        let start = at_ns.saturating_sub(self.window_ns);
        while self.history.len() > 1 && self.history[1].0 <= start {
            self.history.pop_front();
        }
    }

    /// The delta between the latest observation and the anchor at the
    /// window start. Until an observation ages past the window start
    /// there is no anchor to subtract, so the whole cumulative histogram
    /// is "recent" — the window covers everything seen so far. This
    /// keeps consecutive scrapes consistent: samples recorded just
    /// before the first scrape stay visible in the second, rather than
    /// vanishing because the first scrape became the subtraction base.
    pub fn delta(&self) -> WindowDelta {
        let Some((now, latest)) = self.history.back() else {
            return WindowDelta::default();
        };
        let start = now.saturating_sub(self.window_ns);
        match self.history.front() {
            Some((t0, oldest)) if *t0 <= start => subtract(latest, oldest),
            _ => subtract(latest, &HistogramSnapshot::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(buckets: &[(u8, u64)]) -> HistogramSnapshot {
        let count = buckets.iter().map(|(_, n)| n).sum();
        HistogramSnapshot { count, sum: count * 10, min: 0, max: 0, buckets: buckets.to_vec() }
    }

    #[test]
    fn first_observation_is_entirely_recent() {
        let mut w = SlidingWindow::new(100);
        w.observe(50, snap(&[(3, 4)]));
        let d = w.delta();
        assert_eq!(d.count, 4);
        assert_eq!(d.buckets, vec![(3, 4)]);
    }

    #[test]
    fn delta_subtracts_the_window_anchor() {
        let mut w = SlidingWindow::new(100);
        w.observe(0, snap(&[(3, 4)]));
        w.observe(60, snap(&[(3, 6), (5, 1)]));
        let d = w.delta();
        assert_eq!(d.count, 3);
        assert_eq!(d.buckets, vec![(3, 2), (5, 1)]);
    }

    #[test]
    fn consecutive_scrapes_inside_the_window_keep_early_samples() {
        let mut w = SlidingWindow::new(100);
        // All 12 samples landed before the first scrape; a second scrape
        // moments later (no new samples in between) must still see them
        // — the first observation is inside the window, not an anchor.
        w.observe(1_000, snap(&[(3, 12)]));
        w.observe(1_010, snap(&[(3, 12)]));
        assert_eq!(w.delta().count, 12, "pre-first-scrape samples are still recent");
        // Once an observation ages past the window start it becomes the
        // anchor, and the idle window correctly reads empty.
        w.observe(1_200, snap(&[(3, 12)]));
        assert_eq!(w.delta().count, 0, "idle window after expiry is empty");
    }

    #[test]
    fn old_observations_expire() {
        let mut w = SlidingWindow::new(100);
        w.observe(0, snap(&[(3, 4)]));
        w.observe(50, snap(&[(3, 5)]));
        w.observe(200, snap(&[(3, 9)]));
        // Window [100, 200]: the anchor is the observation at 50 (the
        // last one at or before the window start), so delta = 9 - 5.
        assert_eq!(w.delta().count, 4);
        assert!(w.history.len() <= 2);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 100 samples uniformly in bucket 6 ([64, 127]).
        let d = WindowDelta { count: 100, sum: 0, buckets: vec![(6, 100)] };
        let p50 = d.quantile(0.5).unwrap();
        assert!((64.0..=127.0).contains(&p50));
        assert!((p50 - 95.5).abs() < 1.0, "p50 ~ bucket midpoint, got {p50}");
        assert_eq!(d.quantile(1.0), Some(127.0));
        assert!(d.quantile(0.0).unwrap() <= 65.0);
    }

    #[test]
    fn quantiles_pick_the_right_bucket_across_populations() {
        // 90 samples in bucket 3 ([8, 15]), 10 in bucket 10 ([1024, 2047]).
        let d = WindowDelta { count: 100, sum: 0, buckets: vec![(3, 90), (10, 10)] };
        assert!(d.quantile(0.5).unwrap() <= 15.0);
        assert!(d.quantile(0.95).unwrap() >= 1024.0);
        assert!(d.quantile(0.99).unwrap() >= 1024.0);
    }

    #[test]
    fn empty_window_has_no_quantiles() {
        let d = WindowDelta::default();
        assert_eq!(d.quantile(0.99), None);
        assert_eq!(d.mean(), None);
    }

    #[test]
    fn clock_regression_resets_history() {
        let mut w = SlidingWindow::new(100);
        w.observe(1_000, snap(&[(3, 50)]));
        w.observe(10, snap(&[(3, 2)]));
        assert_eq!(w.delta().count, 2, "reset: fresh history treats everything as recent");
    }

    #[test]
    fn counter_reset_saturates_instead_of_underflowing() {
        let mut w = SlidingWindow::new(100);
        w.observe(0, snap(&[(3, 50)]));
        w.observe(50, snap(&[(3, 2)])); // impossible for a monotone counter; saturate
        let d = w.delta();
        assert_eq!(d.count, 0);
        assert!(d.buckets.is_empty());
    }
}
