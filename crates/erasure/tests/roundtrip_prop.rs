//! Property tests for the full encode → erase → decode cycle across
//! randomly drawn code shapes `(k, m, w)`.
//!
//! The MDS contract under test: any erasure pattern of at most `m`
//! chunks decodes back to the original data bit-exactly, and any
//! pattern of more than `m` erasures is *refused* — the decoder must
//! error rather than fabricate plausible-but-wrong bytes.

use ecc_erasure::{CodeParams, ErasureCode, ErasureError};
use proptest::prelude::*;
use rand::prelude::*;

/// Draws a random but valid `(k, m, w)` shape, the erased set, and the
/// payload, then returns everything a case needs.
struct Case {
    code: ErasureCode,
    data: Vec<Vec<u8>>,
    chunks: Vec<Vec<u8>>,
}

fn build_case(k: usize, m: usize, w: u8, len_mult: usize, seed: u64) -> Case {
    let params = CodeParams::new(k, m, w).expect("generated shape is valid");
    let code = ErasureCode::cauchy_good(params).expect("cauchy_good for valid params");
    let len = params.alignment() * len_mult;
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<Vec<u8>> = (0..k).map(|_| (0..len).map(|_| rng.gen()).collect()).collect();
    let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
    let parity = code.encode(&refs).expect("encode valid chunks");
    let mut chunks = data.clone();
    chunks.extend(parity);
    Case { code, data, chunks }
}

/// A random erasure pattern of exactly `erased` of the `n` chunk slots.
fn erase_pattern(n: usize, erased: usize, seed: u64) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(&mut StdRng::seed_from_u64(seed));
    ids.truncate(erased);
    ids
}

fn shards<'a>(case: &'a Case, erased: &[usize]) -> Vec<Option<&'a [u8]>> {
    (0..case.chunks.len())
        .map(|i| (!erased.contains(&i)).then(|| case.chunks[i].as_slice()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bit-exact round-trip for every drawn shape and any erasure
    /// pattern of at most `m` chunks.
    #[test]
    fn prop_roundtrip_within_tolerance(
        k in 2usize..=6,
        m in 1usize..=4,
        w_pick in 0usize..=2,
        len_mult in 1usize..=8,
        payload_seed in proptest::prelude::any::<u64>(),
        pattern_seed in proptest::prelude::any::<u64>(),
        erased_frac in 0usize..=3,
    ) {
        let w = [4u8, 8, 16][w_pick];
        // w = 4 caps n = k + m at 16; every drawn shape fits.
        let case = build_case(k, m, w, len_mult, payload_seed);
        let erased_count = 1 + erased_frac % m.max(1);
        prop_assert!(erased_count <= m);
        let erased = erase_pattern(k + m, erased_count, pattern_seed);
        let decoded = case.code.decode(&shards(&case, &erased)).expect("within tolerance");
        prop_assert_eq!(decoded, case.data.clone(), "erased {:?}", erased);
    }

    /// More than `m` erasures must be refused outright — the decoder
    /// returns `TooFewSurvivors`, never wrong data.
    #[test]
    fn prop_beyond_tolerance_is_refused(
        k in 2usize..=6,
        m in 1usize..=4,
        w_pick in 0usize..=2,
        payload_seed in proptest::prelude::any::<u64>(),
        pattern_seed in proptest::prelude::any::<u64>(),
    ) {
        let w = [4u8, 8, 16][w_pick];
        let case = build_case(k, m, w, 2, payload_seed);
        let erased = erase_pattern(k + m, m + 1, pattern_seed);
        let result = case.code.decode(&shards(&case, &erased));
        prop_assert!(
            matches!(result, Err(ErasureError::TooFewSurvivors { .. })),
            "decode of {:?} erasures must be refused, got {:?}",
            erased.len(),
            result.map(|d| d.len())
        );
    }

    /// Erasing only parity leaves the data untouched: decode is the
    /// identity on the data chunks.
    #[test]
    fn prop_parity_only_erasure_is_identity(
        k in 2usize..=6,
        m in 1usize..=4,
        payload_seed in proptest::prelude::any::<u64>(),
    ) {
        let case = build_case(k, m, 8, 2, payload_seed);
        let erased: Vec<usize> = (k..k + m).collect();
        let decoded = case.code.decode(&shards(&case, &erased)).expect("all data present");
        prop_assert_eq!(decoded, case.data.clone());
    }
}
