//! Fused-schedule equivalence property suite.
//!
//! The fused executor reads every source sub-packet once per parity
//! *set* instead of once per schedule op. That rewrite must change no
//! bit: for arbitrary `(k, m, w, region length)` the fused encode and
//! decode are **bit-identical** to the unfused op-at-a-time schedule
//! executor *and* to an independent symbol-level matrix-multiply oracle
//! built straight from the generator coefficients and `GaloisField`
//! arithmetic — under **every** kernel the runtime dispatcher can
//! select, scalar included.
//!
//! Kernel forcing mutates process-global dispatch state, so the whole
//! sweep lives inside single test functions (proptest runs its cases
//! sequentially within one test).

use ecc_erasure::{CodeParams, ErasureCode, ScheduleKind};
use ecc_gf::kernel::{active_kernel, available_kernels, force_kernel};
use proptest::prelude::*;
use rand::prelude::*;

fn random_chunks(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..k).map(|_| (0..len).map(|_| rng.gen()).collect()).collect()
}

/// Symbol-level matrix-multiply oracle, independent of every XOR
/// schedule: reassembles each GF(2^w) data element from its bit-planes
/// (sub-packet `j·w + c` holds bit `c` of chunk `j`'s elements — the
/// `BitMatrix::from_gf_matrix` convention), multiplies by the generator
/// coefficients with plain field arithmetic, and scatters the product
/// bits back into parity bit-planes.
fn matrix_oracle(code: &ErasureCode, data: &[&[u8]]) -> Vec<Vec<u8>> {
    let (k, m, w) = (code.params().k(), code.params().m(), code.params().w() as usize);
    let gf = code.gf();
    let len = data[0].len();
    let ps = len / w;
    let mut parity = vec![vec![0u8; len]; m];
    for s in 0..ps * 8 {
        let (byte, bit) = (s / 8, s % 8);
        let elems: Vec<u16> = (0..k)
            .map(|j| {
                (0..w)
                    .fold(0u16, |acc, c| acc | u16::from((data[j][c * ps + byte] >> bit) & 1) << c)
            })
            .collect();
        for (i, out) in parity.iter_mut().enumerate() {
            let p = (0..k).fold(0u16, |acc, j| acc ^ gf.mul(code.coef(k + i, j), elems[j]));
            for r in 0..w {
                out[r * ps + byte] |= (((p >> r) & 1) as u8) << bit;
            }
        }
    }
    parity
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fused encode == unfused encode == matrix oracle, and fused
    /// decode == unfused decode == original data, for arbitrary shapes,
    /// widths, region lengths (odd alignment multiples exercise
    /// sub-SIMD-block tails) and erasure patterns, under every kernel.
    #[test]
    fn prop_fused_matches_unfused_and_matrix_oracle_under_every_kernel(
        k in 2usize..=5,
        m in 1usize..=3,
        w_pick in 0usize..=1,
        len_mult in 1usize..=9,
        payload_seed in any::<u64>(),
        pattern_seed in any::<u64>(),
    ) {
        let w = [8u8, 16][w_pick];
        let params = CodeParams::new(k, m, w).unwrap();
        let code = ErasureCode::cauchy_good(params).unwrap();
        let len = params.alignment() * len_mult;
        let data = random_chunks(k, len, payload_seed);
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let oracle = matrix_oracle(&code, &refs);

        // The erasure pattern: up to m chunks of the k + m total.
        let mut ids: Vec<usize> = (0..k + m).collect();
        ids.shuffle(&mut StdRng::seed_from_u64(pattern_seed));
        let erased: Vec<usize> = ids.into_iter().take(1 + pattern_seed as usize % m).collect();

        let before = active_kernel().name();
        for kernel in available_kernels() {
            force_kernel(kernel.name()).unwrap();
            let unfused = code.encode_unfused(&refs, ScheduleKind::Smart).unwrap();
            let fused = code.encode_with(&refs, ScheduleKind::Smart).unwrap();
            let fused_dumb = code.encode_with(&refs, ScheduleKind::Dumb).unwrap();
            prop_assert_eq!(
                &fused, &unfused,
                "fused != unfused under {} (k={} m={} w={} len={})",
                kernel.name(), k, m, w, len
            );
            prop_assert_eq!(
                &fused_dumb, &unfused,
                "fused dumb != unfused smart under {}", kernel.name()
            );
            prop_assert_eq!(
                &fused, &oracle,
                "fused != matrix oracle under {} (k={} m={} w={} len={})",
                kernel.name(), k, m, w, len
            );

            let mut chunks: Vec<&[u8]> = refs.clone();
            let parity_refs: Vec<&[u8]> = fused.iter().map(Vec::as_slice).collect();
            chunks.extend(parity_refs);
            let shards: Vec<Option<&[u8]>> =
                (0..k + m).map(|i| (!erased.contains(&i)).then(|| chunks[i])).collect();
            let fused_dec = code.decode(&shards).unwrap();
            let unfused_dec = code.decode_unfused(&shards).unwrap();
            prop_assert_eq!(
                &fused_dec, &unfused_dec,
                "fused decode != unfused decode under {} (erased {:?})",
                kernel.name(), &erased
            );
            prop_assert_eq!(
                &fused_dec, &data,
                "decode lost data under {} (erased {:?})", kernel.name(), &erased
            );
        }
        force_kernel(before).unwrap();
    }
}

/// The fused schedule executes the same op stream: identical xor_count,
/// one chain per (destination, leading-assign) run, and every chain
/// preserves the unfused op order within itself.
#[test]
fn fused_schedule_structure_is_faithful() {
    for (k, m, w) in [(2usize, 2usize, 8u8), (4, 2, 8), (3, 3, 16), (5, 1, 8)] {
        let code = ErasureCode::cauchy_good(CodeParams::new(k, m, w).unwrap()).unwrap();
        for kind in [ScheduleKind::Smart, ScheduleKind::Dumb] {
            let schedule = code.schedule(kind);
            let fused = code.fused_schedule(kind);
            assert_eq!(
                fused.xor_count(),
                schedule.xor_count(),
                "fusion must not change the op count (k={k} m={m} w={w} {kind:?})"
            );
            let total_srcs: usize = fused.chains().iter().map(|c| c.srcs.len()).sum();
            assert_eq!(total_srcs, schedule.ops().len(), "every op lands in exactly one chain");
        }
    }
}

/// Deterministic cross-kernel sweep on the shapes the engine really
/// uses, including large regions with non-power-of-two sub-packet sizes
/// (unaligned SIMD tails) — the non-property twin of the suite above.
#[test]
fn fused_encode_decode_bit_identical_across_kernels() {
    let before = active_kernel().name();
    for (k, m, w) in [(2usize, 2usize, 8u8), (4, 2, 8), (2, 2, 16), (6, 3, 16)] {
        let params = CodeParams::new(k, m, w).unwrap();
        let code = ErasureCode::cauchy_good(params).unwrap();
        for len_mult in [1usize, 13, 129] {
            let len = params.alignment() * len_mult;
            let data = random_chunks(k, len, (k * 31 + m * 7 + len) as u64);
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();

            force_kernel("scalar").unwrap();
            let reference = code.encode_unfused(&refs, ScheduleKind::Smart).unwrap();
            assert_eq!(reference, matrix_oracle(&code, &refs), "scalar unfused != oracle");

            for kernel in available_kernels() {
                force_kernel(kernel.name()).unwrap();
                let fused = code.encode(&refs).unwrap();
                assert_eq!(
                    fused,
                    reference,
                    "fused encode diverges under {} (k={k} m={m} w={w} len={len})",
                    kernel.name()
                );
                let parity_refs: Vec<&[u8]> = fused.iter().map(Vec::as_slice).collect();
                let mut shards: Vec<Option<&[u8]>> = Vec::new();
                shards.push(None); // always lose data chunk 0
                shards.extend(refs[1..].iter().map(|r| Some(*r)));
                shards.extend(parity_refs.iter().take(m - 1).map(|r| Some(*r)));
                shards.push(None); // and the last parity chunk
                let decoded = code.decode(&shards).unwrap();
                assert_eq!(
                    decoded,
                    data,
                    "fused decode diverges under {} (k={k} m={m} w={w} len={len})",
                    kernel.name()
                );
            }
        }
    }
    force_kernel(before).unwrap();
}
