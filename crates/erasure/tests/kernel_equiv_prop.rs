//! Kernel-equivalence property suite.
//!
//! Every SIMD/blocked coding path must be **bit-identical** to the
//! portable scalar reference, on arbitrary lengths — including unaligned
//! tails and regions shorter than one SIMD block — and the pool-striped
//! encode must be bit-identical to a single-threaded encode under every
//! kernel. These invariants are what let the dispatcher swap kernels
//! freely at startup without changing any checkpoint bit.
//!
//! Kernel forcing mutates process-global dispatch state, so all
//! force-driven sweeps live in sequential loops inside single test
//! functions (never relying on a forced kernel surviving across tests).

use ecc_erasure::{CodeParams, CodingPool, ErasureCode, MulTable};
use ecc_gf::kernel::{available_kernels, force_kernel, ScalarKernel, Split8};
use ecc_gf::{GaloisField, Kernel};
use proptest::prelude::*;
use rand::prelude::*;

fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Direct kernel ops agree with scalar on arbitrary lengths and
    /// coefficients (covers unaligned tails and len < one SIMD block).
    #[test]
    fn prop_kernels_match_scalar_on_arbitrary_regions(
        len in 0usize..700,
        coef in 0u16..256,
        seed in any::<u64>(),
    ) {
        let gf = GaloisField::new(8).unwrap();
        let t = Split8::new(&gf, coef).unwrap();
        let src = random_bytes(len, seed);
        let acc = random_bytes(len, seed.wrapping_add(1));

        let mut want_xor = acc.clone();
        ScalarKernel.xor_into(&mut want_xor, &src);
        let mut want_mul = vec![0u8; len];
        ScalarKernel.mul(&t, &src, &mut want_mul);
        let mut want_mac = acc.clone();
        ScalarKernel.mul_xor(&t, &src, &mut want_mac);

        for kernel in available_kernels() {
            let mut got = acc.clone();
            kernel.xor_into(&mut got, &src);
            prop_assert_eq!(&got, &want_xor, "{} xor_into len={}", kernel.name(), len);
            let mut got = vec![0u8; len];
            kernel.mul(&t, &src, &mut got);
            prop_assert_eq!(&got, &want_mul, "{} mul len={}", kernel.name(), len);
            let mut got = acc.clone();
            kernel.mul_xor(&t, &src, &mut got);
            prop_assert_eq!(&got, &want_mac, "{} mul_xor len={}", kernel.name(), len);
        }
    }

    /// The blocked stripe executor and the thread pool change nothing:
    /// for arbitrary payloads, pooled encode == serial encode, and the
    /// round trip through decode recovers the data bit-exactly under the
    /// auto-dispatched kernel.
    #[test]
    fn prop_pooled_encode_is_bit_identical_and_decodable(
        seed in any::<u64>(),
        chunks in 1usize..40,
        threads in 1usize..9,
    ) {
        let code = ErasureCode::cauchy_good(CodeParams::new(3, 2, 8).unwrap()).unwrap();
        let len = chunks * code.params().alignment();
        let data: Vec<Vec<u8>> = (0..3).map(|i| random_bytes(len, seed ^ i)).collect();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let serial = code.encode(&refs).unwrap();
        let pooled = CodingPool::new(threads).encode(&code, &refs).unwrap();
        prop_assert_eq!(&pooled, &serial, "threads={}", threads);

        let shards: Vec<Option<&[u8]>> =
            vec![None, Some(&data[1]), None, Some(&serial[0]), Some(&serial[1])];
        prop_assert_eq!(code.decode(&shards).unwrap(), data);
    }
}

/// Pool-striped encode is bit-identical to single-threaded encode under
/// **every** available kernel, across shapes and lengths chosen to
/// exercise blocked stripes, sub-block stripes and remainder clamping.
#[test]
fn pooled_encode_bit_identical_across_kernels() {
    let before = ecc_gf::kernel::active_kernel().name();
    let shapes = [(2usize, 2usize), (4, 2), (8, 4)];
    // 64 B chunks (ps = 8, below any split), ~512 KiB chunks (many L2
    // blocks per stripe) and an odd multiple of the alignment.
    let lens = [64usize, 8 * 8192, 64 * 999];
    for &(k, m) in &shapes {
        let code = ErasureCode::cauchy_good(CodeParams::new(k, m, 8).unwrap()).unwrap();
        for &len in &lens {
            let data: Vec<Vec<u8>> =
                (0..k).map(|i| random_bytes(len, (k * m * len) as u64 ^ i as u64)).collect();
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            force_kernel("scalar").unwrap();
            let reference = code.encode(&refs).unwrap();
            for kernel in available_kernels() {
                force_kernel(kernel.name()).unwrap();
                let serial = code.encode(&refs).unwrap();
                assert_eq!(
                    serial,
                    reference,
                    "serial encode diverges under {} (k={k} m={m} len={len})",
                    kernel.name()
                );
                for threads in [1usize, 3, 8] {
                    let pooled = CodingPool::new(threads).encode(&code, &refs).unwrap();
                    assert_eq!(
                        pooled,
                        reference,
                        "pooled encode diverges under {} (k={k} m={m} len={len} threads={threads})",
                        kernel.name()
                    );
                }
            }
        }
    }
    force_kernel(before).unwrap();
}

/// Pooled decode and `MulTable` region ops are likewise kernel-invariant.
#[test]
fn pooled_decode_and_multable_bit_identical_across_kernels() {
    let before = ecc_gf::kernel::active_kernel().name();
    let gf = GaloisField::new(8).unwrap();
    let code = ErasureCode::cauchy_good(CodeParams::new(3, 2, 8).unwrap()).unwrap();
    let data: Vec<Vec<u8>> = (0..3).map(|i| random_bytes(64 * 513, 77 + i as u64)).collect();
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();

    force_kernel("scalar").unwrap();
    let parity = code.encode(&refs).unwrap();
    let table = MulTable::new(&gf, 0xC3).unwrap();
    let src = random_bytes(64 * 513 + 13, 99); // deliberately unaligned
    let mut want_mul = vec![0u8; src.len()];
    table.apply(&src, &mut want_mul);
    let mut want_mac = random_bytes(src.len(), 100);
    let mac_seed = want_mac.clone();
    table.apply_xor(&src, &mut want_mac);

    let shards: Vec<Option<&[u8]>> =
        vec![None, Some(&data[1]), None, Some(&parity[0]), Some(&parity[1])];
    for kernel in available_kernels() {
        force_kernel(kernel.name()).unwrap();
        for threads in [1usize, 4, 8] {
            let decoded = CodingPool::new(threads).decode(&code, &shards).unwrap();
            assert_eq!(decoded, data, "decode diverges under {} x{threads}", kernel.name());
        }
        let mut got = vec![0u8; src.len()];
        table.apply(&src, &mut got);
        assert_eq!(got, want_mul, "MulTable::apply diverges under {}", kernel.name());
        let mut got = mac_seed.clone();
        table.apply_xor(&src, &mut got);
        assert_eq!(got, want_mac, "MulTable::apply_xor diverges under {}", kernel.name());
    }
    force_kernel(before).unwrap();
}
