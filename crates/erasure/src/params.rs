use ecc_gf::SUPPORTED_WIDTHS;

use crate::ErasureError;

/// Parameters of a systematic `(k + m, k)` erasure code over GF(2^w).
///
/// `k` data chunks are encoded into `m` parity chunks; any `k` of the
/// `n = k + m` chunks reconstruct the data, tolerating up to `m` erasures
/// (paper §III-B).
///
/// # Examples
///
/// ```
/// use ecc_erasure::CodeParams;
///
/// let p = CodeParams::new(2, 2, 8)?;
/// assert_eq!(p.n(), 4);
/// # Ok::<(), ecc_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodeParams {
    k: usize,
    m: usize,
    w: u8,
}

impl CodeParams {
    /// Validates and creates code parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParams`] when `k == 0`, `m == 0`,
    /// `w` is unsupported, or `k + m > 2^w` (a Cauchy matrix needs
    /// `k + m` distinct field elements).
    pub fn new(k: usize, m: usize, w: u8) -> Result<Self, ErasureError> {
        if k == 0 || m == 0 {
            return Err(ErasureError::InvalidParams {
                detail: format!("k and m must be positive (got k={k}, m={m})"),
            });
        }
        if !SUPPORTED_WIDTHS.contains(&w) {
            return Err(ErasureError::InvalidParams {
                detail: format!("unsupported field width w={w}"),
            });
        }
        if k + m > (1usize << w) {
            return Err(ErasureError::InvalidParams {
                detail: format!("k + m = {} exceeds field size 2^{w}", k + m),
            });
        }
        Ok(Self { k, m, w })
    }

    /// Number of data chunks.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity chunks.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total number of chunks, `k + m`.
    pub fn n(&self) -> usize {
        self.k + self.m
    }

    /// Field word width.
    pub fn w(&self) -> u8 {
        self.w
    }

    /// Chunk-length alignment (bytes) required by the bit-matrix XOR path:
    /// each chunk is split into `w` sub-packets that must be 8-byte words.
    pub fn alignment(&self) -> usize {
        self.w as usize * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_settings() {
        // The paper's testbed uses k = 2, m = 2 (§V-B "Settings").
        let p = CodeParams::new(2, 2, 8).unwrap();
        assert_eq!((p.k(), p.m(), p.n(), p.w()), (2, 2, 4, 8));
        assert_eq!(p.alignment(), 64);
    }

    #[test]
    fn rejects_zero_k_or_m() {
        assert!(CodeParams::new(0, 2, 8).is_err());
        assert!(CodeParams::new(2, 0, 8).is_err());
    }

    #[test]
    fn rejects_bad_width() {
        assert!(CodeParams::new(2, 2, 7).is_err());
    }

    #[test]
    fn rejects_overfull_field() {
        assert!(CodeParams::new(10, 8, 4).is_err());
        assert!(CodeParams::new(8, 8, 4).is_ok());
    }
}
