//! Byte-region primitives: wide XOR and GF(2^8) table multiplication.
//!
//! These are the inner loops of both the bit-matrix coding path (pure
//! XOR over sub-packets) and the worker-level packet encoding used by
//! ECCheck's pipeline, where each worker multiplies its checkpoint packet
//! by a single generator coefficient (`e_ij · d`, paper Fig. 6) before the
//! cross-node XOR reduction.

use ecc_gf::kernel::{active_kernel, Split16, Split8};
use ecc_gf::{GaloisField, GfError};

/// XORs `src` into `dst` (`dst[i] ^= src[i]`) through the dispatched
/// SIMD kernel ([`ecc_gf::kernel::active_kernel`]): AVX2/SSSE3/NEON wide
/// XOR where the CPU supports it, an unrolled `u64` block loop otherwise.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
    active_kernel().xor_into(dst, src);
}

/// Copies `src` into `dst`.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn copy_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "copy_into requires equal-length slices");
    dst.copy_from_slice(src);
}

/// Multiplication tables for one GF(2^8) coefficient.
///
/// Logically `table[b] == coef · b` in GF(2^8): mapping a byte region
/// through the table multiplies the whole region by the coefficient —
/// the log/exp-free inner loop for w = 8, and the unit of work ECCheck's
/// thread pool splits across cores. Internally the table is stored in
/// the split nibble-table layout ([`ecc_gf::Split8`]) so [`apply`] and
/// [`apply_xor`] run through the dispatched SIMD kernel (`pshufb`-style
/// 16-byte-at-a-time lookups on x86_64/aarch64, a flat 256-entry table
/// on the scalar fallback).
///
/// [`apply`]: MulTable::apply
/// [`apply_xor`]: MulTable::apply_xor
///
/// # Examples
///
/// ```
/// use ecc_gf::GaloisField;
/// use ecc_erasure::MulTable;
///
/// let gf = GaloisField::new(8)?;
/// let t = MulTable::new(&gf, 3)?;
/// let src = [0x10u8, 0x20, 0x30];
/// let mut dst = [0u8; 3];
/// t.apply(&src, &mut dst);
/// assert_eq!(dst[0], gf.mul(3, 0x10) as u8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MulTable {
    coef: u16,
    split: Split8,
}

impl MulTable {
    /// Builds the table for `coef` in GF(2^8).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] when the field is not GF(2^8)
    /// (table lookup per byte only makes sense for w = 8) and
    /// [`GfError::ElementOutOfRange`] when `coef` is not a field element.
    pub fn new(gf: &GaloisField, coef: u16) -> Result<Self, GfError> {
        Ok(Self { coef, split: Split8::new(gf, coef)? })
    }

    /// The coefficient this table multiplies by.
    pub fn coef(&self) -> u16 {
        self.coef
    }

    /// The underlying split nibble tables, for callers that drive a
    /// [`ecc_gf::Kernel`] directly (e.g. the kernel bench harness).
    pub fn split(&self) -> &Split8 {
        &self.split
    }

    /// `dst[i] = coef · src[i]`.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn apply(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "apply requires equal-length slices");
        active_kernel().mul(&self.split, src, dst);
    }

    /// `dst[i] ^= coef · src[i]` — multiply-accumulate, the inner loop of
    /// table-based Reed–Solomon encoding.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn apply_xor(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "apply_xor requires equal-length slices");
        active_kernel().mul_xor(&self.split, src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn xor_into_handles_unaligned_tails() {
        let src: Vec<u8> = (0..21).collect();
        let mut dst = vec![0xFFu8; 21];
        xor_into(&mut dst, &src);
        for (i, &d) in dst.iter().enumerate() {
            assert_eq!(d, 0xFF ^ i as u8);
        }
    }

    #[test]
    fn xor_into_is_self_inverse() {
        let src: Vec<u8> = (0..64).map(|i| (i * 37) as u8).collect();
        let orig: Vec<u8> = (0..64).map(|i| (i * 11 + 3) as u8).collect();
        let mut dst = orig.clone();
        xor_into(&mut dst, &src);
        xor_into(&mut dst, &src);
        assert_eq!(dst, orig);
    }

    #[test]
    fn table_of_one_is_identity() {
        let gf = GaloisField::new(8).unwrap();
        let t = MulTable::new(&gf, 1).unwrap();
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0u8; 256];
        t.apply(&src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn table_of_zero_clears() {
        let gf = GaloisField::new(8).unwrap();
        let t = MulTable::new(&gf, 0).unwrap();
        let src = vec![0xABu8; 16];
        let mut dst = vec![0xCDu8; 16];
        t.apply(&src, &mut dst);
        assert!(dst.iter().all(|&b| b == 0));
    }

    #[test]
    fn table_rejects_non_gf8() {
        let gf = GaloisField::new(16).unwrap();
        assert!(MulTable::new(&gf, 2).is_err());
    }

    proptest! {
        #[test]
        fn prop_apply_matches_field_mul(coef in 0u16..256, bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
            let gf = GaloisField::new(8).unwrap();
            let t = MulTable::new(&gf, coef).unwrap();
            let mut dst = vec![0u8; bytes.len()];
            t.apply(&bytes, &mut dst);
            for (i, &b) in bytes.iter().enumerate() {
                prop_assert_eq!(dst[i] as u16, gf.mul(coef, b as u16));
            }
        }

        #[test]
        fn prop_apply_xor_accumulates(coef in 0u16..256, bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
            let gf = GaloisField::new(8).unwrap();
            let t = MulTable::new(&gf, coef).unwrap();
            let mut acc = vec![0x5Au8; bytes.len()];
            t.apply_xor(&bytes, &mut acc);
            for (i, &b) in bytes.iter().enumerate() {
                prop_assert_eq!(acc[i] as u16, (0x5Au16) ^ gf.mul(coef, b as u16));
            }
        }
    }
}

/// Split multiplication tables for one GF(2^16) coefficient.
///
/// A 2^16-entry table per coefficient would blow the cache; the classic
/// split-table trick stores two 256-entry tables — products of the
/// coefficient with the low byte and with the high byte shifted — and
/// combines them per element: `coef · x = low[x & 0xFF] ^ high[x >> 8]`
/// (used by large-field codes such as G-CRS, which the paper cites).
/// The tables live in [`ecc_gf::Split16`] so [`apply`] and [`apply_xor`]
/// run through the dispatched kernel's w = 16 fast path (GFNI byte-plane
/// affine multiply where the CPU supports it, the split-table scalar loop
/// otherwise).
///
/// Regions are interpreted as little-endian `u16` elements.
///
/// [`apply`]: MulTable16::apply
/// [`apply_xor`]: MulTable16::apply_xor
///
/// # Examples
///
/// ```
/// use ecc_gf::GaloisField;
/// use ecc_erasure::MulTable16;
///
/// let gf = GaloisField::new(16)?;
/// let t = MulTable16::new(&gf, 0x1234)?;
/// let src = 0xBEEFu16.to_le_bytes();
/// let mut dst = [0u8; 2];
/// t.apply(&src, &mut dst);
/// assert_eq!(u16::from_le_bytes(dst), gf.mul(0x1234, 0xBEEF));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MulTable16 {
    split: Split16,
}

impl MulTable16 {
    /// Builds the split tables for `coef` in GF(2^16).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] when the field is not
    /// GF(2^16).
    pub fn new(gf: &GaloisField, coef: u16) -> Result<Self, GfError> {
        Ok(Self { split: Split16::new(gf, coef)? })
    }

    /// The coefficient these tables multiply by.
    pub fn coef(&self) -> u16 {
        self.split.coef()
    }

    /// The underlying split tables, for callers that drive a
    /// [`ecc_gf::Kernel`] directly (e.g. the kernel bench harness).
    pub fn split(&self) -> &Split16 {
        &self.split
    }

    /// `dst = coef · src`, element-wise over little-endian `u16`s.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length or the length is odd.
    pub fn apply(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "apply requires equal-length slices");
        assert_eq!(src.len() % 2, 0, "GF(2^16) regions hold 2-byte elements");
        active_kernel().mul16(&self.split, src, dst);
    }

    /// `dst ^= coef · src`, element-wise over little-endian `u16`s.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length or the length is odd.
    pub fn apply_xor(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "apply_xor requires equal-length slices");
        assert_eq!(src.len() % 2, 0, "GF(2^16) regions hold 2-byte elements");
        active_kernel().mul16_xor(&self.split, src, dst);
    }
}

#[cfg(test)]
mod gf16_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table16_of_one_is_identity() {
        let gf = GaloisField::new(16).unwrap();
        let t = MulTable16::new(&gf, 1).unwrap();
        let src: Vec<u8> = (0..512).map(|i| (i * 7) as u8).collect();
        let mut dst = vec![0u8; 512];
        t.apply(&src, &mut dst);
        assert_eq!(dst, src);
    }

    #[test]
    fn table16_rejects_gf8() {
        let gf = GaloisField::new(8).unwrap();
        assert!(MulTable16::new(&gf, 2).is_err());
    }

    #[test]
    #[should_panic(expected = "2-byte elements")]
    fn odd_region_panics() {
        let gf = GaloisField::new(16).unwrap();
        let t = MulTable16::new(&gf, 2).unwrap();
        let mut dst = [0u8; 3];
        t.apply(&[0u8; 3], &mut dst);
    }

    proptest! {
        #[test]
        fn prop_apply16_matches_field_mul(coef in any::<u16>(), elems in proptest::collection::vec(any::<u16>(), 1..32)) {
            let gf = GaloisField::new(16).unwrap();
            let t = MulTable16::new(&gf, coef).unwrap();
            let src: Vec<u8> = elems.iter().flat_map(|e| e.to_le_bytes()).collect();
            let mut dst = vec![0u8; src.len()];
            t.apply(&src, &mut dst);
            for (i, &e) in elems.iter().enumerate() {
                let got = u16::from_le_bytes([dst[2 * i], dst[2 * i + 1]]);
                prop_assert_eq!(got, gf.mul(coef, e));
            }
        }

        #[test]
        fn prop_apply16_xor_accumulates(coef in any::<u16>(), e in any::<u16>(), acc in any::<u16>()) {
            let gf = GaloisField::new(16).unwrap();
            let t = MulTable16::new(&gf, coef).unwrap();
            let src = e.to_le_bytes();
            let mut dst = acc.to_le_bytes();
            t.apply_xor(&src, &mut dst);
            prop_assert_eq!(u16::from_le_bytes(dst), acc ^ gf.mul(coef, e));
        }
    }
}
