//! The paper's thread-pool technique (§IV-A): region-coding tasks are
//! split into sub-ranges executed concurrently on CPU cores.
//!
//! XOR schedules and GF(2^w) table multiplication act independently on
//! every byte column, so an encode over a large contiguous region can be
//! cut into stripes, each stripe coded by a different thread, and the
//! results concatenated — bit-identical to a single-threaded execution.
//!
//! Scheduling is *work-stealing*, not static: a pooled operation is cut
//! into many more tasks than threads (a size-based grain, independent of
//! the thread count), the tasks are seeded round-robin into per-worker
//! FIFO deques, and an idle worker batch-steals the oldest half of a
//! busy worker's backlog. A slow core — or a worker stalled behind an
//! interrupt — therefore delays only the task it is executing, never the
//! rest of its assignment. Results land in slots keyed by task index and
//! are reassembled in task order, so the output (and every telemetry
//! counter and deferred trace span) is a pure function of the operation
//! geometry, regardless of which worker ran what.
//!
//! Stripe coding itself runs the *fused* XOR schedule
//! ([`crate::FusedSchedule`]): each source sub-packet is read once per
//! parity set rather than once per XOR op.

use crossbeam_deque::{Steal, Stealer, Worker};
use ecc_telemetry::{Counter, Recorder};
use ecc_trace::{Tracer, TrackId, CODING_PID};

use crate::code::run_fused_stripe;
use crate::region::MulTable;
use crate::schedule::ScheduleKind;
use crate::{region, ErasureCode, ErasureError};

/// Telemetry handles for the pooled encode path. The pooled path bypasses
/// [`ErasureCode::encode`], so it records into the same `erasure.encode.*`
/// names (keeping those totals complete however an encode executes) plus
/// pool-specific stripe counters.
#[derive(Debug, Clone)]
struct PoolMetrics {
    recorder: Recorder,
    encode_calls: Counter,
    encode_bytes: Counter,
    encode_parity_bytes: Counter,
    encode_xor_ops: Counter,
    encode_stripes: Counter,
    decode_stripes: Counter,
    kernel_bytes: Counter,
}

impl PoolMetrics {
    fn attach(recorder: &Recorder) -> Self {
        Self {
            recorder: recorder.clone(),
            encode_calls: recorder.counter("erasure.encode.calls"),
            encode_bytes: recorder.counter("erasure.encode.bytes"),
            encode_parity_bytes: recorder.counter("erasure.encode.parity_bytes"),
            encode_xor_ops: recorder.counter("erasure.encode.xor_ops"),
            encode_stripes: recorder.counter("pool.encode.stripes"),
            decode_stripes: recorder.counter("pool.decode.stripes"),
            kernel_bytes: crate::code::kernel_bytes_counter(recorder),
        }
    }
}

/// A coding thread pool with a fixed degree of parallelism.
///
/// The pool uses scoped threads per operation rather than long-lived
/// workers: coding tasks are multi-megabyte, so spawn cost is negligible
/// and the API stays free of lifetime bookkeeping.
///
/// # Examples
///
/// ```
/// use ecc_erasure::{CodeParams, CodingPool, ErasureCode};
///
/// let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8)?)?;
/// let pool = CodingPool::new(4);
/// let data = [vec![3u8; 1024], vec![5u8; 1024]];
/// let parallel = pool.encode(&code, &[&data[0], &data[1]])?;
/// let serial = code.encode(&[&data[0], &data[1]])?;
/// assert_eq!(parallel, serial);
/// # Ok::<(), ecc_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CodingPool {
    threads: usize,
    metrics: Option<PoolMetrics>,
    tracer: Option<Tracer>,
}

impl CodingPool {
    /// Creates a pool that runs up to `threads` sub-tasks concurrently
    /// (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1), metrics: None, tracer: None }
    }

    /// The configured degree of parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a telemetry recorder; pooled encodes record into the
    /// shared `erasure.encode.*` metrics plus `pool.*` stripe counters.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.metrics = Some(PoolMetrics::attach(recorder));
    }

    /// Attaches a span tracer: pooled encodes/decodes emit a
    /// `pool.{encode,decode}` span on the coding process's `pool` track
    /// plus one `{encode,decode}.stripe` span per task, re-emitted after
    /// the join in task order on the `workers` track — so the trace
    /// never depends on which worker executed (or stole) a task.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// Pre-registers (single-threaded, so track ids are deterministic)
    /// the pool-level and deferred-worker tracks.
    fn pool_tracks(&self) -> Option<(Tracer, TrackId, TrackId)> {
        self.tracer.as_ref().map(|tracer| {
            let pool = tracer.track(CODING_PID, "coding", "pool");
            let workers = tracer.track(CODING_PID, "coding", "workers");
            (tracer.clone(), pool, workers)
        })
    }

    /// Parallel `dst ^= src` over equal-length regions.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
        let stripe = stripe_len(dst.len(), self.threads);
        if stripe == 0 || self.threads == 1 {
            region::xor_into(dst, src);
            return;
        }
        std::thread::scope(|s| {
            for (d, sr) in dst.chunks_mut(stripe).zip(src.chunks(stripe)) {
                s.spawn(move || region::xor_into(d, sr));
            }
        });
    }

    /// Parallel table multiplication: `dst = coef · src`, or
    /// `dst ^= coef · src` when `accumulate` is set.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn apply_table(&self, table: &MulTable, src: &[u8], dst: &mut [u8], accumulate: bool) {
        assert_eq!(src.len(), dst.len(), "apply_table requires equal-length slices");
        let stripe = stripe_len(dst.len(), self.threads);
        if stripe == 0 || self.threads == 1 {
            if accumulate {
                table.apply_xor(src, dst);
            } else {
                table.apply(src, dst);
            }
            return;
        }
        std::thread::scope(|s| {
            for (d, sr) in dst.chunks_mut(stripe).zip(src.chunks(stripe)) {
                s.spawn(move || {
                    if accumulate {
                        table.apply_xor(sr, d);
                    } else {
                        table.apply(sr, d);
                    }
                });
            }
        });
    }

    /// Parallel systematic encode: cuts the packet dimension into
    /// work-stealing tasks, codes each task with the fused smart
    /// schedule, and reassembles in task order. Bit-identical to
    /// [`ErasureCode::encode`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ErasureCode::encode`].
    pub fn encode(&self, code: &ErasureCode, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, ErasureError> {
        if self.threads == 1 {
            return code.encode(data);
        }
        // Validate via a zero-length dry run of the serial path's checks.
        let params = code.params();
        let w = params.w() as usize;
        if data.len() != params.k() {
            return Err(ErasureError::BadChunkLength {
                detail: format!("expected {} chunks, got {}", params.k(), data.len()),
            });
        }
        let len = data[0].len();
        if len == 0 || !len.is_multiple_of(params.alignment()) {
            return Err(ErasureError::BadChunkLength {
                detail: format!(
                    "chunk length {len} must be a positive multiple of {}",
                    params.alignment()
                ),
            });
        }
        if data.iter().any(|c| c.len() != len) {
            return Err(ErasureError::BadChunkLength {
                detail: "chunks must all have the same length".to_string(),
            });
        }
        let ps = len / w;
        let bounds = steal_bounds(ps);
        if bounds.len() <= 1 {
            return code.encode(data);
        }
        let fused = code.fused_schedule(ScheduleKind::Smart);
        let timer = self.metrics.as_ref().map(|m| m.recorder.timer("erasure.encode.ns"));
        let trace = self.pool_tracks();
        let pool_span = trace.as_ref().map(|(tracer, pool, _)| {
            tracer.span(*pool, "pool.encode", format!("{} stripes", bounds.len()))
        });
        let clock = trace.as_ref().map(|(tracer, _, _)| tracer.clone());
        let (tasks, _steals) = run_stealing(self.threads, &bounds, |_, lo, hi| {
            let begin = clock.as_ref().map(Tracer::now_ns);
            let subs = run_fused_stripe(fused, data, ps, lo, hi);
            let times = begin.map(|b| (b, clock.as_ref().expect("begin implies clock").now_ns()));
            (subs, times)
        });
        drop(pool_span);
        // Deferred stripe spans: re-emitted in task order so the trace
        // never depends on which worker executed (or stole) a task.
        if let Some((tracer, _, workers)) = &trace {
            for (&(lo, hi), (_, times)) in bounds.iter().zip(&tasks) {
                if let Some((begin, end)) = times {
                    tracer.begin_at(*workers, "encode.stripe", format!("rows {lo}..{hi}"), *begin);
                    tracer.end_at(*workers, *end);
                }
            }
        }
        let stripes: Vec<Vec<Vec<u8>>> = tasks.into_iter().map(|(subs, _)| subs).collect();
        // Reassemble: parity chunk i, sub-packet r = concat of stripes.
        let (m, _) = (params.m(), params.k());
        let mut parity: Vec<Vec<u8>> = (0..m).map(|_| Vec::with_capacity(w * ps)).collect();
        for (i, chunk) in parity.iter_mut().enumerate() {
            for r in 0..w {
                for stripe_subs in &stripes {
                    chunk.extend_from_slice(&stripe_subs[i * w + r]);
                }
            }
        }
        drop(timer);
        if let Some(metrics) = &self.metrics {
            let payload: u64 = data.iter().map(|c| c.len() as u64).sum();
            metrics.encode_calls.incr();
            metrics.encode_bytes.add(payload);
            metrics.encode_parity_bytes.add(parity.iter().map(|c| c.len() as u64).sum());
            metrics.encode_xor_ops.add(fused.xor_count() as u64);
            metrics.encode_stripes.add(bounds.len() as u64);
            metrics.kernel_bytes.add(payload);
        }
        Ok(parity)
    }
}

impl Default for CodingPool {
    /// A pool sized to the machine's available parallelism (or 4 when
    /// that cannot be determined).
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::new(threads)
    }
}

/// Minimum bytes a coding task is worth scheduling for; also the floor
/// for the trailing remainder task.
const MIN_STRIPE: usize = 64;

/// Task count a pooled operation aims for. Deliberately larger than any
/// realistic thread count so idle workers always find something to
/// steal, and size-based rather than thread-based so task boundaries —
/// and with them telemetry counters, deferred trace spans, and the
/// reassembly order — never depend on how many workers execute them.
const STEAL_TASKS: usize = 32;

/// Cuts `[0, total)` into up to [`STEAL_TASKS`] contiguous
/// 8-byte-aligned work-stealing tasks of at least [`MIN_STRIPE`] bytes;
/// a degenerate remainder is merged into the final task rather than
/// scheduled alone. Returns a single task when the range is too small
/// to be worth splitting.
fn steal_bounds(total: usize) -> Vec<(usize, usize)> {
    if total < 2 * MIN_STRIPE {
        return vec![(0, total)];
    }
    let raw = total.div_ceil(STEAL_TASKS).max(MIN_STRIPE);
    let len = (raw + 7) & !7;
    let mut bounds = Vec::new();
    let mut lo = 0usize;
    while lo < total {
        let hi = if total - lo < len + MIN_STRIPE { total } else { lo + len };
        bounds.push((lo, hi));
        lo = hi;
    }
    bounds
}

/// Stripe length per thread, 8-byte aligned; 0 when the region is too
/// small to be worth splitting. Used by the flat primitives
/// ([`CodingPool::xor_into`], [`CodingPool::apply_table`]), which split
/// statically — one stripe per thread is already optimal for a single
/// memory-bound pass.
///
/// The effective parallelism is *clamped* so no worker receives an empty
/// or degenerate stripe: splitting `total` into 8-byte-aligned stripes
/// can leave a tiny remainder for the last thread (down to a handful of
/// bytes when `total` is small relative to `threads`), so the thread
/// count is walked down until every stripe — including the remainder —
/// is at least [`MIN_STRIPE`] bytes, falling back to a serial (0) split
/// when no such partition exists.
fn stripe_len(total: usize, threads: usize) -> usize {
    if threads <= 1 || total < 2 * MIN_STRIPE {
        return 0;
    }
    let mut count = threads.min(total / MIN_STRIPE);
    while count > 1 {
        let stripe = (total.div_ceil(count) + 7) & !7;
        let remainder = total % stripe;
        if remainder == 0 || remainder >= MIN_STRIPE {
            return stripe;
        }
        count -= 1;
    }
    0
}

/// Runs one closure invocation per `bounds` entry on a chunked
/// work-stealing deque set: tasks are seeded round-robin into per-worker
/// FIFO deques, each worker drains its own deque front-first and then
/// batch-steals the oldest half of another worker's backlog, so a slow
/// worker never strands its remaining tasks. Results come back
/// slot-ordered by task index — independent of which worker ran what —
/// along with the total number of successful steals.
fn run_stealing<R, F>(threads: usize, bounds: &[(usize, usize)], run: F) -> (Vec<R>, u64)
where
    R: Send,
    F: Fn(usize, usize, usize) -> R + Sync,
{
    let n = bounds.len();
    let nworkers = threads.min(n).max(1);
    let locals: Vec<Worker<(usize, usize, usize)>> =
        (0..nworkers).map(|_| Worker::new_fifo()).collect();
    for (id, &(lo, hi)) in bounds.iter().enumerate() {
        locals[id % nworkers].push((id, lo, hi));
    }
    let stealers: Vec<Stealer<(usize, usize, usize)>> =
        locals.iter().map(Worker::stealer).collect();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut steals = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(wi, local)| {
                let (stealers, run) = (&stealers, &run);
                s.spawn(move || {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    let mut stolen = 0u64;
                    while let Some((id, lo, hi)) = next_task(wi, &local, stealers, &mut stolen) {
                        done.push((id, run(id, lo, hi)));
                    }
                    (done, stolen)
                })
            })
            .collect();
        for handle in handles {
            let (done, stolen) = handle.join().expect("pool worker panicked");
            steals += stolen;
            for (id, result) in done {
                debug_assert!(slots[id].is_none(), "task {id} executed twice");
                slots[id] = Some(result);
            }
        }
    });
    let results = slots.into_iter().map(|r| r.expect("every task executes exactly once")).collect();
    (results, steals)
}

/// Next task for worker `wi`: its own deque first, then batch-steals
/// from the other workers. `None` only once every deque is empty — any
/// task still in flight is owned by the worker executing it, so exiting
/// on all-empty never strands work.
fn next_task(
    wi: usize,
    local: &Worker<(usize, usize, usize)>,
    stealers: &[Stealer<(usize, usize, usize)>],
    stolen: &mut u64,
) -> Option<(usize, usize, usize)> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        let mut retry = false;
        for (si, stealer) in stealers.iter().enumerate() {
            if si == wi {
                continue;
            }
            match stealer.steal_batch_and_pop(local) {
                Steal::Success(task) => {
                    *stolen += 1;
                    return Some(task);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CodeParams;
    use rand::prelude::*;

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn pool_xor_matches_serial() {
        let src = random_bytes(10_000, 1);
        let mut serial = random_bytes(10_000, 2);
        let mut parallel = serial.clone();
        region::xor_into(&mut serial, &src);
        CodingPool::new(4).xor_into(&mut parallel, &src);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pool_table_matches_serial() {
        let gf = ecc_gf::GaloisField::new(8).unwrap();
        let table = MulTable::new(&gf, 0x53).unwrap();
        let src = random_bytes(9_999, 3);
        let mut serial = vec![0u8; src.len()];
        let mut parallel = vec![0u8; src.len()];
        table.apply(&src, &mut serial);
        CodingPool::new(3).apply_table(&table, &src, &mut parallel, false);
        assert_eq!(serial, parallel);

        let mut serial_acc = random_bytes(src.len(), 4);
        let mut parallel_acc = serial_acc.clone();
        table.apply_xor(&src, &mut serial_acc);
        CodingPool::new(5).apply_table(&table, &src, &mut parallel_acc, true);
        assert_eq!(serial_acc, parallel_acc);
    }

    #[test]
    fn pool_encode_bit_identical_across_thread_counts() {
        let code = ErasureCode::cauchy_good(CodeParams::new(3, 2, 8).unwrap()).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| random_bytes(64 * 128, i)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs).unwrap();
        for threads in [1, 2, 3, 4, 8] {
            let parallel = CodingPool::new(threads).encode(&code, &refs).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    /// More workers than tasks: the surplus workers spin down on empty
    /// deques and the pooled result still matches — the steal-storm
    /// shape (threads ≫ tasks) loses and duplicates nothing.
    #[test]
    fn pool_encode_with_threads_exceeding_tasks() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let data: Vec<Vec<u8>> = (0..2).map(|i| random_bytes(8 * 256, i + 40)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs).unwrap();
        assert_eq!(CodingPool::new(64).encode(&code, &refs).unwrap(), serial);
    }

    /// The pooled (fused, stolen) encode agrees with the *unfused*
    /// sequential oracle, not just the fused one.
    #[test]
    fn pool_encode_matches_unfused_oracle() {
        let code = ErasureCode::cauchy_good(CodeParams::new(4, 2, 8).unwrap()).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| random_bytes(64 * 64, i + 7)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let oracle = code.encode_unfused(&refs, ScheduleKind::Smart).unwrap();
        assert_eq!(CodingPool::new(4).encode(&code, &refs).unwrap(), oracle);
    }

    #[test]
    fn pool_encode_small_region_falls_back() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let data = [random_bytes(64, 9), random_bytes(64, 10)];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs).unwrap();
        let parallel = CodingPool::new(16).encode(&code, &refs).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn pool_encode_validates_input() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let short = vec![0u8; 63];
        assert!(CodingPool::new(2).encode(&code, &[&short, &short]).is_err());
        let a = vec![0u8; 64];
        assert!(CodingPool::new(2).encode(&code, &[&a]).is_err());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(CodingPool::new(0).threads(), 1);
    }

    #[test]
    fn stripe_len_is_word_aligned() {
        for total in [640usize, 1000, 4096, 65536] {
            for threads in [2usize, 3, 4, 7] {
                let s = stripe_len(total, threads);
                if s != 0 {
                    assert_eq!(s % 8, 0, "total={total} threads={threads}");
                    assert!(s * threads >= total);
                }
            }
        }
    }

    /// Regression: with `total` small relative to `threads`, the 8-byte
    /// rounding used to leave the last thread a degenerate remainder
    /// stripe (as small as 2 bytes, e.g. total=514 over 8 threads →
    /// stripe 72, remainder 10). Effective parallelism must be clamped
    /// so every stripe — the remainder included — is a real unit of
    /// work, and the stripe count never exceeds the thread budget.
    #[test]
    fn stripe_len_never_degenerates_the_remainder() {
        for total in (2..2048usize).chain([4097, 10_000, 65_521]) {
            for threads in [2usize, 3, 4, 7, 8, 16, 64] {
                let s = stripe_len(total, threads);
                if s == 0 {
                    continue;
                }
                assert_eq!(s % 8, 0, "total={total} threads={threads}");
                let stripes = total.div_ceil(s);
                assert!(stripes <= threads, "total={total} threads={threads}: {stripes} stripes");
                let remainder = total % s;
                assert!(
                    remainder == 0 || remainder >= MIN_STRIPE,
                    "total={total} threads={threads}: degenerate {remainder}-byte stripe"
                );
            }
        }
        // The motivating case: 514 bytes over 8 threads.
        let s = stripe_len(514, 8);
        assert!(s == 0 || 514 % s == 0 || 514 % s >= MIN_STRIPE);
    }

    /// The clamp must not change results: pooled ops stay bit-identical
    /// to serial ones on the lengths that used to produce degenerate
    /// remainder stripes.
    #[test]
    fn degenerate_remainder_lengths_stay_bit_identical() {
        for total in [514usize, 520, 1032, 2056] {
            let src = random_bytes(total, 21);
            let mut serial = random_bytes(total, 22);
            let mut parallel = serial.clone();
            region::xor_into(&mut serial, &src);
            CodingPool::new(8).xor_into(&mut parallel, &src);
            assert_eq!(serial, parallel, "total={total}");
        }
    }

    /// The work-stealing task splitter tiles the range exactly, aligns
    /// every interior boundary to 8 bytes, never schedules a degenerate
    /// task, and — crucially — does not depend on any thread count.
    #[test]
    fn steal_bounds_tile_the_range() {
        for total in (1..512usize).chain([513, 1000, 4096, 65_521, 1 << 20]) {
            let bounds = steal_bounds(total);
            assert!(!bounds.is_empty());
            assert!(bounds.len() <= STEAL_TASKS + 1, "total={total}: {} tasks", bounds.len());
            let mut covered = 0usize;
            for (i, &(lo, hi)) in bounds.iter().enumerate() {
                assert_eq!(lo, covered, "total={total}: tasks must tile");
                assert!(hi > lo, "total={total}: empty task");
                if bounds.len() > 1 {
                    assert!(hi - lo >= MIN_STRIPE, "total={total}: degenerate task {i}");
                }
                if i + 1 < bounds.len() {
                    assert_eq!(hi % 8, 0, "total={total}: unaligned boundary");
                }
                covered = hi;
            }
            assert_eq!(covered, total);
        }
    }

    /// Direct contention test for the stealing executor: many tiny tasks
    /// over many workers, every slot filled exactly once.
    #[test]
    fn run_stealing_executes_every_task_exactly_once() {
        let bounds: Vec<(usize, usize)> = (0..257).map(|i| (i, i + 1)).collect();
        let (results, _steals) = run_stealing(16, &bounds, |id, lo, hi| {
            assert_eq!((lo, hi), (id, id + 1));
            id
        });
        assert_eq!(results, (0..257).collect::<Vec<_>>());
    }
}

impl CodingPool {
    /// Parallel any-k decode: reconstructs all `k` data chunks from the
    /// surviving shards, cutting the byte range into work-stealing tasks
    /// exactly like [`CodingPool::encode`]. Bit-identical to
    /// [`ErasureCode::decode`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ErasureCode::decode`].
    pub fn decode(
        &self,
        code: &ErasureCode,
        shards: &[Option<&[u8]>],
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        // Decoding recomputes only missing chunks, whose schedules are
        // built per survivor set; rather than duplicating that logic,
        // stripe the *shard regions* and decode each stripe serially.
        // Sub-packet layouts are per-stripe-consistent only if stripes
        // respect sub-packet boundaries, so stripe by whole sub-packet
        // columns: each stripe is a byte range of every sub-packet.
        let k = code.params().k();
        let present: Vec<&[u8]> = shards.iter().flatten().copied().collect();
        if present.len() < k || self.threads == 1 {
            return code.decode(shards);
        }
        let len = present[0].len();
        let w = code.params().w() as usize;
        if len == 0 || !len.is_multiple_of(code.params().alignment()) {
            return code.decode(shards); // let the serial path report errors
        }
        let ps = len / w;
        let bounds = steal_bounds(ps);
        if bounds.len() <= 1 {
            return code.decode(shards);
        }
        if let Some(metrics) = &self.metrics {
            metrics.decode_stripes.add(bounds.len() as u64);
        }
        let trace = self.pool_tracks();
        let pool_span = trace.as_ref().map(|(tracer, pool, _)| {
            tracer.span(*pool, "pool.decode", format!("{} stripes", bounds.len()))
        });
        let clock = trace.as_ref().map(|(tracer, _, _)| tracer.clone());
        // Build per-stripe shard views: for each shard, gather the byte
        // range [lo, hi) of each of its w sub-packets.
        let (tasks, _steals) = run_stealing(self.threads, &bounds, |_, lo, hi| {
            let begin = clock.as_ref().map(Tracer::now_ns);
            let views: Vec<Option<Vec<u8>>> = shards
                .iter()
                .map(|sh| {
                    sh.map(|bytes| {
                        let mut v = Vec::with_capacity(w * (hi - lo));
                        for c in 0..w {
                            v.extend_from_slice(&bytes[c * ps + lo..c * ps + hi]);
                        }
                        v
                    })
                })
                .collect();
            let view_refs: Vec<Option<&[u8]>> = views.iter().map(|v| v.as_deref()).collect();
            let decoded = code.decode(&view_refs);
            let times = begin.map(|b| (b, clock.as_ref().expect("begin implies clock").now_ns()));
            (decoded, times)
        });
        drop(pool_span);
        if let Some((tracer, _, workers)) = &trace {
            for (&(lo, hi), (_, times)) in bounds.iter().zip(&tasks) {
                if let Some((begin, end)) = times {
                    tracer.begin_at(*workers, "decode.stripe", format!("rows {lo}..{hi}"), *begin);
                    tracer.end_at(*workers, *end);
                }
            }
        }
        // Reassemble: data chunk j sub-packet c = concat of stripes.
        let mut out: Vec<Vec<u8>> = (0..k).map(|_| Vec::with_capacity(len)).collect();
        let mut stripe_chunks = Vec::with_capacity(tasks.len());
        for (decoded, _) in tasks {
            stripe_chunks.push(decoded?);
        }
        for (j, chunk) in out.iter_mut().enumerate() {
            for c in 0..w {
                for (b, (lo, hi)) in bounds.iter().enumerate() {
                    let sw = hi - lo;
                    chunk.extend_from_slice(&stripe_chunks[b][j][c * sw..(c + 1) * sw]);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod decode_tests {
    use super::*;
    use crate::CodeParams;
    use rand::prelude::*;

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn pool_decode_bit_identical_across_thread_counts() {
        let code = ErasureCode::cauchy_good(CodeParams::new(3, 2, 8).unwrap()).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| random_bytes(64 * 256, i)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        // Lose data chunks 0 and 2.
        let shards: Vec<Option<&[u8]>> =
            vec![None, Some(&data[1]), None, Some(&parity[0]), Some(&parity[1])];
        let serial = code.decode(&shards).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let parallel = CodingPool::new(threads).decode(&code, &shards).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
        assert_eq!(serial, data);
    }

    #[test]
    fn pool_decode_small_region_falls_back() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let data: Vec<Vec<u8>> = (0..2).map(|i| random_bytes(64, i)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let shards: Vec<Option<&[u8]>> = vec![None, None, Some(&parity[0]), Some(&parity[1])];
        assert_eq!(CodingPool::new(8).decode(&code, &shards).unwrap(), data);
    }

    #[test]
    fn pool_decode_propagates_errors() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let shards: Vec<Option<&[u8]>> = vec![None, None, None, None];
        assert!(CodingPool::new(4).decode(&code, &shards).is_err());
    }
}
