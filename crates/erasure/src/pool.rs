//! The paper's thread-pool technique (§IV-A): region-coding tasks are
//! split into sub-ranges executed concurrently on CPU cores.
//!
//! XOR schedules and GF(2^8) table multiplication act independently on
//! every byte column, so an encode over a large contiguous region can be
//! cut into stripes, each stripe coded by a different thread, and the
//! results concatenated — bit-identical to a single-threaded execution.

use ecc_telemetry::{Counter, Recorder};
use ecc_trace::{Tracer, TrackId, CODING_PID};

use crate::code::run_schedule_stripe;
use crate::region::MulTable;
use crate::schedule::ScheduleKind;
use crate::{region, ErasureCode, ErasureError};

/// Telemetry handles for the pooled encode path. The pooled path bypasses
/// [`ErasureCode::encode`], so it records into the same `erasure.encode.*`
/// names (keeping those totals complete however an encode executes) plus
/// pool-specific stripe counters.
#[derive(Debug, Clone)]
struct PoolMetrics {
    recorder: Recorder,
    encode_calls: Counter,
    encode_bytes: Counter,
    encode_parity_bytes: Counter,
    encode_xor_ops: Counter,
    encode_stripes: Counter,
    decode_stripes: Counter,
    kernel_bytes: Counter,
}

impl PoolMetrics {
    fn attach(recorder: &Recorder) -> Self {
        Self {
            recorder: recorder.clone(),
            encode_calls: recorder.counter("erasure.encode.calls"),
            encode_bytes: recorder.counter("erasure.encode.bytes"),
            encode_parity_bytes: recorder.counter("erasure.encode.parity_bytes"),
            encode_xor_ops: recorder.counter("erasure.encode.xor_ops"),
            encode_stripes: recorder.counter("pool.encode.stripes"),
            decode_stripes: recorder.counter("pool.decode.stripes"),
            kernel_bytes: crate::code::kernel_bytes_counter(recorder),
        }
    }
}

/// A coding thread pool with a fixed degree of parallelism.
///
/// The pool uses scoped threads per operation rather than long-lived
/// workers: coding tasks are multi-megabyte, so spawn cost is negligible
/// and the API stays free of lifetime bookkeeping.
///
/// # Examples
///
/// ```
/// use ecc_erasure::{CodeParams, CodingPool, ErasureCode};
///
/// let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8)?)?;
/// let pool = CodingPool::new(4);
/// let data = [vec![3u8; 1024], vec![5u8; 1024]];
/// let parallel = pool.encode(&code, &[&data[0], &data[1]])?;
/// let serial = code.encode(&[&data[0], &data[1]])?;
/// assert_eq!(parallel, serial);
/// # Ok::<(), ecc_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CodingPool {
    threads: usize,
    metrics: Option<PoolMetrics>,
    tracer: Option<Tracer>,
}

impl CodingPool {
    /// Creates a pool that runs up to `threads` sub-tasks concurrently
    /// (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1), metrics: None, tracer: None }
    }

    /// The configured degree of parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches a telemetry recorder; pooled encodes record into the
    /// shared `erasure.encode.*` metrics plus `pool.*` stripe counters.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.metrics = Some(PoolMetrics::attach(recorder));
    }

    /// Attaches a span tracer: pooled encodes/decodes emit a
    /// `pool.{encode,decode}` span on the coding process's `pool` track
    /// plus one `{encode,decode}.stripe` span per sub-range on that
    /// stripe's `worker{i}` track.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// Pre-registers (single-threaded, so track ids are deterministic)
    /// and returns the worker tracks for a `count`-stripe operation.
    fn worker_tracks(&self, count: usize) -> Option<(Tracer, TrackId, Vec<TrackId>)> {
        self.tracer.as_ref().map(|tracer| {
            let pool = tracer.track(CODING_PID, "coding", "pool");
            let workers = (0..count)
                .map(|i| tracer.track(CODING_PID, "coding", &format!("worker{i}")))
                .collect();
            (tracer.clone(), pool, workers)
        })
    }

    /// Parallel `dst ^= src` over equal-length regions.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn xor_into(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_into requires equal-length slices");
        let stripe = stripe_len(dst.len(), self.threads);
        if stripe == 0 || self.threads == 1 {
            region::xor_into(dst, src);
            return;
        }
        std::thread::scope(|s| {
            for (d, sr) in dst.chunks_mut(stripe).zip(src.chunks(stripe)) {
                s.spawn(move || region::xor_into(d, sr));
            }
        });
    }

    /// Parallel table multiplication: `dst = coef · src`, or
    /// `dst ^= coef · src` when `accumulate` is set.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn apply_table(&self, table: &MulTable, src: &[u8], dst: &mut [u8], accumulate: bool) {
        assert_eq!(src.len(), dst.len(), "apply_table requires equal-length slices");
        let stripe = stripe_len(dst.len(), self.threads);
        if stripe == 0 || self.threads == 1 {
            if accumulate {
                table.apply_xor(src, dst);
            } else {
                table.apply(src, dst);
            }
            return;
        }
        std::thread::scope(|s| {
            for (d, sr) in dst.chunks_mut(stripe).zip(src.chunks(stripe)) {
                s.spawn(move || {
                    if accumulate {
                        table.apply_xor(sr, d);
                    } else {
                        table.apply(sr, d);
                    }
                });
            }
        });
    }

    /// Parallel systematic encode: splits the packet dimension into
    /// stripes, codes each stripe on its own thread with the smart
    /// schedule, and reassembles. Bit-identical to [`ErasureCode::encode`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ErasureCode::encode`].
    pub fn encode(&self, code: &ErasureCode, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, ErasureError> {
        if self.threads == 1 {
            return code.encode(data);
        }
        // Validate via a zero-length dry run of the serial path's checks.
        let params = code.params();
        let w = params.w() as usize;
        if data.len() != params.k() {
            return Err(ErasureError::BadChunkLength {
                detail: format!("expected {} chunks, got {}", params.k(), data.len()),
            });
        }
        let len = data[0].len();
        if len == 0 || !len.is_multiple_of(params.alignment()) {
            return Err(ErasureError::BadChunkLength {
                detail: format!(
                    "chunk length {len} must be a positive multiple of {}",
                    params.alignment()
                ),
            });
        }
        if data.iter().any(|c| c.len() != len) {
            return Err(ErasureError::BadChunkLength {
                detail: "chunks must all have the same length".to_string(),
            });
        }
        let ps = len / w;
        let stripe = stripe_len(ps, self.threads);
        if stripe == 0 {
            return code.encode(data);
        }
        let schedule = code.schedule(ScheduleKind::Smart);
        let mut bounds = Vec::new();
        let mut lo = 0usize;
        while lo < ps {
            let hi = (lo + stripe).min(ps);
            bounds.push((lo, hi));
            lo = hi;
        }
        let timer = self.metrics.as_ref().map(|m| m.recorder.timer("erasure.encode.ns"));
        let trace = self.worker_tracks(bounds.len());
        let pool_span = trace.as_ref().map(|(tracer, pool, _)| {
            tracer.span(*pool, "pool.encode", format!("{} stripes", bounds.len()))
        });
        let stripes: Vec<Vec<Vec<u8>>> = std::thread::scope(|s| {
            let handles: Vec<_> = bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| {
                    let worker =
                        trace.as_ref().map(|(tracer, _, workers)| (tracer.clone(), workers[i]));
                    s.spawn(move || {
                        let _span = worker.as_ref().map(|(tracer, track)| {
                            tracer.span(*track, "encode.stripe", format!("rows {lo}..{hi}"))
                        });
                        run_schedule_stripe(schedule, data, ps, lo, hi)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("stripe worker panicked")).collect()
        });
        drop(pool_span);
        // Reassemble: parity chunk i, sub-packet r = concat of stripes.
        let (m, _) = (params.m(), params.k());
        let mut parity: Vec<Vec<u8>> = (0..m).map(|_| Vec::with_capacity(w * ps)).collect();
        for (i, chunk) in parity.iter_mut().enumerate() {
            for r in 0..w {
                for stripe_subs in &stripes {
                    chunk.extend_from_slice(&stripe_subs[i * w + r]);
                }
            }
        }
        drop(timer);
        if let Some(metrics) = &self.metrics {
            let payload: u64 = data.iter().map(|c| c.len() as u64).sum();
            metrics.encode_calls.incr();
            metrics.encode_bytes.add(payload);
            metrics.encode_parity_bytes.add(parity.iter().map(|c| c.len() as u64).sum());
            metrics.encode_xor_ops.add(schedule.xor_count() as u64);
            metrics.encode_stripes.add(bounds.len() as u64);
            metrics.kernel_bytes.add(payload);
        }
        Ok(parity)
    }
}

impl Default for CodingPool {
    /// A pool sized to the machine's available parallelism (or 4 when
    /// that cannot be determined).
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::new(threads)
    }
}

/// Minimum bytes a stripe worker is worth spawning for; also the floor
/// for the trailing remainder stripe.
const MIN_STRIPE: usize = 64;

/// Stripe length per thread, 8-byte aligned; 0 when the region is too
/// small to be worth splitting.
///
/// The effective parallelism is *clamped* so no worker receives an empty
/// or degenerate stripe: splitting `total` into 8-byte-aligned stripes
/// can leave a tiny remainder for the last thread (down to a handful of
/// bytes when `total` is small relative to `threads`), so the thread
/// count is walked down until every stripe — including the remainder —
/// is at least [`MIN_STRIPE`] bytes, falling back to a serial (0) split
/// when no such partition exists.
fn stripe_len(total: usize, threads: usize) -> usize {
    if threads <= 1 || total < 2 * MIN_STRIPE {
        return 0;
    }
    let mut count = threads.min(total / MIN_STRIPE);
    while count > 1 {
        let stripe = (total.div_ceil(count) + 7) & !7;
        let remainder = total % stripe;
        if remainder == 0 || remainder >= MIN_STRIPE {
            return stripe;
        }
        count -= 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CodeParams;
    use rand::prelude::*;

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn pool_xor_matches_serial() {
        let src = random_bytes(10_000, 1);
        let mut serial = random_bytes(10_000, 2);
        let mut parallel = serial.clone();
        region::xor_into(&mut serial, &src);
        CodingPool::new(4).xor_into(&mut parallel, &src);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn pool_table_matches_serial() {
        let gf = ecc_gf::GaloisField::new(8).unwrap();
        let table = MulTable::new(&gf, 0x53).unwrap();
        let src = random_bytes(9_999, 3);
        let mut serial = vec![0u8; src.len()];
        let mut parallel = vec![0u8; src.len()];
        table.apply(&src, &mut serial);
        CodingPool::new(3).apply_table(&table, &src, &mut parallel, false);
        assert_eq!(serial, parallel);

        let mut serial_acc = random_bytes(src.len(), 4);
        let mut parallel_acc = serial_acc.clone();
        table.apply_xor(&src, &mut serial_acc);
        CodingPool::new(5).apply_table(&table, &src, &mut parallel_acc, true);
        assert_eq!(serial_acc, parallel_acc);
    }

    #[test]
    fn pool_encode_bit_identical_across_thread_counts() {
        let code = ErasureCode::cauchy_good(CodeParams::new(3, 2, 8).unwrap()).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| random_bytes(64 * 128, i)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs).unwrap();
        for threads in [1, 2, 3, 4, 8] {
            let parallel = CodingPool::new(threads).encode(&code, &refs).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn pool_encode_small_region_falls_back() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let data = [random_bytes(64, 9), random_bytes(64, 10)];
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let serial = code.encode(&refs).unwrap();
        let parallel = CodingPool::new(16).encode(&code, &refs).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn pool_encode_validates_input() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let short = vec![0u8; 63];
        assert!(CodingPool::new(2).encode(&code, &[&short, &short]).is_err());
        let a = vec![0u8; 64];
        assert!(CodingPool::new(2).encode(&code, &[&a]).is_err());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(CodingPool::new(0).threads(), 1);
    }

    #[test]
    fn stripe_len_is_word_aligned() {
        for total in [640usize, 1000, 4096, 65536] {
            for threads in [2usize, 3, 4, 7] {
                let s = stripe_len(total, threads);
                if s != 0 {
                    assert_eq!(s % 8, 0, "total={total} threads={threads}");
                    assert!(s * threads >= total);
                }
            }
        }
    }

    /// Regression: with `total` small relative to `threads`, the 8-byte
    /// rounding used to leave the last thread a degenerate remainder
    /// stripe (as small as 2 bytes, e.g. total=514 over 8 threads →
    /// stripe 72, remainder 10). Effective parallelism must be clamped
    /// so every stripe — the remainder included — is a real unit of
    /// work, and the stripe count never exceeds the thread budget.
    #[test]
    fn stripe_len_never_degenerates_the_remainder() {
        for total in (2..2048usize).chain([4097, 10_000, 65_521]) {
            for threads in [2usize, 3, 4, 7, 8, 16, 64] {
                let s = stripe_len(total, threads);
                if s == 0 {
                    continue;
                }
                assert_eq!(s % 8, 0, "total={total} threads={threads}");
                let stripes = total.div_ceil(s);
                assert!(stripes <= threads, "total={total} threads={threads}: {stripes} stripes");
                let remainder = total % s;
                assert!(
                    remainder == 0 || remainder >= MIN_STRIPE,
                    "total={total} threads={threads}: degenerate {remainder}-byte stripe"
                );
            }
        }
        // The motivating case: 514 bytes over 8 threads.
        let s = stripe_len(514, 8);
        assert!(s == 0 || 514 % s == 0 || 514 % s >= MIN_STRIPE);
    }

    /// The clamp must not change results: pooled ops stay bit-identical
    /// to serial ones on the lengths that used to produce degenerate
    /// remainder stripes.
    #[test]
    fn degenerate_remainder_lengths_stay_bit_identical() {
        for total in [514usize, 520, 1032, 2056] {
            let src = random_bytes(total, 21);
            let mut serial = random_bytes(total, 22);
            let mut parallel = serial.clone();
            region::xor_into(&mut serial, &src);
            CodingPool::new(8).xor_into(&mut parallel, &src);
            assert_eq!(serial, parallel, "total={total}");
        }
    }
}

impl CodingPool {
    /// Parallel any-k decode: reconstructs all `k` data chunks from the
    /// surviving shards, striping the byte range across threads exactly
    /// like [`CodingPool::encode`]. Bit-identical to
    /// [`ErasureCode::decode`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ErasureCode::decode`].
    pub fn decode(
        &self,
        code: &ErasureCode,
        shards: &[Option<&[u8]>],
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        // Decoding recomputes only missing chunks, whose schedules are
        // built per survivor set; rather than duplicating that logic,
        // stripe the *shard regions* and decode each stripe serially.
        // Sub-packet layouts are per-stripe-consistent only if stripes
        // respect sub-packet boundaries, so stripe by whole sub-packet
        // columns: each stripe is a byte range of every sub-packet.
        let k = code.params().k();
        let present: Vec<&[u8]> = shards.iter().flatten().copied().collect();
        if present.len() < k || self.threads == 1 {
            return code.decode(shards);
        }
        let len = present[0].len();
        let w = code.params().w() as usize;
        if len == 0 || !len.is_multiple_of(code.params().alignment()) {
            return code.decode(shards); // let the serial path report errors
        }
        let ps = len / w;
        let stripe = stripe_len(ps, self.threads);
        if stripe == 0 {
            return code.decode(shards);
        }
        let mut bounds = Vec::new();
        let mut lo = 0usize;
        while lo < ps {
            bounds.push((lo, (lo + stripe).min(ps)));
            lo = (lo + stripe).min(ps);
        }
        if let Some(metrics) = &self.metrics {
            metrics.decode_stripes.add(bounds.len() as u64);
        }
        let trace = self.worker_tracks(bounds.len());
        let pool_span = trace.as_ref().map(|(tracer, pool, _)| {
            tracer.span(*pool, "pool.decode", format!("{} stripes", bounds.len()))
        });
        // Build per-stripe shard views: for each shard, gather the byte
        // range [lo, hi) of each of its w sub-packets.
        let stripes: Vec<Result<Vec<Vec<u8>>, ErasureError>> = std::thread::scope(|s| {
            let handles: Vec<_> = bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, hi))| {
                    let shards = &shards;
                    let worker =
                        trace.as_ref().map(|(tracer, _, workers)| (tracer.clone(), workers[i]));
                    s.spawn(move || {
                        let _span = worker.as_ref().map(|(tracer, track)| {
                            tracer.span(*track, "decode.stripe", format!("rows {lo}..{hi}"))
                        });
                        let views: Vec<Option<Vec<u8>>> = shards
                            .iter()
                            .map(|sh| {
                                sh.map(|bytes| {
                                    let mut v = Vec::with_capacity(w * (hi - lo));
                                    for c in 0..w {
                                        v.extend_from_slice(&bytes[c * ps + lo..c * ps + hi]);
                                    }
                                    v
                                })
                            })
                            .collect();
                        let view_refs: Vec<Option<&[u8]>> =
                            views.iter().map(|v| v.as_deref()).collect();
                        code.decode(&view_refs)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("decode worker panicked")).collect()
        });
        drop(pool_span);
        // Reassemble: data chunk j sub-packet c = concat of stripes.
        let mut out: Vec<Vec<u8>> = (0..k).map(|_| Vec::with_capacity(len)).collect();
        let mut stripe_chunks = Vec::with_capacity(stripes.len());
        for s in stripes {
            stripe_chunks.push(s?);
        }
        for (j, chunk) in out.iter_mut().enumerate() {
            for c in 0..w {
                for (b, (lo, hi)) in bounds.iter().enumerate() {
                    let sw = hi - lo;
                    chunk.extend_from_slice(&stripe_chunks[b][j][c * sw..(c + 1) * sw]);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod decode_tests {
    use super::*;
    use crate::CodeParams;
    use rand::prelude::*;

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn pool_decode_bit_identical_across_thread_counts() {
        let code = ErasureCode::cauchy_good(CodeParams::new(3, 2, 8).unwrap()).unwrap();
        let data: Vec<Vec<u8>> = (0..3).map(|i| random_bytes(64 * 256, i)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        // Lose data chunks 0 and 2.
        let shards: Vec<Option<&[u8]>> =
            vec![None, Some(&data[1]), None, Some(&parity[0]), Some(&parity[1])];
        let serial = code.decode(&shards).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let parallel = CodingPool::new(threads).decode(&code, &shards).unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
        assert_eq!(serial, data);
    }

    #[test]
    fn pool_decode_small_region_falls_back() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let data: Vec<Vec<u8>> = (0..2).map(|i| random_bytes(64, i)).collect();
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let shards: Vec<Option<&[u8]>> = vec![None, None, Some(&parity[0]), Some(&parity[1])];
        assert_eq!(CodingPool::new(8).decode(&code, &shards).unwrap(), data);
    }

    #[test]
    fn pool_decode_propagates_errors() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let shards: Vec<Option<&[u8]>> = vec![None, None, None, None];
        assert!(CodingPool::new(4).decode(&code, &shards).is_err());
    }
}
