//! Erasure coding for the ECCheck reproduction.
//!
//! ECCheck (paper §IV-A) encodes in-memory checkpoints with a *Cauchy
//! Reed–Solomon* code whose generator matrix is expanded into a binary
//! bit-matrix so that encoding and decoding are pure XOR operations, and
//! accelerates region coding with a CPU thread pool. This crate implements
//! the full stack from scratch:
//!
//! * [`cauchy`] — Cauchy generator matrices over GF(2^w), including the
//!   Jerasure-style "good" normalisation that minimises the number of ones
//!   in the bit-matrix (fewer ones = fewer XORs).
//! * [`vandermonde`] — classic systematic Vandermonde generators, kept as
//!   the comparison point for the coding-scheme ablation bench.
//! * [`XorSchedule`] — dumb and smart XOR operation schedules derived from
//!   a bit-matrix.
//! * [`ErasureCode`] — systematic encode of `k` data chunks into `m`
//!   parity chunks, and any-k decode, over real byte regions.
//! * [`CodingPool`] — the paper's thread-pool technique: region coding
//!   split into sub-tasks executed by worker threads.
//!
//! # Examples
//!
//! ```
//! use ecc_erasure::{CodeParams, ErasureCode};
//!
//! let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8)?)?;
//! let d0 = vec![7u8; 64];
//! let d1 = vec![9u8; 64];
//! let parity = code.encode(&[&d0, &d1])?;
//!
//! // Lose both data chunks; recover from the two parity chunks.
//! let shards: Vec<Option<&[u8]>> =
//!     vec![None, None, Some(&parity[0][..]), Some(&parity[1][..])];
//! let recovered = code.decode(&shards)?;
//! assert_eq!(recovered[0], d0);
//! assert_eq!(recovered[1], d1);
//! # Ok::<(), ecc_erasure::ErasureError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cauchy;
mod code;
mod error;
mod params;
mod pool;
pub mod region;
mod schedule;
pub mod vandermonde;

pub use code::ErasureCode;
pub use error::ErasureError;
pub use params::CodeParams;
pub use pool::CodingPool;
pub use region::{MulTable, MulTable16};
pub use schedule::{FusedChain, FusedSchedule, ScheduleKind, SubPacket, XorOp, XorSchedule};
