//! Cauchy Reed–Solomon generator matrices (paper §IV-A).
//!
//! A Cauchy matrix over GF(2^w) has entries `1 / (x_i + y_j)` for disjoint
//! sets of distinct field elements `{x_i}` and `{y_j}`. Every square
//! submatrix of a Cauchy matrix is nonsingular, which makes the systematic
//! generator `[I_k ; C]` MDS: any `k` of the `k + m` chunks reconstruct the
//! data. Expanding the matrix to bits (see [`ecc_gf::BitMatrix`]) turns
//! encoding into pure XORs; the fewer ones in that expansion, the fewer
//! XORs per encoded byte, which is why [`generator_good`] spends effort
//! normalising the matrix the way Jerasure's `cauchy_good` does.

use ecc_gf::{GaloisField, Matrix};

use crate::{CodeParams, ErasureError};

/// Builds the raw systematic Cauchy generator `[I_k ; C]` of shape
/// `(k + m) × k`.
///
/// Rows `0..k` are the identity (data chunks pass through); rows
/// `k..k+m` hold the Cauchy part with `x_i = i` and `y_j = m + j`.
///
/// # Errors
///
/// Propagates field construction failures from invalid parameters (the
/// parameter combination itself is validated by [`CodeParams::new`]).
pub fn generator(params: CodeParams) -> Result<Matrix, ErasureError> {
    let gf = GaloisField::new(params.w())?;
    let cauchy = cauchy_part(params, &gf)?;
    Ok(Matrix::identity(params.k()).vstack(&cauchy)?)
}

/// Builds the "good" Cauchy generator: same structure as [`generator`]
/// but with columns and rows of the parity part rescaled to minimise the
/// number of ones in the bit-matrix expansion.
///
/// Scaling rows or columns of the parity part by non-zero constants
/// preserves the property that every square submatrix is nonsingular, so
/// the code stays MDS while encode cost drops (Jerasure's `cauchy_good`).
///
/// # Errors
///
/// Propagates field construction failures from invalid parameters.
pub fn generator_good(params: CodeParams) -> Result<Matrix, ErasureError> {
    let gf = GaloisField::new(params.w())?;
    let mut c = cauchy_part(params, &gf)?;
    let (m, k) = (params.m(), params.k());

    // Step 1: divide each column by its first-row element, making row 0
    // all ones (the cheapest possible row: w XOR-copies per column).
    for j in 0..k {
        let divisor = c.get(0, j);
        if divisor != 0 && divisor != 1 {
            let inv = gf.inv(divisor)?;
            for i in 0..m {
                c.set(i, j, gf.mul(c.get(i, j), inv));
            }
        }
    }

    // Step 2: for every later row, try dividing the whole row by each of
    // its elements and keep the divisor minimising the row's ones count.
    for i in 1..m {
        let row: Vec<u16> = (0..k).map(|j| c.get(i, j)).collect();
        let base_cost: usize = row.iter().map(|&e| element_ones(&gf, e)).sum();
        let mut best_cost = base_cost;
        let mut best_divisor = 1u16;
        for &candidate in &row {
            if candidate == 0 || candidate == 1 {
                continue;
            }
            let inv = gf.inv(candidate)?;
            let cost: usize = row.iter().map(|&e| element_ones(&gf, gf.mul(e, inv))).sum();
            if cost < best_cost {
                best_cost = cost;
                best_divisor = candidate;
            }
        }
        if best_divisor != 1 {
            let inv = gf.inv(best_divisor)?;
            for j in 0..k {
                c.set(i, j, gf.mul(c.get(i, j), inv));
            }
        }
    }

    Ok(Matrix::identity(k).vstack(&c)?)
}

/// Number of ones in the `w × w` bit-matrix expansion of a single field
/// element — the XOR cost of multiplying a region by that element.
pub fn element_ones(gf: &GaloisField, e: u16) -> usize {
    let w = gf.w() as usize;
    (0..w).map(|c| gf.mul(e, 1 << c).count_ones() as usize).sum()
}

fn cauchy_part(params: CodeParams, gf: &GaloisField) -> Result<Matrix, ErasureError> {
    let (k, m) = (params.k(), params.m());
    let mut c = Matrix::zero(m, k);
    for i in 0..m {
        for j in 0..k {
            let x = i as u16;
            let y = (m + j) as u16;
            c.set(i, j, gf.inv(x ^ y)?);
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_gf::BitMatrix;

    #[test]
    fn raw_generator_is_systematic() {
        let p = CodeParams::new(3, 2, 8).unwrap();
        let g = generator(p).unwrap();
        assert_eq!((g.rows(), g.cols()), (5, 3));
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), u16::from(i == j));
            }
        }
    }

    #[test]
    fn raw_generator_is_mds_small() {
        let gf = GaloisField::new(8).unwrap();
        for (k, m) in [(2, 2), (3, 2), (2, 3), (4, 2), (3, 3)] {
            let g = generator(CodeParams::new(k, m, 8).unwrap()).unwrap();
            assert!(g.is_mds_generator(&gf), "k={k} m={m}");
        }
    }

    #[test]
    fn good_generator_is_mds_small() {
        let gf = GaloisField::new(8).unwrap();
        for (k, m) in [(2, 2), (3, 2), (2, 3), (4, 2), (3, 3)] {
            let g = generator_good(CodeParams::new(k, m, 8).unwrap()).unwrap();
            assert!(g.is_mds_generator(&gf), "k={k} m={m}");
        }
    }

    #[test]
    fn good_generator_first_parity_row_is_ones() {
        let p = CodeParams::new(4, 3, 8).unwrap();
        let g = generator_good(p).unwrap();
        for j in 0..4 {
            assert_eq!(g.get(4, j), 1);
        }
    }

    #[test]
    fn good_generator_has_no_more_ones_than_raw() {
        let gf = GaloisField::new(8).unwrap();
        for (k, m) in [(2, 2), (4, 2), (4, 4), (6, 3)] {
            let p = CodeParams::new(k, m, 8).unwrap();
            let raw = generator(p).unwrap().select_rows(&(k..k + m).collect::<Vec<_>>());
            let good = generator_good(p).unwrap().select_rows(&(k..k + m).collect::<Vec<_>>());
            let raw_ones = BitMatrix::from_gf_matrix(&raw, &gf).ones();
            let good_ones = BitMatrix::from_gf_matrix(&good, &gf).ones();
            assert!(good_ones <= raw_ones, "k={k} m={m}: good {good_ones} > raw {raw_ones}");
        }
    }

    #[test]
    fn element_ones_of_one_is_w() {
        for w in [4u8, 8, 16] {
            let gf = GaloisField::new(w).unwrap();
            // Multiplying by 1 is the identity bit-matrix: exactly w ones.
            assert_eq!(element_ones(&gf, 1), w as usize);
            assert_eq!(element_ones(&gf, 0), 0);
        }
    }

    #[test]
    fn works_in_gf4_and_gf16() {
        for w in [4u8, 16] {
            let gf = GaloisField::new(w).unwrap();
            let p = CodeParams::new(2, 2, w).unwrap();
            let g = generator_good(p).unwrap();
            assert!(g.is_mds_generator(&gf), "w={w}");
        }
    }
}
