//! XOR operation schedules derived from a bit-matrix.
//!
//! A `(m·w) × (k·w)` parity bit-matrix describes each parity *sub-packet*
//! (bit-row) as an XOR of data sub-packets (bit-columns). A schedule
//! linearises that description into copy/XOR operations over sub-packet
//! buffers. Two strategies are provided, mirroring Jerasure:
//!
//! * **Dumb** — each parity row is computed from scratch from its set
//!   bits. All operations targeting different rows are independent, which
//!   is what the thread pool exploits.
//! * **Smart** — a parity row may instead be *derived* from an
//!   already-computed parity row when the bit-difference between the two
//!   rows is smaller than computing from scratch, saving XORs at the cost
//!   of creating inter-row dependencies.

use ecc_gf::BitMatrix;

/// Index of a sub-packet in the flat coding space.
///
/// Sub-packets `0 .. k·w` belong to the `k` data chunks (chunk `j`,
/// bit-row `c` is index `j·w + c`); sub-packets `k·w .. (k+m)·w` belong to
/// the parity chunks in the same layout.
pub type SubPacket = usize;

/// One XOR-schedule operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XorOp {
    /// `dst = src` — initialises a parity sub-packet.
    Copy {
        /// Source sub-packet (data or previously computed parity).
        src: SubPacket,
        /// Destination parity sub-packet.
        dst: SubPacket,
    },
    /// `dst ^= src` — accumulates into a parity sub-packet.
    Xor {
        /// Source sub-packet (data or previously computed parity).
        src: SubPacket,
        /// Destination parity sub-packet.
        dst: SubPacket,
    },
}

impl XorOp {
    /// Destination sub-packet of this operation.
    pub fn dst(&self) -> SubPacket {
        match *self {
            XorOp::Copy { dst, .. } | XorOp::Xor { dst, .. } => dst,
        }
    }

    /// Source sub-packet of this operation.
    pub fn src(&self) -> SubPacket {
        match *self {
            XorOp::Copy { src, .. } | XorOp::Xor { src, .. } => src,
        }
    }
}

/// Which scheduling strategy to use when turning a bit-matrix into
/// operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleKind {
    /// Every parity row computed from scratch (independent rows).
    Dumb,
    /// Rows may be derived from earlier rows to save XORs.
    #[default]
    Smart,
}

/// A linearised XOR schedule.
///
/// # Examples
///
/// ```
/// use ecc_erasure::{CodeParams, ErasureCode, ScheduleKind};
///
/// let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8)?)?;
/// let smart = code.schedule(ScheduleKind::Smart);
/// let dumb = code.schedule(ScheduleKind::Dumb);
/// assert!(smart.xor_count() <= dumb.xor_count());
/// # Ok::<(), ecc_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorSchedule {
    ops: Vec<XorOp>,
    k: usize,
    m: usize,
    w: usize,
}

impl XorSchedule {
    /// Builds a schedule from the parity part of a bit-matrix.
    ///
    /// `bits` must be the `(m·w) × (k·w)` expansion of the parity rows of
    /// the generator (identity rows excluded).
    ///
    /// # Panics
    ///
    /// Panics when the bit-matrix shape is not `(m·w) × (k·w)`.
    pub fn from_bitmatrix(
        bits: &BitMatrix,
        k: usize,
        m: usize,
        w: usize,
        kind: ScheduleKind,
    ) -> Self {
        assert_eq!(bits.rows(), m * w, "bit-matrix must have m*w rows");
        assert_eq!(bits.cols(), k * w, "bit-matrix must have k*w columns");
        match kind {
            ScheduleKind::Dumb => Self::dumb(bits, k, m, w),
            ScheduleKind::Smart => Self::smart(bits, k, m, w),
        }
    }

    fn dumb(bits: &BitMatrix, k: usize, m: usize, w: usize) -> Self {
        let parity_base = k * w;
        let mut ops = Vec::new();
        for row in 0..m * w {
            let dst = parity_base + row;
            let mut first = true;
            for col in bits.row_set_bits(row) {
                if first {
                    ops.push(XorOp::Copy { src: col, dst });
                    first = false;
                } else {
                    ops.push(XorOp::Xor { src: col, dst });
                }
            }
            // An all-zero row (possible only for a degenerate matrix)
            // still needs the destination zeroed; the executor zero-fills
            // parity buffers up front, so no op is required.
        }
        Self { ops, k, m, w }
    }

    fn smart(bits: &BitMatrix, k: usize, m: usize, w: usize) -> Self {
        let parity_base = k * w;
        let rows = m * w;
        let mut ops = Vec::new();
        let mut done: Vec<usize> = Vec::new();
        for row in 0..rows {
            let scratch_cost = bits.row_ones(row);
            // Best previously computed row to derive from.
            let derived = done.iter().map(|&prev| (bits.row_diff(row, prev) + 1, prev)).min();
            match derived {
                Some((cost, prev)) if cost < scratch_cost => {
                    let dst = parity_base + row;
                    ops.push(XorOp::Copy { src: parity_base + prev, dst });
                    for col in 0..k * w {
                        if bits.get(row, col) != bits.get(prev, col) {
                            ops.push(XorOp::Xor { src: col, dst });
                        }
                    }
                }
                _ => {
                    let dst = parity_base + row;
                    let mut first = true;
                    for col in bits.row_set_bits(row) {
                        if first {
                            ops.push(XorOp::Copy { src: col, dst });
                            first = false;
                        } else {
                            ops.push(XorOp::Xor { src: col, dst });
                        }
                    }
                }
            }
            done.push(row);
        }
        Self { ops, k, m, w }
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[XorOp] {
        &self.ops
    }

    /// Total number of operations (copies + XORs); proportional to the
    /// per-byte encode cost.
    pub fn xor_count(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no operation reads a parity sub-packet (dumb schedules
    /// and smart schedules that found no profitable derivations); such
    /// schedules can be executed row-parallel without dependencies.
    pub fn is_row_independent(&self) -> bool {
        let parity_base = self.k * self.w;
        self.ops.iter().all(|op| op.src() < parity_base)
    }

    /// Number of data chunks the schedule expects.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity chunks the schedule produces.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Field width (sub-packets per chunk).
    pub fn w(&self) -> usize {
        self.w
    }

    /// Fuses this schedule into multi-source chains — one
    /// [`FusedChain`] per destination run. See [`FusedSchedule`].
    pub fn fuse(&self) -> FusedSchedule {
        FusedSchedule::from_schedule(self)
    }
}

/// One fused operation: a run of schedule ops sharing a destination,
/// collapsed into `dst = (⊕ srcs)` (`assign`) or `dst ⊕= (⊕ srcs)`.
///
/// The kernel executes the chain in a single sweep
/// ([`ecc_gf::Kernel::xor_chain`]): the destination block stays in
/// registers while every source is folded in, so each destination byte
/// is written once per chain instead of once per op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedChain {
    /// Destination parity sub-packet.
    pub dst: SubPacket,
    /// `true` when the chain starts from a [`XorOp::Copy`] (the
    /// destination is overwritten), `false` when it accumulates.
    pub assign: bool,
    /// Source sub-packets, in the original op order. Data sources are
    /// `< k·w`; a smart derivation contributes one parity source.
    pub srcs: Vec<SubPacket>,
}

/// A [`XorSchedule`] regrouped by destination: the fusion pass of the
/// fused encode executor.
///
/// Both schedule builders emit every op for a parity row contiguously
/// (a `Copy` that initialises the row, then its `Xor`s), so run-length
/// grouping over consecutive same-destination ops captures each parity
/// *set* in one [`FusedChain`] without reordering anything — execution
/// order, and with it the smart schedule's row-derivation dependencies,
/// is preserved exactly. Fusion is pure regrouping of an XOR-linear
/// computation, so the result is bit-identical to the unfused schedule
/// (property-tested in `tests/fused_equiv_prop.rs`).
///
/// # Examples
///
/// ```
/// use ecc_erasure::{CodeParams, ErasureCode, ScheduleKind};
///
/// let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8)?)?;
/// let fused = code.schedule(ScheduleKind::Smart).fuse();
/// // One chain per parity row: each source stripe is now read once
/// // per parity set rather than once per schedule op.
/// assert_eq!(fused.chains().len(), 2 * 8);
/// # Ok::<(), ecc_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedSchedule {
    chains: Vec<FusedChain>,
    k: usize,
    m: usize,
    w: usize,
}

impl FusedSchedule {
    fn from_schedule(schedule: &XorSchedule) -> Self {
        let mut chains: Vec<FusedChain> = Vec::new();
        for op in schedule.ops() {
            let start_new = match (op, chains.last()) {
                // A Copy always opens a fresh chain: it overwrites dst.
                (XorOp::Copy { .. }, _) => true,
                (XorOp::Xor { dst, .. }, Some(last)) => *dst != last.dst,
                (XorOp::Xor { .. }, None) => true,
            };
            if start_new {
                chains.push(FusedChain {
                    dst: op.dst(),
                    assign: matches!(op, XorOp::Copy { .. }),
                    srcs: vec![op.src()],
                });
            } else {
                chains.last_mut().expect("chain opened above").srcs.push(op.src());
            }
        }
        Self { chains, k: schedule.k(), m: schedule.m(), w: schedule.w() }
    }

    /// The fused chains in execution order.
    pub fn chains(&self) -> &[FusedChain] {
        &self.chains
    }

    /// Total number of source reads — identical to the unfused
    /// schedule's [`XorSchedule::xor_count`].
    pub fn xor_count(&self) -> usize {
        self.chains.iter().map(|c| c.srcs.len()).sum()
    }

    /// Number of data chunks the schedule expects.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity chunks the schedule produces.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Field width (sub-packets per chunk).
    pub fn w(&self) -> usize {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cauchy, CodeParams};
    use ecc_gf::{GaloisField, Matrix};

    fn parity_bits(k: usize, m: usize, w: u8) -> BitMatrix {
        let gf = GaloisField::new(w).unwrap();
        let g = cauchy::generator_good(CodeParams::new(k, m, w).unwrap()).unwrap();
        let parity = g.select_rows(&(k..k + m).collect::<Vec<_>>());
        BitMatrix::from_gf_matrix(&parity, &gf)
    }

    #[test]
    fn dumb_schedule_is_row_independent() {
        let bits = parity_bits(2, 2, 8);
        let s = XorSchedule::from_bitmatrix(&bits, 2, 2, 8, ScheduleKind::Dumb);
        assert!(s.is_row_independent());
        assert_eq!(s.xor_count(), bits.ones());
    }

    #[test]
    fn smart_schedule_never_costs_more() {
        for (k, m) in [(2, 2), (4, 2), (4, 4), (6, 3)] {
            let bits = parity_bits(k, m, 8);
            let dumb = XorSchedule::from_bitmatrix(&bits, k, m, 8, ScheduleKind::Dumb);
            let smart = XorSchedule::from_bitmatrix(&bits, k, m, 8, ScheduleKind::Smart);
            assert!(
                smart.xor_count() <= dumb.xor_count(),
                "k={k} m={m}: smart {} > dumb {}",
                smart.xor_count(),
                dumb.xor_count()
            );
        }
    }

    #[test]
    fn every_parity_row_is_initialised_with_copy() {
        let bits = parity_bits(3, 3, 8);
        for kind in [ScheduleKind::Dumb, ScheduleKind::Smart] {
            let s = XorSchedule::from_bitmatrix(&bits, 3, 3, 8, kind);
            let parity_base = 3 * 8;
            let mut initialised = [false; 3 * 8];
            for op in s.ops() {
                match *op {
                    XorOp::Copy { dst, .. } => initialised[dst - parity_base] = true,
                    XorOp::Xor { dst, .. } => {
                        assert!(initialised[dst - parity_base], "xor before copy at {dst}")
                    }
                }
            }
            assert!(initialised.iter().all(|&b| b));
        }
    }

    #[test]
    fn smart_derivation_reads_only_completed_rows() {
        let bits = parity_bits(4, 4, 8);
        let s = XorSchedule::from_bitmatrix(&bits, 4, 4, 8, ScheduleKind::Smart);
        let parity_base = 4 * 8;
        let mut completed = [false; 4 * 8];
        let mut current: Option<usize> = None;
        for op in s.ops() {
            let dst_row = op.dst() - parity_base;
            if current != Some(dst_row) {
                if let Some(prev) = current {
                    completed[prev] = true;
                }
                current = Some(dst_row);
            }
            if op.src() >= parity_base {
                assert!(completed[op.src() - parity_base], "reads incomplete row");
            }
        }
    }

    #[test]
    fn fuse_groups_each_parity_row_into_one_assign_chain() {
        for (k, m) in [(2, 2), (4, 2), (6, 3)] {
            let bits = parity_bits(k, m, 8);
            for kind in [ScheduleKind::Dumb, ScheduleKind::Smart] {
                let s = XorSchedule::from_bitmatrix(&bits, k, m, 8, kind);
                let fused = s.fuse();
                assert_eq!(fused.xor_count(), s.xor_count(), "fusion must not change reads");
                assert_eq!((fused.k(), fused.m(), fused.w()), (k, m, 8));
                // Both builders emit per-row runs opened by a Copy, so
                // fusion yields exactly one assigning chain per parity
                // row, in row order.
                assert_eq!(fused.chains().len(), m * 8);
                for (row, chain) in fused.chains().iter().enumerate() {
                    assert_eq!(chain.dst, k * 8 + row);
                    assert!(chain.assign, "row {row} must assign");
                    assert!(!chain.srcs.is_empty());
                }
            }
        }
    }

    #[test]
    fn fuse_handles_interleaved_destinations_without_reordering() {
        // Hand-built interleaved schedule (no builder emits this shape,
        // but fusion must stay semantics-preserving for any op list):
        // a run returning to an earlier dst becomes an accumulate chain.
        let ops = vec![
            XorOp::Copy { src: 0, dst: 16 },
            XorOp::Xor { src: 1, dst: 16 },
            XorOp::Copy { src: 2, dst: 17 },
            XorOp::Xor { src: 3, dst: 16 },
            XorOp::Xor { src: 4, dst: 16 },
        ];
        let s = XorSchedule { ops, k: 2, m: 2, w: 8 };
        let fused = s.fuse();
        assert_eq!(fused.chains().len(), 3);
        assert_eq!(fused.xor_count(), 5);
        let last = &fused.chains()[2];
        assert_eq!((last.dst, last.assign, last.srcs.as_slice()), (16, false, &[3, 4][..]));
    }

    #[test]
    fn identity_parity_block_schedules_one_copy_per_row() {
        // Parity part == identity (replication-like): one op per row.
        let gf = GaloisField::new(8).unwrap();
        let bits = BitMatrix::from_gf_matrix(&Matrix::identity(2), &gf);
        let s = XorSchedule::from_bitmatrix(&bits, 2, 2, 8, ScheduleKind::Dumb);
        assert_eq!(s.xor_count(), 16);
        assert!(s.ops().iter().all(|op| matches!(op, XorOp::Copy { .. })));
    }
}
