//! Systematic Vandermonde Reed–Solomon generators.
//!
//! Kept as the comparison point for the coding-scheme ablation bench: the
//! paper chooses *Cauchy* RS because its bit-matrix expansion is XOR-only,
//! whereas the classic Vandermonde construction is usually driven through
//! log/exp-table multiplication.

use ecc_gf::{GaloisField, Matrix};

use crate::{CodeParams, ErasureError};

/// Builds a systematic Vandermonde generator `(k + m) × k`.
///
/// Starts from the Vandermonde matrix `V[i][j] = alpha_i^j` with distinct
/// evaluation points `alpha_i = i`, then right-multiplies by the inverse of
/// the top `k × k` block. Every `k`-row subset of a Vandermonde matrix with
/// distinct points is invertible, and right-multiplying by a fixed
/// invertible matrix preserves that, so the result is systematic and MDS.
///
/// # Errors
///
/// Propagates field errors; fails with [`ErasureError::InvalidParams`]
/// indirectly if the top block is singular (cannot happen for distinct
/// points, but guarded anyway).
pub fn generator(params: CodeParams) -> Result<Matrix, ErasureError> {
    let gf = GaloisField::new(params.w())?;
    let (k, n) = (params.k(), params.n());
    let v = Matrix::from_fn(n, k, |i, j| gf.pow(i as u16, j as u32));
    let top = v.select_rows(&(0..k).collect::<Vec<_>>());
    let top_inv = top.inverted(&gf)?;
    Ok(v.mul(&top_inv, &gf)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_systematic() {
        let p = CodeParams::new(3, 2, 8).unwrap();
        let g = generator(p).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), u16::from(i == j));
            }
        }
    }

    #[test]
    fn generator_is_mds_small() {
        let gf = GaloisField::new(8).unwrap();
        for (k, m) in [(2, 2), (3, 2), (2, 3), (4, 3)] {
            let g = generator(CodeParams::new(k, m, 8).unwrap()).unwrap();
            assert!(g.is_mds_generator(&gf), "k={k} m={m}");
        }
    }

    #[test]
    fn works_in_gf16() {
        let gf = GaloisField::new(16).unwrap();
        let g = generator(CodeParams::new(3, 3, 16).unwrap()).unwrap();
        assert!(g.is_mds_generator(&gf));
    }
}
