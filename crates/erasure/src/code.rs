use ecc_gf::{BitMatrix, GaloisField, Matrix};
use ecc_telemetry::{Counter, Recorder};
use ecc_trace::{Tracer, TrackId, CODING_PID};

use crate::schedule::{FusedSchedule, ScheduleKind, XorOp, XorSchedule};
use crate::{cauchy, region, vandermonde, CodeParams, ErasureError};

/// Cached telemetry handles, looked up once at attach time so the coding
/// hot path pays only relaxed atomic adds.
#[derive(Debug, Clone)]
pub(crate) struct CodeMetrics {
    pub(crate) recorder: Recorder,
    pub(crate) encode_calls: Counter,
    pub(crate) encode_bytes: Counter,
    pub(crate) encode_parity_bytes: Counter,
    pub(crate) encode_xor_ops: Counter,
    pub(crate) kernel_bytes: Counter,
    column_calls: Counter,
    column_bytes: Counter,
    decode_calls: Counter,
    decode_bytes: Counter,
    decode_rebuilt_chunks: Counter,
    decode_xor_ops: Counter,
}

impl CodeMetrics {
    pub(crate) fn attach(recorder: &Recorder) -> Self {
        Self {
            recorder: recorder.clone(),
            encode_calls: recorder.counter("erasure.encode.calls"),
            encode_bytes: recorder.counter("erasure.encode.bytes"),
            encode_parity_bytes: recorder.counter("erasure.encode.parity_bytes"),
            encode_xor_ops: recorder.counter("erasure.encode.xor_ops"),
            kernel_bytes: kernel_bytes_counter(recorder),
            column_calls: recorder.counter("erasure.column.calls"),
            column_bytes: recorder.counter("erasure.column.bytes"),
            decode_calls: recorder.counter("erasure.decode.calls"),
            decode_bytes: recorder.counter("erasure.decode.bytes"),
            decode_rebuilt_chunks: recorder.counter("erasure.decode.rebuilt_chunks"),
            decode_xor_ops: recorder.counter("erasure.decode.xor_ops"),
        }
    }
}

/// Per-kernel byte counter (`kernel.<name>.bytes`), plus a one-shot
/// `kernel.selected` event so traces show which SIMD path ran. The name
/// is resolved at attach time from the dispatched kernel.
pub(crate) fn kernel_bytes_counter(recorder: &Recorder) -> Counter {
    let name = ecc_gf::kernel::active_kernel().name();
    recorder.event("kernel.selected", name);
    recorder.counter(&format!("kernel.{name}.bytes"))
}

/// A systematic `(k + m, k)` erasure code operating on byte regions.
///
/// The generator matrix is `[I_k ; E']` (paper Eqn. 3). Encoding and
/// decoding go through the bit-matrix expansion, so they are pure XORs
/// regardless of the field width — the property that makes Cauchy
/// Reed–Solomon attractive for CPU-side checkpoint encoding (paper §IV-A).
///
/// Chunks are equal-length byte slices whose length is a multiple of
/// [`CodeParams::alignment`]; each chunk is internally treated as `w`
/// sub-packets.
///
/// # Examples
///
/// ```
/// use ecc_erasure::{CodeParams, ErasureCode};
///
/// let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8)?)?;
/// let data = [vec![1u8; 64], vec![2u8; 64]];
/// let parity = code.encode(&[&data[0], &data[1]])?;
/// assert_eq!(parity.len(), 2);
/// # Ok::<(), ecc_erasure::ErasureError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ErasureCode {
    params: CodeParams,
    gf: GaloisField,
    generator: Matrix,
    smart: XorSchedule,
    dumb: XorSchedule,
    /// Fused forms of the cached schedules ([`XorSchedule::fuse`]): the
    /// hot encode paths execute these so each source stripe is read once
    /// per parity set. The unfused forms stay callable
    /// ([`ErasureCode::encode_unfused`]) as the differential oracle.
    smart_fused: FusedSchedule,
    dumb_fused: FusedSchedule,
    /// Single-column smart schedules, one per data chunk: `columns[j]`
    /// produces the contribution of data chunk `j` alone to every parity
    /// chunk. By GF(2) linearity, XORing the `k` contributions equals a
    /// full encode — the decomposition the pipelined save executor and
    /// incremental updates are built on.
    columns: Vec<XorSchedule>,
    columns_fused: Vec<FusedSchedule>,
    metrics: Option<CodeMetrics>,
    tracer: Option<(Tracer, TrackId)>,
}

impl ErasureCode {
    /// Builds a code from an explicit systematic generator matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParams`] when the matrix shape is not
    /// `(k + m) × k` or the top `k × k` block is not the identity.
    pub fn from_generator(params: CodeParams, generator: Matrix) -> Result<Self, ErasureError> {
        if generator.rows() != params.n() || generator.cols() != params.k() {
            return Err(ErasureError::InvalidParams {
                detail: format!(
                    "generator must be {}x{}, got {}x{}",
                    params.n(),
                    params.k(),
                    generator.rows(),
                    generator.cols()
                ),
            });
        }
        for i in 0..params.k() {
            for j in 0..params.k() {
                if generator.get(i, j) != u16::from(i == j) {
                    return Err(ErasureError::InvalidParams {
                        detail: "generator is not systematic (top block is not identity)"
                            .to_string(),
                    });
                }
            }
        }
        let gf = GaloisField::new(params.w())?;
        let parity_rows: Vec<usize> = (params.k()..params.n()).collect();
        let parity = generator.select_rows(&parity_rows);
        let bits = BitMatrix::from_gf_matrix(&parity, &gf);
        let w = params.w() as usize;
        let smart =
            XorSchedule::from_bitmatrix(&bits, params.k(), params.m(), w, ScheduleKind::Smart);
        let dumb =
            XorSchedule::from_bitmatrix(&bits, params.k(), params.m(), w, ScheduleKind::Dumb);
        let columns: Vec<XorSchedule> = (0..params.k())
            .map(|chunk| {
                let column =
                    Matrix::from_fn(params.m(), 1, |i, _| generator.get(params.k() + i, chunk));
                let col_bits = BitMatrix::from_gf_matrix(&column, &gf);
                XorSchedule::from_bitmatrix(&col_bits, 1, params.m(), w, ScheduleKind::Smart)
            })
            .collect();
        let smart_fused = smart.fuse();
        let dumb_fused = dumb.fuse();
        let columns_fused = columns.iter().map(XorSchedule::fuse).collect();
        Ok(Self {
            params,
            gf,
            generator,
            smart,
            dumb,
            smart_fused,
            dumb_fused,
            columns,
            columns_fused,
            metrics: None,
            tracer: None,
        })
    }

    /// Attaches a telemetry recorder: encode/decode calls, bytes, XOR-op
    /// counts and latencies are recorded under `erasure.*`, and the
    /// smart/dumb schedule sizes are published once as
    /// `erasure.schedule.{smart,dumb}_xors`.
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        recorder.counter("erasure.schedule.smart_xors").add(self.smart.xor_count() as u64);
        recorder.counter("erasure.schedule.dumb_xors").add(self.dumb.xor_count() as u64);
        self.metrics = Some(CodeMetrics::attach(recorder));
    }

    /// Attaches a span tracer: every serial encode/decode emits an
    /// `erasure.{encode,decode}` span on the coding process's `coder`
    /// track.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        let track = tracer.track(CODING_PID, "coding", "coder");
        self.tracer = Some((tracer.clone(), track));
    }

    /// Builds the code ECCheck uses by default: the "good" Cauchy
    /// Reed–Solomon generator.
    ///
    /// # Errors
    ///
    /// Propagates generator-construction failures.
    pub fn cauchy_good(params: CodeParams) -> Result<Self, ErasureError> {
        Self::from_generator(params, cauchy::generator_good(params)?)
    }

    /// Builds a code from the raw (un-normalised) Cauchy generator.
    ///
    /// # Errors
    ///
    /// Propagates generator-construction failures.
    pub fn cauchy(params: CodeParams) -> Result<Self, ErasureError> {
        Self::from_generator(params, cauchy::generator(params)?)
    }

    /// Builds a code from a systematic Vandermonde generator (the
    /// comparison scheme in the coding ablation).
    ///
    /// # Errors
    ///
    /// Propagates generator-construction failures.
    pub fn vandermonde(params: CodeParams) -> Result<Self, ErasureError> {
        Self::from_generator(params, vandermonde::generator(params)?)
    }

    /// The code parameters.
    pub fn params(&self) -> CodeParams {
        self.params
    }

    /// The underlying Galois field.
    pub fn gf(&self) -> &GaloisField {
        &self.gf
    }

    /// The full `(k + m) × k` generator matrix.
    pub fn generator(&self) -> &Matrix {
        &self.generator
    }

    /// Generator coefficient `e_{row,col}` — what a worker multiplies its
    /// packet by when producing the encoded packet destined for parity
    /// chunk `row` (paper Fig. 6, the "encoding" step).
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    pub fn coef(&self, row: usize, col: usize) -> u16 {
        self.generator.get(row, col)
    }

    /// The cached XOR schedule of the given kind.
    pub fn schedule(&self, kind: ScheduleKind) -> &XorSchedule {
        match kind {
            ScheduleKind::Smart => &self.smart,
            ScheduleKind::Dumb => &self.dumb,
        }
    }

    /// The cached fused form of the schedule of the given kind — what
    /// the encode paths actually execute.
    pub fn fused_schedule(&self, kind: ScheduleKind) -> &FusedSchedule {
        match kind {
            ScheduleKind::Smart => &self.smart_fused,
            ScheduleKind::Dumb => &self.dumb_fused,
        }
    }

    /// Encodes `k` data chunks into `m` parity chunks using the smart
    /// schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::BadChunkLength`] when the chunk count is not
    /// `k`, lengths differ, or the length is not a multiple of
    /// [`CodeParams::alignment`].
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, ErasureError> {
        self.encode_with(data, ScheduleKind::Smart)
    }

    /// Encodes with an explicit schedule kind.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ErasureCode::encode`].
    pub fn encode_with(
        &self,
        data: &[&[u8]],
        kind: ScheduleKind,
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        self.encode_impl(data, kind, true)
    }

    /// Encodes through the *unfused* op-at-a-time executor — the
    /// reference path the fused executor is differentially tested
    /// against (`tests/fused_equiv_prop.rs`). Bit-identical to
    /// [`ErasureCode::encode_with`], just slower.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ErasureCode::encode`].
    pub fn encode_unfused(
        &self,
        data: &[&[u8]],
        kind: ScheduleKind,
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        self.encode_impl(data, kind, false)
    }

    fn encode_impl(
        &self,
        data: &[&[u8]],
        kind: ScheduleKind,
        fused: bool,
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        let ps = self.validate_chunks(data, self.params.k())?;
        let timer = self.metrics.as_ref().map(|m| m.recorder.timer("erasure.encode.ns"));
        let span = self.tracer.as_ref().map(|(tracer, track)| {
            let bytes: usize = data.iter().map(|c| c.len()).sum();
            tracer.span(*track, "erasure.encode", format!("{kind:?}, {bytes} B"))
        });
        let parity = if fused {
            run_fused_on(self.fused_schedule(kind), data, ps)
        } else {
            run_schedule_on(self.schedule(kind), data, ps)
        };
        drop(span);
        drop(timer);
        if let Some(m) = &self.metrics {
            let payload: u64 = data.iter().map(|c| c.len() as u64).sum();
            m.encode_calls.incr();
            m.encode_bytes.add(payload);
            m.encode_parity_bytes.add(parity.iter().map(|c| c.len() as u64).sum());
            m.encode_xor_ops.add(self.schedule(kind).xor_count() as u64);
            m.kernel_bytes.add(payload);
        }
        Ok(parity)
    }

    /// Reconstructs all `k` data chunks from any `k` surviving chunks.
    ///
    /// `shards[i]` is `Some` when chunk `i` (data for `i < k`, parity
    /// otherwise) survives. Present data chunks are returned as-is; missing
    /// ones are decoded via the inverted survivor submatrix (paper Eqn. 5).
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::TooFewSurvivors`] with fewer than `k`
    /// shards, and [`ErasureError::BadChunkLength`] on inconsistent chunk
    /// lengths.
    pub fn decode(&self, shards: &[Option<&[u8]>]) -> Result<Vec<Vec<u8>>, ErasureError> {
        self.decode_impl(shards, true)
    }

    /// Decodes through the *unfused* op-at-a-time executor — the
    /// reference path for the fused differential suite. Bit-identical to
    /// [`ErasureCode::decode`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ErasureCode::decode`].
    pub fn decode_unfused(&self, shards: &[Option<&[u8]>]) -> Result<Vec<Vec<u8>>, ErasureError> {
        self.decode_impl(shards, false)
    }

    fn decode_impl(
        &self,
        shards: &[Option<&[u8]>],
        fused: bool,
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        let (k, n) = (self.params.k(), self.params.n());
        if shards.len() != n {
            return Err(ErasureError::BadChunkLength {
                detail: format!("expected {n} shard slots, got {}", shards.len()),
            });
        }
        let present: Vec<usize> = (0..n).filter(|&i| shards[i].is_some()).collect();
        if present.len() < k {
            return Err(ErasureError::TooFewSurvivors { needed: k, available: present.len() });
        }
        let survivors: Vec<usize> = present.into_iter().take(k).collect();
        let survivor_slices: Vec<&[u8]> =
            survivors.iter().map(|&i| shards[i].expect("survivor present")).collect();
        let ps = self.validate_chunks(&survivor_slices, k)?;

        let missing: Vec<usize> = (0..k).filter(|&i| shards[i].is_none()).collect();
        let timer = self.metrics.as_ref().map(|m| m.recorder.timer("erasure.decode.ns"));
        let span = self.tracer.as_ref().map(|(tracer, track)| {
            tracer.span(*track, "erasure.decode", format!("{} missing", missing.len()))
        });
        let mut out: Vec<Option<Vec<u8>>> = (0..k).map(|i| shards[i].map(|s| s.to_vec())).collect();
        if !missing.is_empty() {
            let sub = self.generator.select_rows(&survivors);
            let inv = sub.inverted(&self.gf)?;
            let rows = inv.select_rows(&missing);
            let bits = BitMatrix::from_gf_matrix(&rows, &self.gf);
            let w = self.params.w() as usize;
            let schedule =
                XorSchedule::from_bitmatrix(&bits, k, missing.len(), w, ScheduleKind::Smart);
            // Ad-hoc decode schedules are fused on the fly (grouping is
            // linear in the op count, noise next to the inversion).
            let rebuilt = if fused {
                run_fused_on(&schedule.fuse(), &survivor_slices, ps)
            } else {
                run_schedule_on(&schedule, &survivor_slices, ps)
            };
            if let Some(m) = &self.metrics {
                m.decode_xor_ops.add(schedule.xor_count() as u64);
            }
            for (slot, chunk) in missing.iter().zip(rebuilt) {
                out[*slot] = Some(chunk);
            }
        }
        drop(span);
        drop(timer);
        if let Some(m) = &self.metrics {
            m.decode_calls.incr();
            m.decode_bytes.add((k * survivor_slices[0].len()) as u64);
            m.decode_rebuilt_chunks.add(missing.len() as u64);
            m.kernel_bytes.add((k * survivor_slices[0].len()) as u64);
        }
        Ok(out.into_iter().map(|c| c.expect("all data chunks filled")).collect())
    }

    /// Reconstructs *all* `n` chunks (data and parity), reusing surviving
    /// chunks and recomputing the rest — the step that restores full fault
    /// tolerance after a failure (paper §III-B recovery task 2).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ErasureCode::decode`].
    pub fn reconstruct_all(&self, shards: &[Option<&[u8]>]) -> Result<Vec<Vec<u8>>, ErasureError> {
        let (k, n) = (self.params.k(), self.params.n());
        let data = self.decode(shards)?;
        let data_refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let missing_parity: Vec<usize> = (k..n).filter(|&i| shards[i].is_none()).collect();
        let mut parity: Vec<Option<Vec<u8>>> =
            (k..n).map(|i| shards[i].map(|s| s.to_vec())).collect();
        if !missing_parity.is_empty() {
            let rows = self.generator.select_rows(&missing_parity);
            let bits = BitMatrix::from_gf_matrix(&rows, &self.gf);
            let w = self.params.w() as usize;
            let ps = data[0].len() / w;
            let schedule =
                XorSchedule::from_bitmatrix(&bits, k, missing_parity.len(), w, ScheduleKind::Smart);
            let rebuilt = run_fused_on(&schedule.fuse(), &data_refs, ps);
            if let Some(m) = &self.metrics {
                m.decode_xor_ops.add(schedule.xor_count() as u64);
                m.decode_rebuilt_chunks.add(missing_parity.len() as u64);
            }
            for (slot, chunk) in missing_parity.iter().zip(rebuilt) {
                parity[*slot - k] = Some(chunk);
            }
        }
        let mut all = data;
        all.extend(parity.into_iter().map(|c| c.expect("all parity chunks filled")));
        Ok(all)
    }

    /// The `n × k` decode matrix `G · G_S^{-1}` for a survivor set: row `c`
    /// expresses chunk `c` as a combination of the `k` survivor chunks
    /// (unit rows for the survivors themselves). This is the matrix `E'`
    /// that ECCheck distributes to nodes during recovery (paper Fig. 7).
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::TooFewSurvivors`] unless exactly `k`
    /// distinct, in-range survivor indices are given.
    pub fn decode_matrix(&self, survivors: &[usize]) -> Result<Matrix, ErasureError> {
        let k = self.params.k();
        if survivors.len() != k {
            return Err(ErasureError::TooFewSurvivors { needed: k, available: survivors.len() });
        }
        let mut sorted = survivors.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != k || *sorted.last().expect("non-empty") >= self.params.n() {
            return Err(ErasureError::InvalidParams {
                detail: "survivor indices must be distinct chunk ids".to_string(),
            });
        }
        let sub = self.generator.select_rows(survivors);
        let inv = sub.inverted(&self.gf)?;
        Ok(self.generator.mul(&inv, &self.gf)?)
    }

    /// Exhaustively verifies the MDS property (every `k`-row submatrix of
    /// the generator invertible). Exponential; use in tests only.
    pub fn verify_mds(&self) -> bool {
        self.generator.is_mds_generator(&self.gf)
    }

    fn validate_chunks(&self, chunks: &[&[u8]], expect: usize) -> Result<usize, ErasureError> {
        if chunks.len() != expect {
            return Err(ErasureError::BadChunkLength {
                detail: format!("expected {expect} chunks, got {}", chunks.len()),
            });
        }
        let len = chunks[0].len();
        if len == 0 || !len.is_multiple_of(self.params.alignment()) {
            return Err(ErasureError::BadChunkLength {
                detail: format!(
                    "chunk length {len} must be a positive multiple of {}",
                    self.params.alignment()
                ),
            });
        }
        if chunks.iter().any(|c| c.len() != len) {
            return Err(ErasureError::BadChunkLength {
                detail: "chunks must all have the same length".to_string(),
            });
        }
        Ok(len / self.params.w() as usize)
    }
}

/// Executes an XOR schedule over real byte regions.
///
/// `sources` are the schedule's `k` input chunks, each `w · ps` bytes; the
/// return value holds the schedule's `m` output chunks. Exposed at crate
/// level so the thread pool can drive per-stripe executions.
pub(crate) fn run_schedule_on(
    schedule: &XorSchedule,
    sources: &[&[u8]],
    ps: usize,
) -> Vec<Vec<u8>> {
    let (m, w) = (schedule.m(), schedule.w());
    let parity_subs = run_schedule_stripe(schedule, sources, ps, 0, ps);
    // Reassemble sub-packets into contiguous chunks.
    (0..m)
        .map(|i| {
            let mut chunk = Vec::with_capacity(w * ps);
            for r in 0..w {
                chunk.extend_from_slice(&parity_subs[i * w + r]);
            }
            chunk
        })
        .collect()
}

/// Cache-blocking target for one schedule pass: the working set of a
/// block — one block-sized slice of every data *and* parity sub-packet,
/// `(k + m)·w·block` bytes — should fit comfortably in L2 so parity lines
/// and kernel tables stay resident across the whole op list instead of
/// being streamed out between ops.
const L2_BLOCK_TARGET: usize = 128 * 1024;

/// Minimum block size; below this the per-op slicing overhead outweighs
/// any locality win, so small stripes run as a single block.
const MIN_BLOCK: usize = 4096;

/// Block length (bytes of each sub-packet per pass) for a `(k, m, w)`
/// schedule, cache-line aligned.
fn schedule_block_len(k: usize, m: usize, w: usize) -> usize {
    let subpackets = ((k + m) * w).max(1);
    let raw = (L2_BLOCK_TARGET / subpackets).max(MIN_BLOCK);
    (raw + 63) & !63
}

/// Executes a schedule over the byte range `[lo, hi)` of every sub-packet.
///
/// Because XOR schedules act independently on each byte column, executing
/// disjoint stripes on different threads and concatenating the results is
/// identical to a single full-width execution — this is the primitive the
/// paper's thread-pool technique (§IV-A) is built on. Returns the `m·w`
/// parity sub-packet stripes, each `hi - lo` bytes.
///
/// Internally the stripe is processed in L2-sized blocks (the full op
/// list runs per block before advancing — see [`schedule_block_len`]);
/// since every op is column-wise this is bit-identical to one full-width
/// pass, property-tested in `tests/kernel_equiv_prop.rs`.
pub(crate) fn run_schedule_stripe(
    schedule: &XorSchedule,
    sources: &[&[u8]],
    ps: usize,
    lo: usize,
    hi: usize,
) -> Vec<Vec<u8>> {
    let (k, m, w) = (schedule.k(), schedule.m(), schedule.w());
    debug_assert_eq!(sources.len(), k);
    debug_assert!(lo <= hi && hi <= ps);
    let stripe = hi - lo;
    let parity_base = k * w;
    let mut parity_subs: Vec<Vec<u8>> = vec![vec![0u8; stripe]; m * w];
    let block = schedule_block_len(k, m, w);
    let mut blo = 0usize;
    while blo < stripe {
        let bhi = (blo + block).min(stripe);
        for op in schedule.ops() {
            let dst = op.dst() - parity_base;
            let src = op.src();
            if src < parity_base {
                let base = (src % w) * ps + lo;
                let src_slice = &sources[src / w][base + blo..base + bhi];
                match op {
                    XorOp::Copy { .. } => {
                        region::copy_into(&mut parity_subs[dst][blo..bhi], src_slice)
                    }
                    XorOp::Xor { .. } => {
                        region::xor_into(&mut parity_subs[dst][blo..bhi], src_slice)
                    }
                }
            } else {
                let src_idx = src - parity_base;
                debug_assert_ne!(src_idx, dst, "schedule must not read its own destination");
                let [s, d] = parity_subs
                    .get_disjoint_mut([src_idx, dst])
                    .expect("schedule indices are distinct and in range");
                match op {
                    XorOp::Copy { .. } => region::copy_into(&mut d[blo..bhi], &s[blo..bhi]),
                    XorOp::Xor { .. } => region::xor_into(&mut d[blo..bhi], &s[blo..bhi]),
                }
            }
        }
        blo = bhi;
    }
    parity_subs
}

/// [`run_schedule_on`] for a fused schedule — the default encode
/// executor.
pub(crate) fn run_fused_on(fused: &FusedSchedule, sources: &[&[u8]], ps: usize) -> Vec<Vec<u8>> {
    let (m, w) = (fused.m(), fused.w());
    let parity_subs = run_fused_stripe(fused, sources, ps, 0, ps);
    (0..m)
        .map(|i| {
            let mut chunk = Vec::with_capacity(w * ps);
            for r in 0..w {
                chunk.extend_from_slice(&parity_subs[i * w + r]);
            }
            chunk
        })
        .collect()
}

/// [`run_schedule_stripe`] for a fused schedule: every chain executes as
/// one [`ecc_gf::Kernel::xor_chain`] sweep per L2 block, so each
/// destination block is written once per parity set and stays in
/// registers while its sources stream through. Bit-identical to the
/// unfused executor (fusion only regroups an XOR-linear computation;
/// property-tested in `tests/fused_equiv_prop.rs`).
pub(crate) fn run_fused_stripe(
    fused: &FusedSchedule,
    sources: &[&[u8]],
    ps: usize,
    lo: usize,
    hi: usize,
) -> Vec<Vec<u8>> {
    let (k, m, w) = (fused.k(), fused.m(), fused.w());
    debug_assert_eq!(sources.len(), k);
    debug_assert!(lo <= hi && hi <= ps);
    let stripe = hi - lo;
    let parity_base = k * w;
    let mut parity_subs: Vec<Vec<u8>> = vec![vec![0u8; stripe]; m * w];
    let kernel = ecc_gf::kernel::active_kernel();
    let block = schedule_block_len(k, m, w);
    let mut blo = 0usize;
    while blo < stripe {
        let bhi = (blo + block).min(stripe);
        for chain in fused.chains() {
            let dst = chain.dst - parity_base;
            // Move the destination buffer out (a Vec header swap) so the
            // chain's sources may borrow sibling parity rows — smart
            // derivations read previously completed rows.
            let mut dst_buf = std::mem::take(&mut parity_subs[dst]);
            let srcs: Vec<&[u8]> = chain
                .srcs
                .iter()
                .map(|&src| {
                    if src < parity_base {
                        let base = (src % w) * ps + lo;
                        &sources[src / w][base + blo..base + bhi]
                    } else {
                        debug_assert_ne!(
                            src - parity_base,
                            dst,
                            "chain must not read its own destination"
                        );
                        &parity_subs[src - parity_base][blo..bhi]
                    }
                })
                .collect();
            kernel.xor_chain(&mut dst_buf[blo..bhi], &srcs, chain.assign);
            drop(srcs);
            parity_subs[dst] = dst_buf;
        }
        blo = bhi;
    }
    parity_subs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_chunks(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k).map(|_| (0..len).map(|_| rand::Rng::gen(&mut rng)).collect()).collect()
    }

    fn all_erasure_patterns(n: usize, erased: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut combo: Vec<usize> = (0..erased).collect();
        loop {
            out.push(combo.clone());
            let mut i = erased;
            let mut advanced = false;
            while i > 0 {
                i -= 1;
                if combo[i] < n - erased + i {
                    combo[i] += 1;
                    for j in i + 1..erased {
                        combo[j] = combo[j - 1] + 1;
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return out;
            }
        }
    }

    fn roundtrip(code: &ErasureCode, len: usize) {
        let p = code.params();
        let data = random_chunks(p.k(), len, 42);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        let mut chunks: Vec<&[u8]> = refs.clone();
        chunks.extend(parity.iter().map(|c| c.as_slice()));
        for erased_count in 1..=p.m() {
            for pattern in all_erasure_patterns(p.n(), erased_count) {
                let shards: Vec<Option<&[u8]>> =
                    (0..p.n()).map(|i| (!pattern.contains(&i)).then(|| chunks[i])).collect();
                let decoded = code.decode(&shards).unwrap();
                assert_eq!(decoded, data, "pattern {pattern:?}");
            }
        }
    }

    #[test]
    fn paper_setting_roundtrip_all_patterns() {
        // k = m = 2 as in the paper's testbed; every 1- and 2-erasure
        // pattern must decode bit-exactly.
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        roundtrip(&code, 256);
    }

    #[test]
    fn wider_codes_roundtrip() {
        for (k, m) in [(4, 2), (3, 3), (5, 3)] {
            let code = ErasureCode::cauchy_good(CodeParams::new(k, m, 8).unwrap()).unwrap();
            roundtrip(&code, 128);
        }
    }

    #[test]
    fn vandermonde_roundtrip() {
        let code = ErasureCode::vandermonde(CodeParams::new(3, 2, 8).unwrap()).unwrap();
        roundtrip(&code, 128);
    }

    #[test]
    fn raw_cauchy_roundtrip() {
        let code = ErasureCode::cauchy(CodeParams::new(3, 2, 8).unwrap()).unwrap();
        roundtrip(&code, 128);
    }

    #[test]
    fn gf4_and_gf16_roundtrip() {
        for w in [4u8, 16] {
            let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, w).unwrap()).unwrap();
            roundtrip(&code, 2 * code.params().alignment());
        }
    }

    #[test]
    fn dumb_and_smart_encode_agree() {
        let code = ErasureCode::cauchy_good(CodeParams::new(4, 3, 8).unwrap()).unwrap();
        let data = random_chunks(4, 192, 7);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let smart = code.encode_with(&refs, ScheduleKind::Smart).unwrap();
        let dumb = code.encode_with(&refs, ScheduleKind::Dumb).unwrap();
        assert_eq!(smart, dumb);
    }

    #[test]
    fn encode_matches_matrix_arithmetic() {
        // Cross-check the byte-region path against symbol-level math: with
        // chunks of exactly `alignment` bytes, treat each chunk as w·8/w
        // symbols... simpler: single-symbol-per-subpacket comparison via
        // mul_vec on one byte column.
        let params = CodeParams::new(2, 2, 8).unwrap();
        let code = ErasureCode::cauchy_good(params).unwrap();
        let gf = code.gf();
        // One byte per sub-packet is below alignment, so use alignment-wide
        // chunks with a repeated value; then every byte of parity sub-packet
        // r is the same function of the data bytes.
        let d0 = vec![0xA7u8; 64];
        let d1 = vec![0x35u8; 64];
        let parity = code.encode(&[&d0, &d1]).unwrap();
        // Symbol-level: p_i = e_i0*d0 + e_i1*d1 evaluated byte-wise. A byte
        // of chunk j at sub-packet c carries bit c of consecutive symbols,
        // so with constant fill the symbol seen by the decoder is the fill
        // byte itself only when interpreted bit-plane-wise. Instead verify
        // via decode: erase both data chunks and ensure parity alone
        // recovers the exact fills.
        let shards: Vec<Option<&[u8]>> = vec![None, None, Some(&parity[0]), Some(&parity[1])];
        let decoded = code.decode(&shards).unwrap();
        assert!(decoded[0].iter().all(|&b| b == 0xA7));
        assert!(decoded[1].iter().all(|&b| b == 0x35));
        // And the generator coefficients are exposed:
        assert_eq!(code.coef(0, 0), 1);
        assert_eq!(code.coef(1, 1), 1);
        assert_ne!(gf.mul(code.coef(2, 0), 1), 0);
    }

    #[test]
    fn decode_matrix_has_unit_rows_for_survivors() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        // Survivors: data chunk 0 and parity chunk 1 (paper Eqn. 5 example).
        let dm = code.decode_matrix(&[0, 3]).unwrap();
        assert_eq!((dm.rows(), dm.cols()), (4, 2));
        assert_eq!(dm.row(0), &[1, 0]); // chunk 0 = survivor 0
        assert_eq!(dm.row(3), &[0, 1]); // chunk 3 = survivor 1
                                        // Applying the decode matrix to survivor symbols must reproduce the
                                        // generator relation: dm * [d0; p1] == all chunks. Verify via symbols.
        let gf = code.gf();
        let d = [17u16, 201u16];
        let chunks: Vec<u16> = (0..4)
            .map(|r| (0..2).fold(0u16, |acc, c| acc ^ gf.mul(code.coef(r, c), d[c])))
            .collect();
        let survivors = [chunks[0], chunks[3]];
        for (r, &expected) in chunks.iter().enumerate() {
            let rebuilt = (0..2).fold(0u16, |acc, c| acc ^ gf.mul(dm.get(r, c), survivors[c]));
            assert_eq!(rebuilt, expected, "chunk {r}");
        }
    }

    #[test]
    fn reconstruct_all_restores_parity() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let data = random_chunks(2, 128, 3);
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = code.encode(&refs).unwrap();
        // Lose data chunk 1 and parity chunk 0.
        let shards: Vec<Option<&[u8]>> = vec![Some(&data[0]), None, None, Some(&parity[1])];
        let all = code.reconstruct_all(&shards).unwrap();
        assert_eq!(all[0], data[0]);
        assert_eq!(all[1], data[1]);
        assert_eq!(all[2], parity[0]);
        assert_eq!(all[3], parity[1]);
    }

    #[test]
    fn too_few_survivors_is_an_error() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let d0 = vec![0u8; 64];
        let shards: Vec<Option<&[u8]>> = vec![Some(&d0), None, None, None];
        assert!(matches!(
            code.decode(&shards),
            Err(ErasureError::TooFewSurvivors { needed: 2, available: 1 })
        ));
    }

    #[test]
    fn misaligned_chunks_are_rejected() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let d = vec![0u8; 63];
        assert!(matches!(code.encode(&[&d, &d]), Err(ErasureError::BadChunkLength { .. })));
        let a = vec![0u8; 64];
        let b = vec![0u8; 128];
        assert!(matches!(code.encode(&[&a, &b]), Err(ErasureError::BadChunkLength { .. })));
    }

    #[test]
    fn non_systematic_generator_is_rejected() {
        let params = CodeParams::new(2, 2, 8).unwrap();
        let bad = Matrix::from_fn(4, 2, |_, _| 3);
        assert!(matches!(
            ErasureCode::from_generator(params, bad),
            Err(ErasureError::InvalidParams { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Any k-of-n subset decodes back to the original data for random
        /// payloads (the fundamental MDS recovery invariant).
        #[test]
        fn prop_any_k_subset_decodes(
            seed in any::<u64>(),
            pattern_seed in any::<u64>(),
        ) {
            let code = ErasureCode::cauchy_good(CodeParams::new(3, 2, 8).unwrap()).unwrap();
            let data = random_chunks(3, 128, seed);
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = code.encode(&refs).unwrap();
            let mut chunks: Vec<&[u8]> = refs.clone();
            chunks.extend(parity.iter().map(|c| c.as_slice()));
            let mut rng = StdRng::seed_from_u64(pattern_seed);
            let mut ids: Vec<usize> = (0..5).collect();
            ids.shuffle(&mut rng);
            let keep: Vec<usize> = ids.into_iter().take(3).collect();
            let shards: Vec<Option<&[u8]>> = (0..5)
                .map(|i| keep.contains(&i).then(|| chunks[i]))
                .collect();
            prop_assert_eq!(code.decode(&shards).unwrap(), data);
        }
    }
}

impl ErasureCode {
    /// Computes the parity *deltas* caused by replacing data chunk
    /// `chunk` with contents differing by `delta` (`delta = old ⊕ new`).
    ///
    /// By linearity of the code over GF(2), XORing the returned regions
    /// into the stored parity chunks updates them as if the full encode
    /// had been re-run — the basis for incremental checkpointing, where
    /// only a few tensors change between saves.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParams`] for an out-of-range chunk
    /// index and [`ErasureError::BadChunkLength`] for misaligned deltas.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecc_erasure::{CodeParams, ErasureCode};
    /// use ecc_erasure::region::xor_into;
    ///
    /// let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8)?)?;
    /// let old = [vec![1u8; 64], vec![2u8; 64]];
    /// let mut parity = code.encode(&[&old[0], &old[1]])?;
    ///
    /// // Chunk 1 changes; patch parity without touching chunk 0.
    /// let new1 = vec![9u8; 64];
    /// let mut delta = old[1].clone();
    /// xor_into(&mut delta, &new1);
    /// for (p, d) in parity.iter_mut().zip(code.parity_delta(1, &delta)?) {
    ///     xor_into(p, &d);
    /// }
    /// assert_eq!(parity, code.encode(&[&old[0], &new1])?);
    /// # Ok::<(), ecc_erasure::ErasureError>(())
    /// ```
    pub fn parity_delta(&self, chunk: usize, delta: &[u8]) -> Result<Vec<Vec<u8>>, ErasureError> {
        self.validate_column_region(chunk, delta)?;
        // Single-column generator: parity rows restricted to `chunk`,
        // pre-built at construction time (see `Self::columns`).
        let ps = delta.len() / self.params.w() as usize;
        Ok(run_fused_on(&self.columns_fused[chunk], &[delta], ps))
    }

    /// Computes the contribution of data chunk `chunk` (with contents
    /// `region`) to all `m` parity chunks, writing into `out` — a flat
    /// buffer holding the `m` contiguous contribution chunks back to
    /// back, so `out.len()` must be `m * region.len()`.
    ///
    /// This is [`ErasureCode::parity_delta`] restricted to a caller-owned
    /// output buffer: the pipelined save executor calls it per stripe
    /// from its worker threads, recycling `out` through a bounded ring so
    /// steady-state encoding allocates nothing. XORing the `k` column
    /// contributions together is bit-identical to [`ErasureCode::encode`]
    /// (GF(2) linearity), and because XOR schedules act column-wise the
    /// identity also holds stripe by stripe.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParams`] for an out-of-range chunk
    /// index or a mis-sized `out`, and [`ErasureError::BadChunkLength`]
    /// for a misaligned `region`.
    pub fn encode_column_into(
        &self,
        chunk: usize,
        region: &[u8],
        out: &mut [u8],
    ) -> Result<(), ErasureError> {
        self.encode_column_impl(chunk, region, out, true)
    }

    /// [`ErasureCode::encode_column_into`] through the *unfused*
    /// executor — the reference path for the fused differential suite.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ErasureCode::encode_column_into`].
    pub fn encode_column_into_unfused(
        &self,
        chunk: usize,
        region: &[u8],
        out: &mut [u8],
    ) -> Result<(), ErasureError> {
        self.encode_column_impl(chunk, region, out, false)
    }

    fn encode_column_impl(
        &self,
        chunk: usize,
        region: &[u8],
        out: &mut [u8],
        fused: bool,
    ) -> Result<(), ErasureError> {
        self.validate_column_region(chunk, region)?;
        let m = self.params.m();
        if out.len() != m * region.len() {
            return Err(ErasureError::InvalidParams {
                detail: format!(
                    "column output must be m * region = {} bytes, got {}",
                    m * region.len(),
                    out.len()
                ),
            });
        }
        let ps = region.len() / self.params.w() as usize;
        if fused {
            run_fused_strided(&self.columns_fused[chunk], region, ps, 0, out, ps);
        } else {
            run_schedule_flat(&self.columns[chunk], region, out, ps);
        }
        if let Some(metrics) = &self.metrics {
            metrics.column_calls.incr();
            metrics.column_bytes.add(region.len() as u64);
            metrics.encode_xor_ops.add(self.columns[chunk].xor_count() as u64);
            metrics.kernel_bytes.add(region.len() as u64);
        }
        Ok(())
    }

    /// [`ErasureCode::encode_column_into`] for one *stripe* of a full
    /// data chunk, reading the stripe in place: with the chunk holding
    /// `w` sub-packets of `ps_total = chunk.len() / w` bytes each,
    /// sub-packet `r` of the stripe is `chunk[r * ps_total + lo ..][..
    /// rows]`. This saves the caller the gather copy a contiguous
    /// region would require — the save pipeline's encode stage reads
    /// every stripe straight out of the original chunk.
    ///
    /// Bit-identical to gathering the stripe and calling
    /// [`ErasureCode::encode_column_into`] on it; `out` uses the same
    /// flat layout (`m * w * rows` bytes, output chunk `i` sub-packet
    /// `r` at `out[(i*w + r) * rows ..]`).
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParams`] for an out-of-range
    /// chunk index, a stripe outside the packet dimension, `rows` not a
    /// positive multiple of 8, or a mis-sized `out`, and
    /// [`ErasureError::BadChunkLength`] for a misaligned `chunk`.
    pub fn encode_column_stripe_into(
        &self,
        chunk_index: usize,
        chunk: &[u8],
        lo: usize,
        rows: usize,
        out: &mut [u8],
    ) -> Result<(), ErasureError> {
        let k = self.params.k();
        if chunk_index >= k {
            return Err(ErasureError::InvalidParams {
                detail: format!("chunk index {chunk_index} out of range (k = {k})"),
            });
        }
        if chunk.is_empty() || !chunk.len().is_multiple_of(self.params.alignment()) {
            return Err(ErasureError::BadChunkLength {
                detail: format!(
                    "chunk length {} must be a positive multiple of {}",
                    chunk.len(),
                    self.params.alignment()
                ),
            });
        }
        let w = self.params.w() as usize;
        let ps_total = chunk.len() / w;
        if rows == 0 || !rows.is_multiple_of(8) || lo + rows > ps_total {
            return Err(ErasureError::InvalidParams {
                detail: format!(
                    "stripe [{lo}, {}) with rows {rows} must be a positive multiple of 8 \
                     within the packet dimension {ps_total}",
                    lo + rows
                ),
            });
        }
        let m = self.params.m();
        if out.len() != m * w * rows {
            return Err(ErasureError::InvalidParams {
                detail: format!(
                    "column output must be m * w * rows = {} bytes, got {}",
                    m * w * rows,
                    out.len()
                ),
            });
        }
        run_fused_strided(&self.columns_fused[chunk_index], chunk, ps_total, lo, out, rows);
        if let Some(metrics) = &self.metrics {
            metrics.column_calls.incr();
            metrics.column_bytes.add((w * rows) as u64);
            metrics.encode_xor_ops.add(self.columns[chunk_index].xor_count() as u64);
            metrics.kernel_bytes.add((w * rows) as u64);
        }
        Ok(())
    }

    fn validate_column_region(&self, chunk: usize, region: &[u8]) -> Result<(), ErasureError> {
        let k = self.params.k();
        if chunk >= k {
            return Err(ErasureError::InvalidParams {
                detail: format!("chunk index {chunk} out of range (k = {k})"),
            });
        }
        if region.is_empty() || !region.len().is_multiple_of(self.params.alignment()) {
            return Err(ErasureError::BadChunkLength {
                detail: format!(
                    "delta length {} must be a positive multiple of {}",
                    region.len(),
                    self.params.alignment()
                ),
            });
        }
        Ok(())
    }
}

/// Executes a single-source (`k = 1`) schedule with the `m` output chunks
/// laid out back to back in one flat buffer: output chunk `i`, sub-packet
/// `r` lives at `out[(i*w + r) * ps ..][..ps]`.
///
/// Op-for-op identical to [`run_schedule_on`] modulo buffer layout; the
/// flat shape is what lets the save pipeline recycle one allocation per
/// in-flight stripe.
pub(crate) fn run_schedule_flat(schedule: &XorSchedule, source: &[u8], out: &mut [u8], ps: usize) {
    run_schedule_strided(schedule, source, ps, 0, out, ps);
}

/// [`run_schedule_flat`] with the source sub-packets read through a
/// stride: sub-packet `r` is `source[r * src_stride + src_offset ..][..
/// ps]`. With `src_stride == ps` and `src_offset == 0` this is exactly
/// the flat layout; a larger stride reads one stripe of a full chunk in
/// place.
pub(crate) fn run_schedule_strided(
    schedule: &XorSchedule,
    source: &[u8],
    src_stride: usize,
    src_offset: usize,
    out: &mut [u8],
    ps: usize,
) {
    let w = schedule.w();
    debug_assert_eq!(schedule.k(), 1);
    debug_assert!(ps <= src_stride && src_offset + ps <= src_stride);
    debug_assert_eq!(source.len(), w * src_stride);
    debug_assert_eq!(out.len(), schedule.m() * w * ps);
    let parity_base = w; // k = 1, so source sub-packets occupy [0, w).
    for op in schedule.ops() {
        let dst = op.dst() - parity_base;
        let src = op.src();
        if src < parity_base {
            let src_slice = &source[src * src_stride + src_offset..][..ps];
            let dst_slice = &mut out[dst * ps..(dst + 1) * ps];
            match op {
                XorOp::Copy { .. } => region::copy_into(dst_slice, src_slice),
                XorOp::Xor { .. } => region::xor_into(dst_slice, src_slice),
            }
        } else {
            let src_idx = src - parity_base;
            debug_assert_ne!(src_idx, dst, "schedule must not read its own destination");
            let [s, d] = out
                .get_disjoint_mut([src_idx * ps..(src_idx + 1) * ps, dst * ps..(dst + 1) * ps])
                .expect("schedule ranges are distinct and in bounds");
            match op {
                XorOp::Copy { .. } => region::copy_into(d, s),
                XorOp::Xor { .. } => region::xor_into(d, s),
            }
        }
    }
}

/// [`run_schedule_strided`] for a fused schedule: every chain runs as a
/// single [`ecc_gf::Kernel::xor_chain`] sweep over its stripe, writing
/// straight into the caller's flat output buffer.
pub(crate) fn run_fused_strided(
    fused: &FusedSchedule,
    source: &[u8],
    src_stride: usize,
    src_offset: usize,
    out: &mut [u8],
    ps: usize,
) {
    let w = fused.w();
    debug_assert_eq!(fused.k(), 1);
    debug_assert!(ps <= src_stride && src_offset + ps <= src_stride);
    debug_assert_eq!(source.len(), w * src_stride);
    debug_assert_eq!(out.len(), fused.m() * w * ps);
    let parity_base = w; // k = 1, so source sub-packets occupy [0, w).
    let kernel = ecc_gf::kernel::active_kernel();
    // Pre-split the flat output into its sub-packet regions so a chain
    // can hold its destination mutably while borrowing sibling rows as
    // sources (smart derivations read previously completed rows); the
    // destination slice is moved out for the sweep and put back after.
    let mut subs: Vec<&mut [u8]> = out.chunks_mut(ps).collect();
    for chain in fused.chains() {
        let dst = chain.dst - parity_base;
        let dst_slice = std::mem::take(&mut subs[dst]);
        let srcs: Vec<&[u8]> = chain
            .srcs
            .iter()
            .map(|&src| {
                if src < parity_base {
                    &source[src * src_stride + src_offset..][..ps]
                } else {
                    debug_assert_ne!(
                        src - parity_base,
                        dst,
                        "chain must not read its own destination"
                    );
                    &*subs[src - parity_base]
                }
            })
            .collect();
        kernel.xor_chain(dst_slice, &srcs, chain.assign);
        drop(srcs);
        subs[dst] = dst_slice;
    }
}

#[cfg(test)]
mod delta_tests {
    use super::*;
    use crate::region::xor_into;

    fn filled(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    #[test]
    fn delta_update_matches_full_reencode() {
        for (k, m) in [(2usize, 2usize), (4, 2), (3, 3)] {
            let code = ErasureCode::cauchy_good(CodeParams::new(k, m, 8).unwrap()).unwrap();
            let old: Vec<Vec<u8>> = (0..k).map(|i| filled(192, i as u8)).collect();
            let old_refs: Vec<&[u8]> = old.iter().map(Vec::as_slice).collect();
            let mut parity = code.encode(&old_refs).unwrap();
            // Mutate every chunk in turn, patching parity incrementally.
            let mut current = old.clone();
            for j in 0..k {
                let updated = filled(192, (j + 100) as u8);
                let mut delta = current[j].clone();
                xor_into(&mut delta, &updated);
                for (p, d) in parity.iter_mut().zip(code.parity_delta(j, &delta).unwrap()) {
                    xor_into(p, &d);
                }
                current[j] = updated;
                let refs: Vec<&[u8]> = current.iter().map(Vec::as_slice).collect();
                assert_eq!(parity, code.encode(&refs).unwrap(), "k={k} m={m} j={j}");
            }
        }
    }

    #[test]
    fn zero_delta_is_a_noop() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let deltas = code.parity_delta(0, &[0u8; 128]).unwrap();
        assert!(deltas.iter().all(|d| d.iter().all(|&b| b == 0)));
    }

    #[test]
    fn bad_inputs_are_rejected() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        assert!(code.parity_delta(2, &[0u8; 64]).is_err());
        assert!(code.parity_delta(0, &[0u8; 63]).is_err());
        assert!(code.parity_delta(0, &[]).is_err());
        let mut out = vec![0u8; 64];
        assert!(code.encode_column_into(0, &[0u8; 64], &mut out).is_err()); // out != m * region
        assert!(code.encode_column_into(2, &[0u8; 64], &mut [0u8; 128]).is_err());
        assert!(code.encode_column_into(0, &[0u8; 63], &mut [0u8; 126]).is_err());
    }

    /// XORing the per-column flat contributions together reproduces the
    /// full encode bit-exactly — the identity the pipelined save's
    /// encode → XOR-reduce split rests on.
    #[test]
    fn xor_of_column_contributions_equals_full_encode() {
        for (k, m, w) in [(2usize, 2usize, 8u8), (4, 2, 8), (3, 3, 8), (2, 2, 4), (2, 2, 16)] {
            let params = CodeParams::new(k, m, w).unwrap();
            let code = ErasureCode::cauchy_good(params).unwrap();
            let len = 4 * params.alignment();
            let data: Vec<Vec<u8>> = (0..k).map(|i| filled(len, i as u8)).collect();
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let expected = code.encode(&refs).unwrap();
            let mut acc = vec![0u8; m * len];
            let mut contrib = vec![0u8; m * len];
            for (j, chunk) in data.iter().enumerate() {
                code.encode_column_into(j, chunk, &mut contrib).unwrap();
                xor_into(&mut acc, &contrib);
            }
            for (i, parity) in expected.iter().enumerate() {
                assert_eq!(
                    &acc[i * len..(i + 1) * len],
                    parity.as_slice(),
                    "k={k} m={m} w={w} parity {i}"
                );
            }
        }
    }

    /// Column contributions are themselves column-wise: encoding a row
    /// stripe of the input equals the same row stripe of the full-width
    /// contribution, so stripes computed independently and scattered back
    /// reassemble bit-exactly (the pipeline's unit of work).
    #[test]
    fn column_contribution_stripes_concatenate_exactly() {
        let params = CodeParams::new(3, 2, 8).unwrap();
        let code = ErasureCode::cauchy_good(params).unwrap();
        let (m, w) = (params.m(), params.w() as usize);
        let len = 6 * params.alignment();
        let ps = len / w;
        let chunk = filled(len, 9);
        let mut full = vec![0u8; m * len];
        code.encode_column_into(1, &chunk, &mut full).unwrap();
        // Uneven stripe split of the packet dimension (multiples of 8).
        for rows in [8usize, 16, 24] {
            let mut lo = 0usize;
            while lo < ps {
                let hi = (lo + rows).min(ps);
                let stripe_rows = hi - lo;
                // Gather the stripe view: w scattered row ranges.
                let mut view = Vec::with_capacity(w * stripe_rows);
                for c in 0..w {
                    view.extend_from_slice(&chunk[c * ps + lo..c * ps + hi]);
                }
                let mut out = vec![0u8; m * w * stripe_rows];
                code.encode_column_into(1, &view, &mut out).unwrap();
                for i in 0..m {
                    for c in 0..w {
                        let got = &out[(i * w + c) * stripe_rows..][..stripe_rows];
                        let want = &full[i * len + c * ps + lo..i * len + c * ps + hi];
                        assert_eq!(got, want, "rows={rows} lo={lo} parity {i} sub {c}");
                    }
                }
                lo = hi;
            }
        }
    }

    /// The in-place stripe reader is bit-identical to gathering the
    /// stripe into a contiguous region and encoding that — the identity
    /// that lets the save pipeline skip the gather copy entirely.
    #[test]
    fn strided_stripe_encode_matches_gathered_encode() {
        for (k, m, w8) in [(2usize, 2usize, 8u8), (4, 2, 8), (3, 3, 8)] {
            let params = CodeParams::new(k, m, w8).unwrap();
            let code = ErasureCode::cauchy_good(params).unwrap();
            let w = params.w() as usize;
            let len = 6 * params.alignment();
            let ps = len / w;
            for col in 0..k {
                let chunk = filled(len, (17 * col + 3) as u8);
                for rows in [8usize, 16, ps] {
                    let mut lo = 0usize;
                    while lo < ps {
                        let hi = (lo + rows).min(ps);
                        let stripe_rows = hi - lo;
                        let mut gathered = Vec::with_capacity(w * stripe_rows);
                        for c in 0..w {
                            gathered.extend_from_slice(&chunk[c * ps + lo..c * ps + hi]);
                        }
                        let mut want = vec![0u8; m * w * stripe_rows];
                        code.encode_column_into(col, &gathered, &mut want).unwrap();
                        let mut got = vec![0u8; m * w * stripe_rows];
                        code.encode_column_stripe_into(col, &chunk, lo, stripe_rows, &mut got)
                            .unwrap();
                        assert_eq!(got, want, "k={k} m={m} col={col} rows={rows} lo={lo}");
                        lo = hi;
                    }
                }
            }
        }
    }

    #[test]
    fn strided_stripe_encode_rejects_bad_geometry() {
        let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
        let chunk = vec![0u8; 128]; // ps_total = 16
        let mut out = vec![0u8; 2 * 8 * 8];
        assert!(code.encode_column_stripe_into(2, &chunk, 0, 8, &mut out).is_err()); // chunk idx
        assert!(code.encode_column_stripe_into(0, &chunk[..127], 0, 8, &mut out).is_err()); // align
        assert!(code.encode_column_stripe_into(0, &chunk, 0, 12, &mut out).is_err()); // rows % 8
        assert!(code.encode_column_stripe_into(0, &chunk, 16, 8, &mut out).is_err()); // past end
        assert!(code.encode_column_stripe_into(0, &chunk, 0, 8, &mut out[..64]).is_err()); // out len
        assert!(code.encode_column_stripe_into(0, &chunk, 8, 8, &mut out).is_ok());
    }

    /// The flat-buffer runner agrees with the Vec-of-chunks delta path.
    #[test]
    fn flat_and_chunked_column_paths_agree() {
        let code = ErasureCode::cauchy_good(CodeParams::new(4, 3, 8).unwrap()).unwrap();
        let len = 192;
        for j in 0..4 {
            let delta = filled(len, j as u8);
            let chunked = code.parity_delta(j, &delta).unwrap();
            let mut flat = vec![0xFFu8; 3 * len];
            code.encode_column_into(j, &delta, &mut flat).unwrap();
            for (i, chunk) in chunked.iter().enumerate() {
                assert_eq!(&flat[i * len..(i + 1) * len], chunk.as_slice(), "j={j} parity {i}");
            }
        }
    }
}
