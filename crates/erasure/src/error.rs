use std::error::Error;
use std::fmt;

use ecc_gf::GfError;

/// Errors produced while constructing or applying erasure codes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErasureError {
    /// Invalid `(k, m, w)` combination.
    InvalidParams {
        /// Human-readable description of what is invalid.
        detail: String,
    },
    /// Chunk lengths are inconsistent or not aligned for the coding path.
    BadChunkLength {
        /// Human-readable description of the length problem.
        detail: String,
    },
    /// Fewer than `k` chunks survive, so decoding is impossible.
    TooFewSurvivors {
        /// Chunks needed to decode.
        needed: usize,
        /// Chunks actually available.
        available: usize,
    },
    /// An underlying Galois-field operation failed.
    Field(GfError),
}

impl fmt::Display for ErasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErasureError::InvalidParams { detail } => {
                write!(f, "invalid code parameters: {detail}")
            }
            ErasureError::BadChunkLength { detail } => {
                write!(f, "bad chunk length: {detail}")
            }
            ErasureError::TooFewSurvivors { needed, available } => {
                write!(
                    f,
                    "cannot decode: need {needed} surviving chunks but only {available} available"
                )
            }
            ErasureError::Field(e) => write!(f, "field arithmetic error: {e}"),
        }
    }
}

impl Error for ErasureError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ErasureError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GfError> for ErasureError {
    fn from(e: GfError) -> Self {
        ErasureError::Field(e)
    }
}
