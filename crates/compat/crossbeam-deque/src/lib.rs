//! Offline, dependency-free subset of the `crossbeam-deque` 0.8 API.
//!
//! The container this repository builds in has no access to crates.io,
//! so the workspace vendors the slice of `crossbeam-deque` the
//! work-stealing encode executors actually use: [`Worker::new_fifo`],
//! [`Worker::push`] / [`Worker::pop`], [`Worker::stealer`], and
//! [`Stealer::steal`] / [`Stealer::steal_batch_and_pop`] with the
//! three-state [`Steal`] result.
//!
//! Unlike upstream's lock-free Chase–Lev deque, this subset is a
//! `Mutex<VecDeque>` — a few tens of nanoseconds per op instead of a
//! few, which is noise next to the multi-microsecond encode tasks the
//! executors schedule on it. What matters for the callers is preserved
//! exactly:
//!
//! * **FIFO discipline.** `new_fifo` workers pop from the front, and
//!   stealers also take from the front, so the oldest queued task is
//!   always the next to run regardless of who runs it. The pipelined
//!   executor's deadlock-freedom argument (a blocked worker's admission
//!   window is bounded by the oldest unfinished stripe) relies on this.
//! * **Exactly-once delivery.** A task popped or stolen is removed
//!   under the lock; no task is ever lost or observed twice.
//! * **Non-blocking stealing.** `steal` never blocks the thief on a
//!   busy victim beyond the short critical section, and reports
//!   [`Steal::Empty`] so the thief can move to the next victim.
//!
//! `Steal::Retry` is kept for API parity; this implementation never
//! returns it, but callers are written to loop on it as upstream
//! requires.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The victim's queue was empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen task, if the steal succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }

    /// True when the victim was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True when the operation should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// A worker-owned queue of tasks; the owning thread pushes and pops,
/// other threads steal through [`Stealer`] handles.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO worker queue: `pop` takes the *oldest* task, the
    /// same end stealers take from.
    pub fn new_fifo() -> Self {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Enqueues a task at the back.
    pub fn push(&self, task: T) {
        self.queue.lock().expect("deque poisoned").push_back(task);
    }

    /// Dequeues the oldest task, if any.
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().expect("deque poisoned").pop_front()
    }

    /// True when the queue currently holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("deque poisoned").is_empty()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.queue.lock().expect("deque poisoned").len()
    }

    /// Creates a handle other threads can steal through.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_fifo()
    }
}

/// A handle for stealing tasks from another thread's [`Worker`].
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    /// Steals the oldest task from the victim.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("deque poisoned").pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks into `dest` and pops one of them.
    ///
    /// Takes up to half of the victim's queue (at least one task),
    /// returns the oldest stolen task and appends the rest to `dest` —
    /// oldest-first, so `dest.pop()` keeps FIFO order.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut victim = self.queue.lock().expect("deque poisoned");
        let take = victim.len().div_ceil(2);
        let Some(first) = victim.pop_front() else {
            return Steal::Empty;
        };
        let batch: Vec<T> = (1..take).filter_map(|_| victim.pop_front()).collect();
        drop(victim);
        let mut dest_queue = dest.queue.lock().expect("deque poisoned");
        dest_queue.extend(batch);
        Steal::Success(first)
    }

    /// True when the victim's queue was empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("deque poisoned").is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_pop_and_steal_take_the_oldest_task() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert!(s.steal().is_empty());
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_batch_and_pop_moves_half_and_keeps_order() {
        let victim = Worker::new_fifo();
        for i in 0..6 {
            victim.push(i);
        }
        let thief = Worker::new_fifo();
        // 6 tasks: batch takes ceil(6/2) = 3; oldest returned, rest queued.
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Success(0));
        assert_eq!(thief.pop(), Some(1));
        assert_eq!(thief.pop(), Some(2));
        assert_eq!(thief.pop(), None);
        assert_eq!(victim.len(), 3);
    }

    #[test]
    fn concurrent_stealing_delivers_every_task_exactly_once() {
        const TASKS: usize = 10_000;
        const THIEVES: usize = 8;
        let victim = Worker::new_fifo();
        for i in 0..TASKS {
            victim.push(i);
        }
        let taken = AtomicUsize::new(0);
        let mut all: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THIEVES)
                .map(|_| {
                    let stealer = victim.stealer();
                    let taken = &taken;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match stealer.steal() {
                                Steal::Success(task) => {
                                    got.push(task);
                                    taken.fetch_add(1, Ordering::Relaxed);
                                }
                                Steal::Empty => break,
                                Steal::Retry => continue,
                            }
                        }
                        got
                    })
                })
                .collect();
            for h in handles {
                all.push(h.join().unwrap());
            }
        });
        let union: HashSet<usize> = all.iter().flatten().copied().collect();
        assert_eq!(taken.load(Ordering::Relaxed), TASKS, "no task may be lost");
        assert_eq!(union.len(), TASKS, "no task may be delivered twice");
    }
}
