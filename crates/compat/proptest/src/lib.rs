//! Offline, dependency-free subset of the `proptest` API.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, integer-range and `any::<T>()` strategies, tuple and
//! `&str` (character-class regex) strategies, [`collection::vec`],
//! `prop_map` / `prop_filter` / `prop_filter_map` / `prop_recursive`,
//! and [`prop_oneof!`].
//!
//! Differences from upstream, deliberate for a vendored test harness:
//!
//! * **No shrinking.** A failing case reports its generated inputs
//!   verbatim; generation is deterministic per test (seeded from the
//!   test's module path and case index), so failures replay exactly.
//! * **No persistence.** `*.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration, case errors, and the deterministic RNG.

    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections tolerated before
        /// the property errors out.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_global_rejects: 4096 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another one.
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    /// Result type each generated case evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator (SplitMix64) used for all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator keyed on a test identity and case index, so every
        /// test gets an independent, reproducible stream.
        pub fn deterministic(test_name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait, combinators, and primitive strategies.

    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    use crate::test_runner::TestRng;

    /// How many times filtering combinators retry before giving up.
    const FILTER_RETRIES: usize = 256;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `f`, retrying otherwise.
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason: reason.into(), f }
        }

        /// Maps values through `f`, retrying when `f` returns `None`.
        fn prop_filter_map<O, F>(self, reason: impl Into<String>, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap { inner: self, reason: reason.into(), f }
        }

        /// Type-erases the strategy behind a cloneable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds a recursive strategy: `self` generates the leaves and
        /// `recurse` wraps an inner strategy into a branch, nested at
        /// most `depth` levels. `desired_size` and `expected_branch_size`
        /// are accepted for upstream API compatibility but unused — leaf
        /// probability at every level is 1/2, which keeps expected sizes
        /// small.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                let branch = recurse(strat).boxed();
                strat = OneOf::new(vec![base.clone(), branch]).boxed();
            }
            strat
        }
    }

    /// Object-safe view of a strategy, for [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A cloneable, type-erased strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(Arc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted {FILTER_RETRIES} retries: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted {FILTER_RETRIES} retries: {}", self.reason);
        }
    }

    /// Uniform choice among boxed strategies; backs [`crate::prop_oneof!`].
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// A strategy drawing uniformly from `options`.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! requires at least one option");
            Self { options }
        }
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            Self { options: self.options.clone() }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (u128::from(rng.next_u64()) * span) >> 64;
                    (self.start as i128 + r as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = (u128::from(rng.next_u64()) * span) >> 64;
                    (lo as i128 + r as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    (self.start..=<$t>::MAX).sample(rng)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + unit * (hi - lo)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng), self.3.sample(rng))
        }
    }

    /// `&str` strategies: a character-class regex of the shape
    /// `[class]{min,max}` (e.g. `"[a-z.]{0,12}"`) generating matching
    /// strings. This is the only regex shape the workspace uses; other
    /// patterns panic with a clear message.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
                panic!(
                    "unsupported string strategy pattern {self:?}: \
                     the vendored proptest supports only `[class]{{min,max}}`"
                )
            });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
        }
    }

    /// Parses `[class]{min,max}` into (expanded characters, min, max).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let rest = rest.strip_prefix('{')?;
        let counts = rest.strip_suffix('}')?;
        let (min_s, max_s) = counts.split_once(',')?;
        let (min, max) = (min_s.parse().ok()?, max_s.parse().ok()?);
        if min > max || class.is_empty() {
            return None;
        }
        let mut chars = Vec::new();
        let cs: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (lo, hi) = (cs[i], cs[i + 2]);
                if lo > hi {
                    return None;
                }
                for c in lo..=hi {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        Some((chars, min, max))
    }

    /// See [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }
        )*};
    }
    impl_any! {
        bool  => |rng| rng.next_u64() & 1 == 1;
        u8    => |rng| rng.next_u64() as u8;
        u16   => |rng| rng.next_u64() as u16;
        u32   => |rng| rng.next_u64() as u32;
        u64   => |rng| rng.next_u64();
        usize => |rng| rng.next_u64() as usize;
        i8    => |rng| rng.next_u64() as i8;
        i16   => |rng| rng.next_u64() as i16;
        i32   => |rng| rng.next_u64() as i32;
        i64   => |rng| rng.next_u64() as i64;
        // Raw bit patterns: covers subnormals, infinities and NaNs, which
        // is exactly what serialization round-trip properties want.
        f64   => |rng| f64::from_bits(rng.next_u64());
        f32   => |rng| f32::from_bits(rng.next_u64() as u32);
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use std::marker::PhantomData;

    use crate::strategy::Any;

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size window for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self { min: *r.start(), max: *r.end() }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects the current case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies generating the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines property tests: each `fn` runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let mut salt = 0u64;
            while passed < config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    salt,
                );
                salt += 1;
                let __vals = ( $( $crate::strategy::Strategy::sample(&($strat), &mut __rng), )+ );
                let __desc = format!("{:?}", __vals);
                let ( $($arg,)+ ) = __vals;
                let __outcome: $crate::test_runner::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "proptest `{}`: too many prop_assume! rejections ({})",
                            stringify!($name),
                            rejected
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest `{}` failed at case {} (seed salt {}): {}\n  inputs: {}",
                            stringify!($name),
                            passed,
                            salt - 1,
                            msg,
                            __desc
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u16..256) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 256);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn assume_rejects_without_failing(k in 1usize..10) {
            prop_assume!(k % 2 == 0);
            prop_assert!(k % 2 == 0);
        }

        #[test]
        fn maps_and_tuples_compose(
            (s, n) in ("[a-z]{1,8}", 5u32..10),
            j in Just(41u8).prop_map(|v| v + 1),
        ) {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!((5..10).contains(&n));
            prop_assert_eq!(j, 42);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(any::<u64>(), 0..8);
        let a = strat.sample(&mut TestRng::deterministic("t", 3));
        let b = strat.sample(&mut TestRng::deterministic("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    fn oneof_draws_every_option() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::deterministic("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..255).prop_map(Tree::Leaf).prop_recursive(4, 24, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::deterministic("tree", 0);
        for _ in 0..100 {
            let _ = strat.sample(&mut rng); // must not hang or overflow
        }
    }

    #[test]
    #[should_panic(expected = "unsupported string strategy pattern")]
    fn unsupported_regex_panics() {
        let mut rng = TestRng::deterministic("re", 0);
        let _ = "(a|b)+".sample(&mut rng);
    }
}
