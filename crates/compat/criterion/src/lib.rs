//! Offline, dependency-free subset of the `criterion` API.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: `Criterion` with the
//! builder knobs (`sample_size`, `warm_up_time`, `measurement_time`),
//! benchmark groups with optional [`Throughput`], `bench_function` /
//! `bench_with_input`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Like upstream, the harness distinguishes *bench mode* (run under
//! `cargo bench`, which passes `--bench` to the binary) from *test mode*
//! (run under `cargo test`, no flag): test mode executes every benchmark
//! body exactly once as a smoke test; bench mode warms up, then takes
//! `sample_size` timed samples and prints mean time per iteration plus
//! throughput when configured.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// Units of work per iteration, used to derive throughput rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier combining an optional function name and a
/// parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{parameter}", name.into()) }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut f);
        self
    }

    /// Runs a benchmark that receives an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (upstream writes reports here; a no-op).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{id}", self.name);
        if !self.criterion.bench_mode {
            // Test mode: smoke-run the body once.
            let mut b = Bencher { mode: BenchMode::Once, elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            println!("test {full} ... ok");
            return;
        }
        // Warm-up: learn the per-iteration cost.
        let warm_deadline = Instant::now() + self.criterion.warm_up_time;
        let mut warm_iters = 0u64;
        let warm_start = Instant::now();
        while Instant::now() < warm_deadline {
            let mut b = Bencher { mode: BenchMode::Once, elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Size samples so the whole measurement hits measurement_time.
        let samples = self.criterion.sample_size;
        let total_iters =
            (self.criterion.measurement_time.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
        let iters_per_sample = (total_iters / samples as u64).max(1);
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                mode: BenchMode::Iters(iters_per_sample),
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let median = times[times.len() / 2];
        let mut line = format!(
            "{full:<48} time: [{} {} {}]",
            fmt_time(times[0]),
            fmt_time(median),
            fmt_time(*times.last().expect("non-empty samples"))
        );
        if let Some(t) = self.throughput {
            let rate = match t {
                Throughput::Bytes(bytes) => format!("{}/s", fmt_bytes(bytes as f64 / mean)),
                Throughput::Elements(n) => format!("{:.2} Melem/s", n as f64 / mean / 1e6),
            };
            let _ = write!(line, "  thrpt: {rate}");
        }
        println!("{line}");
    }
}

#[derive(Debug, Clone, Copy)]
enum BenchMode {
    Once,
    Iters(u64),
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the
/// routine to measure.
#[derive(Debug)]
pub struct Bencher {
    mode: BenchMode,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, preventing the result from being optimised
    /// away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Once => {
                black_box(routine());
                self.iters = 1;
            }
            BenchMode::Iters(n) => {
                let start = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                self.elapsed += start.elapsed();
                self.iters += n;
            }
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn fmt_bytes(rate: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = rate;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion::default();
        c.bench_mode = false;
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("once", |b| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_measures_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        c.bench_mode = true;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &_n| {
            b.iter(|| runs += 1);
        });
        group.finish();
        assert!(runs > 3, "expected warm-up plus samples, got {runs}");
    }

    #[test]
    fn formatting_picks_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
        assert_eq!(fmt_bytes(2048.0), "2.00 KiB");
    }
}
