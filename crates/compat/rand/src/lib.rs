//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The container this repository builds in has no access to crates.io,
//! so the workspace vendors the small slice of `rand` it actually uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`RngCore`] / [`Rng`] traits (`gen`, `gen_bool`, `gen_range`,
//! `fill_bytes`), and the slice-shuffling [`seq::SliceRandom`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! deterministic, and statistically solid for test and benchmark data.
//! It intentionally does NOT match upstream `StdRng`'s output stream;
//! nothing in this workspace depends on the exact stream, only on
//! determinism for a given seed.

#![forbid(unsafe_code)]

/// Low-level generator interface: raw words and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (always supported here).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value of type `Self` from the "standard" distribution.
///
/// Stand-in for `rand::distributions::Standard` coverage: implemented
/// for the primitive types this workspace samples.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}
impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Bounded uniform sampling for `gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64.
                let r = rng.next_u64() as u128;
                self.start + ((r * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let r = rng.next_u64() as u128;
                lo + ((r * span) >> 64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // initialisation recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait providing in-place shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// One-stop imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
