//! Simulated GPU-cluster substrate for the ECCheck reproduction.
//!
//! The paper evaluates on four machines with four NVLinked A100s each,
//! 100 Gbps inter-node fabric and a 5 Gbps remote storage system (§V-B).
//! This crate substitutes that hardware with two decoupled planes:
//!
//! * **Data plane** ([`Cluster`]) — per-node in-memory blob stores, a
//!   remote persistent store, node liveness, and transfer helpers that
//!   move *real bytes* between them. Checkpoint correctness tests run
//!   here: a failed node genuinely loses its in-memory checkpoints.
//! * **Timing plane** ([`ClusterTimeline`]) — FIFO bandwidth resources
//!   (per-node NIC tx/rx, per-node DtoH engines, the aggregated remote
//!   storage frontend) that turn the same operations into deterministic
//!   simulated durations at paper scale, without allocating terabytes.
//!
//! Failure injection ([`FailureModel`]) samples independent node
//! failures, matching the paper's reliability analysis assumptions
//! (§II-B, citing OSDI'10/DSN'06 failure studies).
//!
//! # Examples
//!
//! ```
//! use ecc_cluster::{Cluster, ClusterSpec};
//!
//! let mut cluster = Cluster::new(ClusterSpec::paper_testbed());
//! cluster.put_local(0, "ckpt/chunk0", vec![1, 2, 3])?;
//! cluster.fail_node(0);
//! // In-memory data is gone after a failure.
//! cluster.replace_node(0);
//! assert!(cluster.get_local(0, "ckpt/chunk0").is_none());
//! # Ok::<(), ecc_cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data;
mod error;
mod failure;
mod health;
mod shared;
mod timeline;
mod topology;

pub use data::{Cluster, ClusterView, DataPlane};
pub use error::ClusterError;
pub use failure::{FailureModel, FailureScenario};
pub use health::{HealthConfig, HealthRegistry, HealthTransition, NodeHealth};
pub use shared::SharedPlane;
pub use timeline::ClusterTimeline;
pub use topology::{ClusterSpec, NodeId};
