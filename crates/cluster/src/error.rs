use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced by cluster data-plane operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The target node has failed and cannot serve the operation.
    NodeDown {
        /// The failed node.
        node: NodeId,
    },
    /// A node id outside the cluster.
    NoSuchNode {
        /// The offending node id.
        node: NodeId,
    },
    /// A blob key was not found in the addressed store.
    NoSuchBlob {
        /// The missing key.
        key: String,
    },
    /// Writing the blob would exceed the node's host-memory quota.
    OutOfMemory {
        /// The node whose quota would be exceeded.
        node: NodeId,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// The data plane's transport failed (connection refused, reset,
    /// timed out, or spoke a malformed protocol). Only socket-backed
    /// planes produce this; the in-memory plane never does.
    Transport {
        /// Human-readable cause.
        detail: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NodeDown { node } => write!(f, "node {node} is down"),
            ClusterError::NoSuchNode { node } => write!(f, "node {node} does not exist"),
            ClusterError::NoSuchBlob { key } => write!(f, "no blob under key {key:?}"),
            ClusterError::OutOfMemory { node, requested, available } => write!(
                f,
                "node {node} host memory exhausted: requested {requested} bytes, {available} available"
            ),
            ClusterError::Transport { detail } => write!(f, "data-plane transport failed: {detail}"),
        }
    }
}

impl Error for ClusterError {}
