//! The timing plane: bandwidth resources for paper-scale simulations.

use ecc_sim::{FifoResource, SimDuration, SimTime};

use crate::{ClusterSpec, NodeId};

/// Deterministic timing model of the cluster's transfer hardware.
///
/// Each node has an independent full-duplex NIC (separate transmit and
/// receive queues) and a DtoH copy engine per GPU; remote storage is one
/// shared frontend with the aggregated bandwidth of the paper (§V-B) —
/// which is why remote-storage checkpointing scales *linearly* with GPU
/// count (Fig. 14) while in-memory schemes stay flat.
///
/// # Examples
///
/// ```
/// use ecc_cluster::{ClusterSpec, ClusterTimeline};
/// use ecc_sim::SimTime;
///
/// let mut tl = ClusterTimeline::new(ClusterSpec::paper_testbed());
/// let (_, end1) = tl.p2p(SimTime::ZERO, 0, 1, 1_000_000);
/// let (start2, _) = tl.p2p(SimTime::ZERO, 0, 2, 1_000_000);
/// assert_eq!(start2, end1); // same sender: serialized on its NIC
/// ```
#[derive(Debug, Clone)]
pub struct ClusterTimeline {
    spec: ClusterSpec,
    nic_tx: Vec<FifoResource>,
    nic_rx: Vec<FifoResource>,
    dtoh: Vec<FifoResource>,
    remote: FifoResource,
}

impl ClusterTimeline {
    /// Creates an idle timeline for the given hardware.
    pub fn new(spec: ClusterSpec) -> Self {
        Self {
            spec,
            nic_tx: (0..spec.nodes()).map(|_| FifoResource::with_rate(spec.nic())).collect(),
            nic_rx: (0..spec.nodes()).map(|_| FifoResource::with_rate(spec.nic())).collect(),
            dtoh: (0..spec.world_size()).map(|_| FifoResource::with_rate(spec.dtoh())).collect(),
            remote: FifoResource::with_rate(spec.remote()),
        }
    }

    /// The hardware description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Schedules an inter-node transfer of `bytes` from `src` to `dst`,
    /// occupying both endpoints' NIC queues; returns `(start, end)`.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node ids or `src == dst` (intra-node data
    /// never touches the NIC — use [`ClusterTimeline::intra_node`]).
    pub fn p2p(
        &mut self,
        earliest: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        assert_ne!(src, dst, "p2p requires distinct nodes");
        let duration = self.spec.nic().transfer_time(bytes);
        let start = earliest.max(self.nic_tx[src].next_free()).max(self.nic_rx[dst].next_free());
        let (_, end) = self.nic_tx[src].reserve(start, duration);
        self.nic_rx[dst].reserve(start, duration);
        (start, end)
    }

    /// Schedules an intra-node copy over NVLink/shared memory.
    pub fn intra_node(&mut self, earliest: SimTime, bytes: u64) -> (SimTime, SimTime) {
        // Modeled as contention-free: NVLink bandwidth dwarfs checkpoint
        // traffic and is not shared with inter-node training traffic.
        let end = earliest + self.spec.nvlink().transfer_time(bytes);
        (earliest, end)
    }

    /// Schedules a device-to-host copy on a worker's PCIe engine.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range worker ids.
    pub fn dtoh(&mut self, earliest: SimTime, worker: usize, bytes: u64) -> (SimTime, SimTime) {
        self.dtoh[worker].reserve_bytes(earliest, bytes)
    }

    /// Schedules a write of `bytes` from `src` to remote storage: the
    /// sender's NIC and the shared storage frontend are both occupied,
    /// with the slower (storage) side setting the pace.
    pub fn to_remote(&mut self, earliest: SimTime, src: NodeId, bytes: u64) -> (SimTime, SimTime) {
        let duration = self.spec.remote().transfer_time(bytes);
        let start = earliest.max(self.nic_tx[src].next_free()).max(self.remote.next_free());
        let (_, end) = self.remote.reserve(start, duration);
        self.nic_tx[src].reserve(start, duration);
        (start, end)
    }

    /// Schedules a read of `bytes` from remote storage into `dst`.
    pub fn from_remote(
        &mut self,
        earliest: SimTime,
        dst: NodeId,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        let duration = self.spec.remote().transfer_time(bytes);
        let start = earliest.max(self.nic_rx[dst].next_free()).max(self.remote.next_free());
        let (_, end) = self.remote.reserve(start, duration);
        self.nic_rx[dst].reserve(start, duration);
        (start, end)
    }

    /// Schedules a broadcast of `bytes` from `src` to every other node in
    /// `dsts` (sequential sends on the source NIC — the GEMINI-style
    /// group broadcast pattern). Returns the completion of the last send.
    pub fn broadcast(
        &mut self,
        earliest: SimTime,
        src: NodeId,
        dsts: &[NodeId],
        bytes: u64,
    ) -> SimTime {
        let mut done = earliest;
        for &dst in dsts {
            if dst == src {
                continue;
            }
            let (_, end) = self.p2p(earliest, src, dst, bytes);
            done = done.max(end);
        }
        done
    }

    /// Total busy time of a node's transmit NIC queue.
    pub fn tx_busy(&self, node: NodeId) -> SimDuration {
        self.nic_tx[node].busy_total()
    }

    /// Total busy time of the remote-storage frontend.
    pub fn remote_busy(&self) -> SimDuration {
        self.remote.busy_total()
    }

    /// Resets every resource to idle (start of a new measurement run).
    pub fn reset(&mut self) {
        for r in self.nic_tx.iter_mut().chain(self.nic_rx.iter_mut()).chain(self.dtoh.iter_mut()) {
            r.reset();
        }
        self.remote.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_sim::Bandwidth;

    fn timeline() -> ClusterTimeline {
        ClusterTimeline::new(ClusterSpec::paper_testbed())
    }

    #[test]
    fn p2p_duration_matches_bandwidth() {
        let mut tl = timeline();
        // 100 Gbps = 12.5 GB/s; 125 MB takes 10 ms.
        let (s, e) = tl.p2p(SimTime::ZERO, 0, 1, 125_000_000);
        assert_eq!(s, SimTime::ZERO);
        assert_eq!(e - s, SimDuration::from_millis(10));
    }

    #[test]
    fn same_sender_serializes() {
        let mut tl = timeline();
        let (_, e1) = tl.p2p(SimTime::ZERO, 0, 1, 125_000_000);
        let (s2, _) = tl.p2p(SimTime::ZERO, 0, 2, 125_000_000);
        assert_eq!(s2, e1);
    }

    #[test]
    fn different_pairs_run_in_parallel() {
        let mut tl = timeline();
        let (s1, _) = tl.p2p(SimTime::ZERO, 0, 1, 125_000_000);
        let (s2, _) = tl.p2p(SimTime::ZERO, 2, 3, 125_000_000);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(s2, SimTime::ZERO);
    }

    #[test]
    fn same_receiver_serializes() {
        let mut tl = timeline();
        let (_, e1) = tl.p2p(SimTime::ZERO, 0, 3, 125_000_000);
        let (s2, _) = tl.p2p(SimTime::ZERO, 1, 3, 125_000_000);
        assert_eq!(s2, e1);
    }

    #[test]
    fn remote_storage_is_shared() {
        let mut tl = timeline();
        // 5 Gbps = 625 MB/s; two writers of 625 MB serialize: 1 s each.
        let (_, e1) = tl.to_remote(SimTime::ZERO, 0, 625_000_000);
        let (s2, e2) = tl.to_remote(SimTime::ZERO, 1, 625_000_000);
        assert_eq!(e1 - SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(s2, e1);
        assert_eq!(e2 - SimTime::ZERO, SimDuration::from_secs(2));
    }

    #[test]
    fn dtoh_engines_are_per_worker() {
        let mut tl = timeline();
        let (s1, _) = tl.dtoh(SimTime::ZERO, 0, 1 << 30);
        let (s2, _) = tl.dtoh(SimTime::ZERO, 1, 1 << 30);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(s2, SimTime::ZERO);
        // Same worker queues.
        let (s3, _) = tl.dtoh(SimTime::ZERO, 0, 1 << 30);
        assert!(s3 > SimTime::ZERO);
    }

    #[test]
    fn broadcast_serializes_on_sender() {
        let mut tl = timeline();
        let done = tl.broadcast(SimTime::ZERO, 0, &[0, 1, 2, 3], 125_000_000);
        // Three sequential 10 ms sends (self is skipped).
        assert_eq!(done - SimTime::ZERO, SimDuration::from_millis(30));
    }

    #[test]
    fn intra_node_is_fast_and_uncontended() {
        let mut tl = timeline();
        let (_, e) = tl.intra_node(SimTime::ZERO, 1 << 30);
        let nic_time = ClusterSpec::paper_testbed().nic().transfer_time(1 << 30);
        assert!(e - SimTime::ZERO < nic_time);
    }

    #[test]
    fn reset_clears_busy_state() {
        let mut tl = timeline();
        tl.p2p(SimTime::ZERO, 0, 1, 1 << 20);
        tl.to_remote(SimTime::ZERO, 0, 1 << 20);
        tl.reset();
        assert_eq!(tl.tx_busy(0), SimDuration::ZERO);
        assert_eq!(tl.remote_busy(), SimDuration::ZERO);
    }

    #[test]
    fn slower_remote_takes_longer() {
        let fast = ClusterSpec::paper_testbed().with_remote(Bandwidth::from_gbps(20.0));
        let mut tl_fast = ClusterTimeline::new(fast);
        let mut tl_slow = timeline();
        let (_, ef) = tl_fast.to_remote(SimTime::ZERO, 0, 1 << 30);
        let (_, es) = tl_slow.to_remote(SimTime::ZERO, 0, 1 << 30);
        assert!(ef < es);
    }
}
