use ecc_sim::Bandwidth;

/// Identifier of a machine (node) in the cluster.
pub type NodeId = usize;

/// Static description of the cluster hardware.
///
/// # Examples
///
/// ```
/// use ecc_cluster::ClusterSpec;
///
/// let spec = ClusterSpec::paper_testbed();
/// assert_eq!(spec.nodes(), 4);
/// assert_eq!(spec.world_size(), 16);
/// assert_eq!(spec.node_of_worker(6), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    nodes: usize,
    gpus_per_node: usize,
    nic: Bandwidth,
    nvlink: Bandwidth,
    dtoh: Bandwidth,
    remote: Bandwidth,
    host_mem_bytes: u64,
}

impl ClusterSpec {
    /// Builds a cluster description.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` or `gpus_per_node` is zero.
    pub fn new(
        nodes: usize,
        gpus_per_node: usize,
        nic: Bandwidth,
        nvlink: Bandwidth,
        dtoh: Bandwidth,
        remote: Bandwidth,
        host_mem_bytes: u64,
    ) -> Self {
        assert!(nodes > 0 && gpus_per_node > 0, "cluster must have nodes and GPUs");
        Self { nodes, gpus_per_node, nic, nvlink, dtoh, remote, host_mem_bytes }
    }

    /// The paper's A100 testbed (§V-B): 4 nodes × 4 GPUs, 100 Gbps
    /// inter-node network, 5 Gbps aggregated remote storage, 512 GB of
    /// host memory per node.
    pub fn paper_testbed() -> Self {
        Self::new(
            4,
            4,
            Bandwidth::from_gbps(100.0),
            Bandwidth::from_gibps(300.0),
            Bandwidth::from_gibps(20.0),
            Bandwidth::from_gbps(5.0),
            512 * (1u64 << 30),
        )
    }

    /// The V100 scalability testbed (§V-F, Fig. 14): up to 32 V100-32GB
    /// GPUs on `nodes` machines of 8 GPUs each, same fabric and storage.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero.
    pub fn v100_scalability(nodes: usize, gpus_per_node: usize) -> Self {
        Self::new(
            nodes,
            gpus_per_node,
            Bandwidth::from_gbps(100.0),
            Bandwidth::from_gibps(150.0),
            Bandwidth::from_gibps(10.0),
            Bandwidth::from_gbps(5.0),
            512 * (1u64 << 30),
        )
    }

    /// A tiny configuration for fast real-data tests: small host memory
    /// quota, same shape as the paper testbed.
    pub fn tiny_test(nodes: usize, gpus_per_node: usize) -> Self {
        Self::new(
            nodes,
            gpus_per_node,
            Bandwidth::from_gbps(100.0),
            Bandwidth::from_gibps(300.0),
            Bandwidth::from_gibps(20.0),
            Bandwidth::from_gbps(5.0),
            256 * (1u64 << 20),
        )
    }

    /// Number of machines.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// GPUs (workers) per machine — the paper's `g`.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Total workers — the paper's `W = n·g`.
    pub fn world_size(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Inter-node NIC bandwidth (full duplex, per direction).
    pub fn nic(&self) -> Bandwidth {
        self.nic
    }

    /// Intra-node GPU interconnect bandwidth.
    pub fn nvlink(&self) -> Bandwidth {
        self.nvlink
    }

    /// Per-GPU device-to-host copy bandwidth.
    pub fn dtoh(&self) -> Bandwidth {
        self.dtoh
    }

    /// Aggregated bandwidth from the cluster to remote storage.
    pub fn remote(&self) -> Bandwidth {
        self.remote
    }

    /// Host memory per node in bytes.
    pub fn host_mem_bytes(&self) -> u64 {
        self.host_mem_bytes
    }

    /// Overrides the remote-storage bandwidth (Fig. 4 sweeps this).
    pub fn with_remote(mut self, remote: Bandwidth) -> Self {
        self.remote = remote;
        self
    }

    /// Overrides the host-memory quota.
    pub fn with_host_mem(mut self, bytes: u64) -> Self {
        self.host_mem_bytes = bytes;
        self
    }

    /// The machine hosting a global worker id (consecutive workers share
    /// a node, matching Megatron's TP-innermost rank order).
    ///
    /// # Panics
    ///
    /// Panics when the worker id is out of range.
    pub fn node_of_worker(&self, worker: usize) -> NodeId {
        assert!(worker < self.world_size(), "worker {worker} out of range");
        worker / self.gpus_per_node
    }

    /// Global worker ids hosted on `node`.
    ///
    /// # Panics
    ///
    /// Panics when the node id is out of range.
    pub fn workers_of_node(&self, node: NodeId) -> std::ops::Range<usize> {
        assert!(node < self.nodes, "node {node} out of range");
        node * self.gpus_per_node..(node + 1) * self.gpus_per_node
    }

    /// The `origin_group` interval array of the paper's placement
    /// algorithm (§IV-B-1): workers grouped by host machine.
    pub fn origin_group(&self) -> Vec<std::ops::Range<usize>> {
        (0..self.nodes).map(|n| self.workers_of_node(n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let s = ClusterSpec::paper_testbed();
        assert_eq!((s.nodes(), s.gpus_per_node(), s.world_size()), (4, 4, 16));
        assert!((s.nic().as_gbps() - 100.0).abs() < 1e-9);
        assert!((s.remote().as_gbps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn worker_node_mapping_round_trips() {
        let s = ClusterSpec::paper_testbed();
        for w in 0..s.world_size() {
            let n = s.node_of_worker(w);
            assert!(s.workers_of_node(n).contains(&w));
        }
    }

    #[test]
    fn origin_group_covers_all_workers() {
        let s = ClusterSpec::v100_scalability(4, 8);
        let groups = s.origin_group();
        assert_eq!(groups.len(), 4);
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_worker_panics() {
        ClusterSpec::paper_testbed().node_of_worker(16);
    }

    #[test]
    fn overrides_apply() {
        let s = ClusterSpec::paper_testbed()
            .with_remote(Bandwidth::from_gbps(20.0))
            .with_host_mem(1024);
        assert!((s.remote().as_gbps() - 20.0).abs() < 1e-9);
        assert_eq!(s.host_mem_bytes(), 1024);
    }
}
