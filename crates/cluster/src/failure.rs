//! Failure injection: independent node failures (paper §II-B).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::NodeId;

/// Which nodes fail in one concurrent-failure event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureScenario {
    failed: Vec<NodeId>,
}

impl FailureScenario {
    /// A scenario failing exactly the given nodes (deduplicated, sorted).
    pub fn new(mut failed: Vec<NodeId>) -> Self {
        failed.sort_unstable();
        failed.dedup();
        Self { failed }
    }

    /// The paper's Fig. 13a scenario on the 4-node testbed: nodes 1 and 3
    /// fail, all data nodes (0 and 2) survive.
    pub fn fig13a() -> Self {
        Self::new(vec![1, 3])
    }

    /// The paper's Fig. 13b scenario: nodes 2 and 3 fail — a data node is
    /// lost, forcing decode, and GEMINI-style grouping (nodes {2,3} in
    /// one group) cannot recover at all.
    pub fn fig13b() -> Self {
        Self::new(vec![2, 3])
    }

    /// The failed node ids, sorted ascending.
    pub fn failed(&self) -> &[NodeId] {
        &self.failed
    }

    /// Number of concurrent failures.
    pub fn count(&self) -> usize {
        self.failed.len()
    }

    /// `true` when `node` fails in this scenario.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.binary_search(&node).is_ok()
    }
}

/// Samples independent per-node failures with probability `p`, the model
/// the paper's reliability analysis uses (§II-B, Eqns. 1–2).
///
/// # Examples
///
/// ```
/// use ecc_cluster::FailureModel;
///
/// let model = FailureModel::new(0.3)?;
/// let scenario = model.sample(8, 42);
/// assert!(scenario.count() <= 8);
/// // Same seed, same outcome.
/// assert_eq!(model.sample(8, 42), scenario);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureModel {
    p: f64,
}

impl FailureModel {
    /// Creates a model with per-node failure probability `p`.
    ///
    /// # Errors
    ///
    /// Returns an error message when `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, String> {
        // NaN compares false to everything, so `contains` already
        // rejects it — no separate `is_nan` arm needed.
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("failure probability {p} must be within [0, 1]"));
        }
        Ok(Self { p })
    }

    /// The per-node failure probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples a failure scenario for `nodes` machines with a fixed seed.
    pub fn sample(&self, nodes: usize, seed: u64) -> FailureScenario {
        let mut rng = StdRng::seed_from_u64(seed);
        let failed = (0..nodes).filter(|_| rng.gen_bool(self.p)).collect::<Vec<_>>();
        FailureScenario::new(failed)
    }

    /// Samples *correlated* failures: the `nodes` machines are split
    /// into consecutive groups of `group_size` (sharing a rack / power
    /// domain), and each whole group fails together with probability
    /// `p` — the correlated-failure pattern the paper's §II-B failure
    /// studies observe alongside independent crashes. The trailing
    /// partial group (when `group_size` does not divide `nodes`) is
    /// sampled like any other group.
    ///
    /// # Panics
    ///
    /// Panics when `group_size` is zero.
    pub fn sample_correlated(&self, nodes: usize, group_size: usize, seed: u64) -> FailureScenario {
        assert!(group_size > 0, "group_size must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failed = Vec::new();
        let mut base = 0usize;
        while base < nodes {
            let end = (base + group_size).min(nodes);
            if rng.gen_bool(self.p) {
                failed.extend(base..end);
            }
            base = end;
        }
        FailureScenario::new(failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_dedups_and_sorts() {
        let s = FailureScenario::new(vec![3, 1, 3, 0]);
        assert_eq!(s.failed(), &[0, 1, 3]);
        assert_eq!(s.count(), 3);
        assert!(s.is_failed(1));
        assert!(!s.is_failed(2));
    }

    #[test]
    fn paper_scenarios() {
        assert_eq!(FailureScenario::fig13a().failed(), &[1, 3]);
        assert_eq!(FailureScenario::fig13b().failed(), &[2, 3]);
    }

    #[test]
    fn probability_bounds_enforced() {
        assert!(FailureModel::new(-0.1).is_err());
        assert!(FailureModel::new(1.1).is_err());
        assert!(FailureModel::new(0.0).is_ok());
        assert!(FailureModel::new(1.0).is_ok());
    }

    #[test]
    fn nan_probability_is_rejected() {
        // Regression: the range check alone must reject NaN (NaN
        // comparisons are false, so `contains` returns false) — the old
        // explicit `is_nan` arm was dead code.
        assert!(FailureModel::new(f64::NAN).is_err());
        assert!(FailureModel::new(-f64::NAN).is_err());
    }

    #[test]
    fn correlated_sampling_fails_whole_groups() {
        let m = FailureModel::new(0.5).unwrap();
        for seed in 0..50u64 {
            let s = m.sample_correlated(8, 2, seed);
            // Failures only ever appear as whole pairs {2g, 2g+1}.
            for g in 0..4usize {
                assert_eq!(
                    s.is_failed(2 * g),
                    s.is_failed(2 * g + 1),
                    "seed {seed}: group {g} split"
                );
            }
        }
        // Determinism and both outcomes occur.
        assert_eq!(m.sample_correlated(8, 2, 3), m.sample_correlated(8, 2, 3));
        assert!((0..50).any(|s| m.sample_correlated(8, 2, s).count() > 0));
        assert!((0..50).any(|s| m.sample_correlated(8, 2, s).count() == 0));
    }

    #[test]
    fn correlated_sampling_handles_partial_trailing_group() {
        let m = FailureModel::new(1.0).unwrap();
        let s = m.sample_correlated(5, 2, 0);
        assert_eq!(s.failed(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn extremes_behave() {
        assert_eq!(FailureModel::new(0.0).unwrap().sample(10, 1).count(), 0);
        assert_eq!(FailureModel::new(1.0).unwrap().sample(10, 1).count(), 10);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = FailureModel::new(0.4).unwrap();
        assert_eq!(m.sample(20, 7), m.sample(20, 7));
        // Different seeds eventually differ.
        let distinct = (0..20).any(|s| m.sample(20, s) != m.sample(20, s + 1000));
        assert!(distinct);
    }

    #[test]
    fn empirical_rate_tracks_p() {
        let m = FailureModel::new(0.25).unwrap();
        let trials = 2000u64;
        let nodes = 10usize;
        let total: usize = (0..trials).map(|s| m.sample(nodes, s).count()).sum();
        let rate = total as f64 / (trials as usize * nodes) as f64;
        assert!((0.22..0.28).contains(&rate), "empirical rate {rate}");
    }
}
