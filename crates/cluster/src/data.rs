//! The real-byte data plane: node memories, remote storage, liveness.

use std::collections::HashMap;

use crate::{ClusterError, ClusterSpec, NodeId};

/// A keyed in-memory blob store with a capacity quota.
#[derive(Debug, Clone, Default)]
struct BlobStore {
    blobs: HashMap<String, Vec<u8>>,
    used: u64,
}

impl BlobStore {
    fn put(&mut self, key: &str, bytes: Vec<u8>) -> u64 {
        let new = bytes.len() as u64;
        let old = self.blobs.insert(key.to_string(), bytes).map_or(0, |b| b.len() as u64);
        self.used = self.used - old + new;
        new
    }

    fn get(&self, key: &str) -> Option<&[u8]> {
        self.blobs.get(key).map(Vec::as_slice)
    }

    fn remove(&mut self, key: &str) -> Option<Vec<u8>> {
        let removed = self.blobs.remove(key);
        if let Some(b) = &removed {
            self.used -= b.len() as u64;
        }
        removed
    }

    fn clear(&mut self) {
        self.blobs.clear();
        self.used = 0;
    }

    fn keys(&self) -> impl Iterator<Item = &str> {
        self.blobs.keys().map(String::as_str)
    }
}

#[derive(Debug, Clone)]
struct Node {
    alive: bool,
    store: BlobStore,
}

/// The cluster data plane: per-node volatile memories, one persistent
/// remote store, and node liveness.
///
/// All byte movement in "real mode" goes through this type, so the
/// fundamental volatility property of in-memory checkpointing — *a node
/// failure destroys its checkpoints* — holds by construction:
/// [`Cluster::fail_node`] wipes the node's store.
///
/// # Examples
///
/// ```
/// use ecc_cluster::{Cluster, ClusterSpec};
///
/// let mut c = Cluster::new(ClusterSpec::tiny_test(2, 1));
/// c.put_local(0, "chunk", vec![42; 8])?;
/// c.transfer(0, 1, "chunk", "chunk")?;
/// assert_eq!(c.get_local(1, "chunk").unwrap(), &[42; 8]);
/// # Ok::<(), ecc_cluster::ClusterError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    spec: ClusterSpec,
    nodes: Vec<Node>,
    remote: BlobStore,
}

impl Cluster {
    /// Creates a cluster with all nodes alive and empty.
    pub fn new(spec: ClusterSpec) -> Self {
        let nodes =
            (0..spec.nodes()).map(|_| Node { alive: true, store: BlobStore::default() }).collect();
        Self { spec, nodes, remote: BlobStore::default() }
    }

    /// The hardware description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// `true` when the node is alive.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node ids.
    pub fn alive(&self, node: NodeId) -> bool {
        self.nodes[node].alive
    }

    /// Node ids that are currently alive.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).filter(|&n| self.nodes[n].alive).collect()
    }

    /// Fails a node: marks it dead and *destroys its in-memory data*
    /// (CPU memory is volatile — the core premise the paper addresses).
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node ids.
    pub fn fail_node(&mut self, node: NodeId) {
        self.nodes[node].alive = false;
        self.nodes[node].store.clear();
    }

    /// Brings a replacement machine online for `node`: alive, empty.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node ids.
    pub fn replace_node(&mut self, node: NodeId) {
        self.nodes[node].alive = true;
        self.nodes[node].store.clear();
    }

    fn node_mut(&mut self, node: NodeId) -> Result<&mut Node, ClusterError> {
        if node >= self.nodes.len() {
            return Err(ClusterError::NoSuchNode { node });
        }
        Ok(&mut self.nodes[node])
    }

    fn live_node_mut(&mut self, node: NodeId) -> Result<&mut Node, ClusterError> {
        let n = self.node_mut(node)?;
        if !n.alive {
            return Err(ClusterError::NodeDown { node });
        }
        Ok(n)
    }

    /// Stores a blob in a node's host memory.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NodeDown`] for dead nodes,
    /// [`ClusterError::NoSuchNode`] for bad ids, and
    /// [`ClusterError::OutOfMemory`] when the quota would be exceeded.
    pub fn put_local(
        &mut self,
        node: NodeId,
        key: &str,
        bytes: Vec<u8>,
    ) -> Result<(), ClusterError> {
        let quota = self.spec.host_mem_bytes();
        let n = self.live_node_mut(node)?;
        let replacing = n.store.get(key).map_or(0, |b| b.len() as u64);
        let needed = bytes.len() as u64;
        let available = quota - (n.store.used - replacing);
        if needed > available {
            return Err(ClusterError::OutOfMemory { node, requested: needed, available });
        }
        n.store.put(key, bytes);
        Ok(())
    }

    /// Reads a blob from a live node's host memory.
    ///
    /// Returns an owned copy: the [`DataPlane`] contract is
    /// owned-bytes so socket-backed planes can satisfy it, and the
    /// in-memory plane plays by the same rules.
    pub fn get_local(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        let n = self.nodes.get(node)?;
        if !n.alive {
            return None;
        }
        n.store.get(key).map(<[u8]>::to_vec)
    }

    /// Removes and returns a blob from a live node's host memory.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NodeDown`], [`ClusterError::NoSuchNode`]
    /// or [`ClusterError::NoSuchBlob`].
    pub fn take_local(&mut self, node: NodeId, key: &str) -> Result<Vec<u8>, ClusterError> {
        let n = self.live_node_mut(node)?;
        n.store.remove(key).ok_or_else(|| ClusterError::NoSuchBlob { key: key.to_string() })
    }

    /// Deletes a blob if present (no error when absent or node dead).
    pub fn delete_local(&mut self, node: NodeId, key: &str) {
        if let Ok(n) = self.live_node_mut(node) {
            n.store.remove(key);
        }
    }

    /// Host-memory bytes currently used on a node.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node ids.
    pub fn mem_used(&self, node: NodeId) -> u64 {
        self.nodes[node].store.used
    }

    /// Keys stored on a live node (unordered).
    pub fn local_keys(&self, node: NodeId) -> Vec<String> {
        match self.nodes.get(node) {
            Some(n) if n.alive => {
                let mut keys: Vec<String> = n.store.keys().map(str::to_string).collect();
                keys.sort_unstable();
                keys
            }
            _ => Vec::new(),
        }
    }

    /// Copies a blob from one live node to another (the P2P primitive).
    ///
    /// # Errors
    ///
    /// Returns the usual liveness/quota errors of the two endpoints, or
    /// [`ClusterError::NoSuchBlob`] when the source blob is missing.
    pub fn transfer(
        &mut self,
        src: NodeId,
        dst: NodeId,
        src_key: &str,
        dst_key: &str,
    ) -> Result<u64, ClusterError> {
        if src >= self.nodes.len() {
            return Err(ClusterError::NoSuchNode { node: src });
        }
        if !self.nodes[src].alive {
            return Err(ClusterError::NodeDown { node: src });
        }
        let bytes = self.nodes[src]
            .store
            .get(src_key)
            .ok_or_else(|| ClusterError::NoSuchBlob { key: src_key.to_string() })?
            .to_vec();
        let len = bytes.len() as u64;
        self.put_local(dst, dst_key, bytes)?;
        Ok(len)
    }

    /// Stores a blob in persistent remote storage (survives any node
    /// failure — checkpoint step 4's catastrophic-failure backstop).
    pub fn put_remote(&mut self, key: &str, bytes: Vec<u8>) {
        self.remote.put(key, bytes);
    }

    /// Reads a blob from remote storage (owned copy; see
    /// [`Cluster::get_local`]).
    pub fn get_remote(&self, key: &str) -> Option<Vec<u8>> {
        self.remote.get(key).map(<[u8]>::to_vec)
    }

    /// Bytes held in remote storage.
    pub fn remote_used(&self) -> u64 {
        self.remote.used
    }

    /// Destroys the remote store (a tier-1 outage: the persistent
    /// backend is lost while peer memories survive). Chaos campaigns
    /// use this to prove tier-0 alone still restores a checkpoint.
    pub fn wipe_remote(&mut self) {
        self.remote.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cluster {
        Cluster::new(ClusterSpec::tiny_test(3, 2))
    }

    #[test]
    fn put_get_round_trips() {
        let mut c = tiny();
        c.put_local(1, "a", vec![1, 2, 3]).unwrap();
        assert_eq!(c.get_local(1, "a").unwrap(), &[1, 2, 3]);
        assert_eq!(c.mem_used(1), 3);
        assert!(c.get_local(0, "a").is_none());
    }

    #[test]
    fn replace_updates_accounting() {
        let mut c = tiny();
        c.put_local(0, "a", vec![0; 100]).unwrap();
        c.put_local(0, "a", vec![0; 40]).unwrap();
        assert_eq!(c.mem_used(0), 40);
        c.delete_local(0, "a");
        assert_eq!(c.mem_used(0), 0);
    }

    #[test]
    fn failure_destroys_memory() {
        let mut c = tiny();
        c.put_local(2, "ckpt", vec![7; 64]).unwrap();
        c.fail_node(2);
        assert!(!c.alive(2));
        assert!(c.get_local(2, "ckpt").is_none());
        assert!(matches!(c.put_local(2, "x", vec![1]), Err(ClusterError::NodeDown { node: 2 })));
        c.replace_node(2);
        assert!(c.alive(2));
        assert!(c.get_local(2, "ckpt").is_none(), "replacement starts empty");
        assert_eq!(c.mem_used(2), 0);
    }

    #[test]
    fn transfer_moves_real_bytes() {
        let mut c = tiny();
        c.put_local(0, "chunk", vec![9; 32]).unwrap();
        let n = c.transfer(0, 1, "chunk", "replica").unwrap();
        assert_eq!(n, 32);
        assert_eq!(c.get_local(1, "replica").unwrap(), &[9u8; 32][..]);
        // Source keeps its copy (transfer is a copy, not a move).
        assert!(c.get_local(0, "chunk").is_some());
    }

    #[test]
    fn transfer_to_dead_node_fails() {
        let mut c = tiny();
        c.put_local(0, "chunk", vec![1; 8]).unwrap();
        c.fail_node(1);
        assert!(matches!(
            c.transfer(0, 1, "chunk", "chunk"),
            Err(ClusterError::NodeDown { node: 1 })
        ));
    }

    #[test]
    fn missing_blob_is_an_error() {
        let mut c = tiny();
        assert!(matches!(c.transfer(0, 1, "nope", "x"), Err(ClusterError::NoSuchBlob { .. })));
        assert!(matches!(c.take_local(0, "nope"), Err(ClusterError::NoSuchBlob { .. })));
    }

    #[test]
    fn quota_is_enforced() {
        let spec = ClusterSpec::tiny_test(1, 1).with_host_mem(100);
        let mut c = Cluster::new(spec);
        c.put_local(0, "a", vec![0; 80]).unwrap();
        assert!(matches!(c.put_local(0, "b", vec![0; 30]), Err(ClusterError::OutOfMemory { .. })));
        // Replacing an existing blob only needs the delta.
        c.put_local(0, "a", vec![0; 100]).unwrap();
    }

    #[test]
    fn remote_storage_survives_failures() {
        let mut c = tiny();
        c.put_remote("ckpt/full", vec![5; 16]);
        for n in 0..3 {
            c.fail_node(n);
        }
        assert_eq!(c.get_remote("ckpt/full").unwrap(), &[5u8; 16][..]);
        assert_eq!(c.remote_used(), 16);
    }

    #[test]
    fn alive_nodes_tracks_state() {
        let mut c = tiny();
        assert_eq!(c.alive_nodes(), vec![0, 1, 2]);
        c.fail_node(1);
        assert_eq!(c.alive_nodes(), vec![0, 2]);
    }

    #[test]
    fn local_keys_sorted() {
        let mut c = tiny();
        c.put_local(0, "b", vec![1]).unwrap();
        c.put_local(0, "a", vec![2]).unwrap();
        assert_eq!(c.local_keys(0), vec!["a".to_string(), "b".to_string()]);
        c.fail_node(0);
        assert!(c.local_keys(0).is_empty());
    }
}

/// The byte-movement operations a checkpointing engine needs.
///
/// Implemented by [`Cluster`] (the whole machine set) and by
/// [`ClusterView`] (a contiguous node range with namespaced keys), so
/// the same engine can drive either the full cluster or one
/// checkpointing group of a group-based deployment (paper §VI).
pub trait DataPlane {
    /// Number of nodes visible through this plane.
    fn nodes(&self) -> usize;

    /// `true` when the (plane-local) node is alive.
    fn alive(&self, node: NodeId) -> bool;

    /// Stores a blob in a node's host memory.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cluster::put_local`].
    fn put_local(&mut self, node: NodeId, key: &str, bytes: Vec<u8>) -> Result<(), ClusterError>;

    /// Reads a blob from a live node's host memory.
    ///
    /// Returns *owned* bytes. A borrowed return (`Option<&[u8]>`) would
    /// tie the blob's lifetime to the plane's own storage — impossible
    /// for a socket-backed plane, whose bytes arrive off the wire and
    /// belong to no long-lived buffer. Owned bytes are the only
    /// signature every transport can satisfy.
    fn get_local(&self, node: NodeId, key: &str) -> Option<Vec<u8>>;

    /// Deletes a blob if present (no error when absent or node dead).
    fn delete_local(&mut self, node: NodeId, key: &str);

    /// Stores a blob in persistent remote storage.
    fn put_remote(&mut self, key: &str, bytes: Vec<u8>);

    /// Reads a blob from remote storage (owned bytes; see
    /// [`DataPlane::get_local`]).
    fn get_remote(&self, key: &str) -> Option<Vec<u8>>;

    /// Keys stored on a live node, sorted. Empty for dead or
    /// out-of-range nodes. Used for cross-process checkpoint-version
    /// discovery.
    fn local_keys(&self, node: NodeId) -> Vec<String>;
}

impl DataPlane for Cluster {
    fn nodes(&self) -> usize {
        self.spec().nodes()
    }

    fn alive(&self, node: NodeId) -> bool {
        Cluster::alive(self, node)
    }

    fn put_local(&mut self, node: NodeId, key: &str, bytes: Vec<u8>) -> Result<(), ClusterError> {
        Cluster::put_local(self, node, key, bytes)
    }

    fn get_local(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        Cluster::get_local(self, node, key)
    }

    fn delete_local(&mut self, node: NodeId, key: &str) {
        Cluster::delete_local(self, node, key)
    }

    fn put_remote(&mut self, key: &str, bytes: Vec<u8>) {
        Cluster::put_remote(self, key, bytes)
    }

    fn get_remote(&self, key: &str) -> Option<Vec<u8>> {
        Cluster::get_remote(self, key)
    }

    fn local_keys(&self, node: NodeId) -> Vec<String> {
        Cluster::local_keys(self, node)
    }
}

/// A windowed, key-namespaced view over a contiguous node range of a
/// [`Cluster`] — one checkpointing *group* of a group-based deployment.
///
/// Node ids are translated by the window base; every key (local and
/// remote) is prefixed with the group tag so groups never collide.
///
/// # Examples
///
/// ```
/// use ecc_cluster::{Cluster, ClusterSpec, DataPlane};
///
/// let mut cluster = Cluster::new(ClusterSpec::tiny_test(4, 1));
/// let mut view = cluster.view(2, 2, "grp1");
/// view.put_local(0, "chunk", vec![1, 2, 3])?; // lands on global node 2
/// assert!(view.get_local(0, "chunk").is_some());
/// drop(view);
/// assert!(cluster.get_local(2, "grp1/chunk").is_some());
/// # Ok::<(), ecc_cluster::ClusterError>(())
/// ```
#[derive(Debug)]
pub struct ClusterView<'a> {
    cluster: &'a mut Cluster,
    base: NodeId,
    nodes: usize,
    prefix: String,
}

impl Cluster {
    /// Opens a view over nodes `base .. base + nodes` with all keys
    /// prefixed by `tag`.
    ///
    /// # Panics
    ///
    /// Panics when the window exceeds the cluster.
    pub fn view(&mut self, base: NodeId, nodes: usize, tag: &str) -> ClusterView<'_> {
        assert!(
            base + nodes <= self.spec().nodes(),
            "view window {base}..{} exceeds cluster",
            base + nodes
        );
        ClusterView { cluster: self, base, nodes, prefix: format!("{tag}/") }
    }
}

impl ClusterView<'_> {
    fn global(&self, node: NodeId) -> NodeId {
        assert!(node < self.nodes, "node {node} outside view of {} nodes", self.nodes);
        self.base + node
    }

    fn key(&self, key: &str) -> String {
        format!("{}{key}", self.prefix)
    }
}

impl DataPlane for ClusterView<'_> {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn alive(&self, node: NodeId) -> bool {
        self.cluster.alive(self.global(node))
    }

    fn put_local(&mut self, node: NodeId, key: &str, bytes: Vec<u8>) -> Result<(), ClusterError> {
        let node = self.global(node);
        let key = self.key(key);
        self.cluster.put_local(node, &key, bytes)
    }

    fn get_local(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        let node = self.global(node);
        let key = self.key(key);
        self.cluster.get_local(node, &key)
    }

    fn delete_local(&mut self, node: NodeId, key: &str) {
        let node = self.global(node);
        let key = self.key(key);
        self.cluster.delete_local(node, &key)
    }

    fn put_remote(&mut self, key: &str, bytes: Vec<u8>) {
        let key = self.key(key);
        self.cluster.put_remote(&key, bytes)
    }

    fn get_remote(&self, key: &str) -> Option<Vec<u8>> {
        let key = self.key(key);
        self.cluster.get_remote(&key)
    }

    fn local_keys(&self, node: NodeId) -> Vec<String> {
        let global = self.global(node);
        let mut keys: Vec<String> = self
            .cluster
            .local_keys(global)
            .into_iter()
            .filter_map(|k| k.strip_prefix(&self.prefix).map(str::to_string))
            .collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod view_tests {
    use super::*;
    use crate::ClusterSpec;

    #[test]
    fn view_translates_nodes_and_keys() {
        let mut c = Cluster::new(ClusterSpec::tiny_test(4, 1));
        {
            let mut v = c.view(2, 2, "g1");
            v.put_local(1, "chunk", vec![9; 4]).unwrap();
            v.put_remote("backup", vec![7; 2]);
            assert_eq!(v.get_local(1, "chunk").unwrap(), &[9; 4]);
            assert_eq!(DataPlane::nodes(&v), 2);
        }
        assert_eq!(c.get_local(3, "g1/chunk").unwrap(), &[9; 4]);
        assert_eq!(c.get_remote("g1/backup").unwrap(), &[7; 2]);
        assert!(c.get_local(1, "g1/chunk").is_none());
    }

    #[test]
    fn views_of_different_groups_do_not_collide() {
        let mut c = Cluster::new(ClusterSpec::tiny_test(4, 1));
        c.view(0, 2, "g0").put_local(0, "chunk", vec![1]).unwrap();
        c.view(2, 2, "g1").put_local(0, "chunk", vec![2]).unwrap();
        assert_eq!(c.get_local(0, "g0/chunk").unwrap(), &[1]);
        assert_eq!(c.get_local(2, "g1/chunk").unwrap(), &[2]);
    }

    #[test]
    fn view_sees_global_liveness() {
        let mut c = Cluster::new(ClusterSpec::tiny_test(4, 1));
        c.fail_node(3);
        let v = c.view(2, 2, "g1");
        assert!(v.alive(0));
        assert!(!v.alive(1));
    }

    #[test]
    fn view_deletes_through() {
        let mut c = Cluster::new(ClusterSpec::tiny_test(2, 1));
        c.view(0, 2, "g").put_local(0, "x", vec![1]).unwrap();
        c.view(0, 2, "g").delete_local(0, "x");
        assert!(c.get_local(0, "g/x").is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds cluster")]
    fn oversized_view_panics() {
        let mut c = Cluster::new(ClusterSpec::tiny_test(2, 1));
        let _ = c.view(1, 2, "g");
    }
}
