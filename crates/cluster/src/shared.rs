//! A cloneable, thread-safe handle over any [`DataPlane`].
//!
//! The tiered store's drain worker copies sealed checkpoint versions
//! from peer memory to remote storage on its own thread, while the
//! training loop keeps saving on the main thread. Both need the *same*
//! plane — the drainer must see the blobs the engine just placed — so
//! the plane goes behind a mutex and every party holds a clone of this
//! handle.
//!
//! Lock granularity is one plane operation: the engine and the drainer
//! interleave at blob boundaries, never mid-blob, which is exactly the
//! atomicity the in-memory [`crate::Cluster`] already provides. No
//! operation holds the lock while blocking on anything else, so the
//! handle cannot deadlock against its own clones.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::{ClusterError, DataPlane, NodeId};

/// A `Clone + Send` wrapper sharing one [`DataPlane`] across threads.
///
/// # Examples
///
/// ```
/// use ecc_cluster::{Cluster, ClusterSpec, DataPlane, SharedPlane};
///
/// let shared = SharedPlane::new(Cluster::new(ClusterSpec::tiny_test(2, 1)));
/// let mut a = shared.clone();
/// a.put_local(0, "chunk", vec![7; 4])?;
/// assert_eq!(shared.get_local(0, "chunk").unwrap(), &[7; 4]);
/// # Ok::<(), ecc_cluster::ClusterError>(())
/// ```
#[derive(Debug)]
pub struct SharedPlane<P> {
    inner: Arc<Mutex<P>>,
}

impl<P> Clone for SharedPlane<P> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<P> SharedPlane<P> {
    /// Wraps a plane for shared cross-thread access.
    pub fn new(plane: P) -> Self {
        Self { inner: Arc::new(Mutex::new(plane)) }
    }

    /// Locks the plane for a multi-operation critical section (e.g.
    /// fault injection that must not interleave with a drain step).
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock.
    pub fn lock(&self) -> MutexGuard<'_, P> {
        self.inner.lock().expect("shared plane poisoned")
    }

    /// Recovers the inner plane once all other handles are dropped.
    ///
    /// # Panics
    ///
    /// Panics while clones of this handle are still alive, or if the
    /// lock was poisoned.
    pub fn into_inner(self) -> P {
        Arc::into_inner(self.inner)
            .expect("shared plane still has live clones")
            .into_inner()
            .expect("shared plane poisoned")
    }
}

impl<P: DataPlane> DataPlane for SharedPlane<P> {
    fn nodes(&self) -> usize {
        self.lock().nodes()
    }

    fn alive(&self, node: NodeId) -> bool {
        self.lock().alive(node)
    }

    fn put_local(&mut self, node: NodeId, key: &str, bytes: Vec<u8>) -> Result<(), ClusterError> {
        self.lock().put_local(node, key, bytes)
    }

    fn get_local(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        self.lock().get_local(node, key)
    }

    fn delete_local(&mut self, node: NodeId, key: &str) {
        self.lock().delete_local(node, key)
    }

    fn put_remote(&mut self, key: &str, bytes: Vec<u8>) {
        self.lock().put_remote(key, bytes)
    }

    fn get_remote(&self, key: &str) -> Option<Vec<u8>> {
        self.lock().get_remote(key)
    }

    fn local_keys(&self, node: NodeId) -> Vec<String> {
        self.lock().local_keys(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterSpec};

    #[test]
    fn clones_see_each_others_writes() {
        let shared = SharedPlane::new(Cluster::new(ClusterSpec::tiny_test(2, 1)));
        let mut a = shared.clone();
        let b = shared.clone();
        a.put_local(1, "k", vec![3; 8]).unwrap();
        assert_eq!(b.get_local(1, "k").unwrap(), &[3; 8]);
        b.lock().fail_node(1);
        assert!(!a.alive(1));
    }

    #[test]
    fn into_inner_recovers_the_plane() {
        let shared = SharedPlane::new(Cluster::new(ClusterSpec::tiny_test(1, 1)));
        let mut a = shared.clone();
        a.put_remote("r", vec![1, 2]);
        drop(a);
        let plane = shared.into_inner();
        assert_eq!(plane.get_remote("r").unwrap(), &[1, 2]);
    }

    #[test]
    fn works_across_threads() {
        let shared = SharedPlane::new(Cluster::new(ClusterSpec::tiny_test(1, 1)));
        let mut writer = shared.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                writer.put_local(0, "t", vec![9; 4]).unwrap();
            });
        });
        assert_eq!(shared.get_local(0, "t").unwrap(), &[9; 4]);
    }
}
