//! Heartbeat-driven node-health registry.
//!
//! Production fleets learn about failures from *missed heartbeats*, not
//! from an omniscient `fail_node` call (ECRM and TierCheck both build
//! their fault tolerance on exactly this signal). [`HealthRegistry`] is
//! that seam: every node owns a last-heartbeat timestamp, and
//! [`HealthRegistry::sweep`] classifies each node as
//! [`NodeHealth::Alive`], [`NodeHealth::Suspect`] (one missed window) or
//! [`NodeHealth::Dead`] (gone long enough to write off) from timestamps
//! alone. Timestamps are plain nanosecond readings supplied by the
//! caller, so the registry runs equally on wall-clock time and on a
//! deterministic [`ecc_telemetry::ManualClock`].
//!
//! Transitions are returned from `sweep` and, when a recorder is
//! attached, also emitted as `cluster.health.*` counters and
//! `health.transition` events — the feed the observability plane's
//! `/metrics` and `/events` endpoints surface live.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use ecc_telemetry::Recorder;

use crate::NodeId;

/// Transitions retained for [`HealthRegistry::transitions_since`]
/// consumers that poll slower than transitions occur.
const TRANSITION_LOG_CAPACITY: usize = 4096;

/// Liveness classification of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Heartbeating within the suspect window.
    Alive,
    /// Missed at least one suspect window but not yet written off.
    Suspect,
    /// Missed the dead window (or was declared dead explicitly); its
    /// in-memory checkpoints must be assumed lost.
    Dead,
}

impl NodeHealth {
    /// Stable lowercase label (used in metrics and events).
    pub fn as_str(self) -> &'static str {
        match self {
            NodeHealth::Alive => "alive",
            NodeHealth::Suspect => "suspect",
            NodeHealth::Dead => "dead",
        }
    }

    /// Numeric gauge encoding: dead = 0, suspect = 1, alive = 2 (so
    /// "bigger is healthier" on a dashboard).
    pub fn gauge(self) -> u64 {
        match self {
            NodeHealth::Dead => 0,
            NodeHealth::Suspect => 1,
            NodeHealth::Alive => 2,
        }
    }
}

/// Heartbeat windows for [`HealthRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Silence longer than this marks a node [`NodeHealth::Suspect`].
    pub suspect_after_ns: u64,
    /// Silence longer than this marks a node [`NodeHealth::Dead`].
    pub dead_after_ns: u64,
}

impl Default for HealthConfig {
    /// 2 s to suspect, 10 s to declare dead — conservative defaults for
    /// wall-clock heartbeats on a healthy local fabric.
    fn default() -> Self {
        Self { suspect_after_ns: 2_000_000_000, dead_after_ns: 10_000_000_000 }
    }
}

/// One state change observed by [`HealthRegistry::sweep`] (or forced by
/// [`HealthRegistry::mark_dead`] / a reviving heartbeat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// The node that changed state.
    pub node: NodeId,
    /// Previous state.
    pub from: NodeHealth,
    /// New state.
    pub to: NodeHealth,
    /// Clock reading when the transition was decided.
    pub at_ns: u64,
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    health: NodeHealth,
    last_heartbeat_ns: u64,
}

#[derive(Debug)]
struct Inner {
    nodes: Vec<NodeState>,
    recorder: Option<Recorder>,
    /// Bounded transition history; `log_start` is the absolute index of
    /// the front entry (the cursor space never resets).
    log: VecDeque<HealthTransition>,
    log_start: u64,
}

impl Inner {
    fn emit(&mut self, t: HealthTransition) {
        if self.log.len() == TRANSITION_LOG_CAPACITY {
            self.log.pop_front();
            self.log_start += 1;
        }
        self.log.push_back(t);
        if let Some(rec) = &self.recorder {
            rec.counter("cluster.health.transitions").incr();
            rec.counter(&format!("cluster.health.to_{}", t.to.as_str())).incr();
            rec.event(
                "health.transition",
                format!("node {} {} -> {}", t.node, t.from.as_str(), t.to.as_str()),
            );
        }
    }
}

/// Shared per-node liveness registry. Clones share the same state, so
/// one handle can live in the heartbeat path and another behind the
/// metrics exporter.
///
/// # Examples
///
/// ```
/// use ecc_cluster::{HealthConfig, HealthRegistry, NodeHealth};
///
/// let reg = HealthRegistry::new(2, HealthConfig { suspect_after_ns: 10, dead_after_ns: 30 });
/// reg.record_heartbeat(0, 0);
/// reg.record_heartbeat(1, 0);
/// let transitions = reg.sweep(20); // both nodes silent past the suspect window
/// assert_eq!(transitions.len(), 2);
/// assert_eq!(reg.state(0), NodeHealth::Suspect);
/// reg.record_heartbeat(0, 25); // node 0 recovers
/// assert_eq!(reg.state(0), NodeHealth::Alive);
/// assert_eq!(reg.sweep(30), vec![ecc_cluster::HealthTransition {
///     node: 1,
///     from: NodeHealth::Suspect,
///     to: NodeHealth::Dead,
///     at_ns: 30,
/// }]);
/// ```
#[derive(Debug, Clone)]
pub struct HealthRegistry {
    inner: Arc<Mutex<Inner>>,
    config: HealthConfig,
}

impl HealthRegistry {
    /// A registry for `nodes` nodes, all initially [`NodeHealth::Alive`]
    /// with a heartbeat at time 0.
    ///
    /// # Panics
    ///
    /// Panics when `config` is inverted (`dead_after_ns` must be at
    /// least `suspect_after_ns`, both positive).
    pub fn new(nodes: usize, config: HealthConfig) -> Self {
        assert!(
            config.suspect_after_ns > 0 && config.dead_after_ns >= config.suspect_after_ns,
            "health windows must satisfy 0 < suspect_after_ns <= dead_after_ns"
        );
        let states = vec![NodeState { health: NodeHealth::Alive, last_heartbeat_ns: 0 }; nodes];
        Self {
            inner: Arc::new(Mutex::new(Inner {
                nodes: states,
                recorder: None,
                log: VecDeque::new(),
                log_start: 0,
            })),
            config,
        }
    }

    /// Attaches a telemetry recorder: every transition from now on also
    /// increments `cluster.health.transitions` plus a per-destination
    /// counter (`cluster.health.to_dead`, …) and appends a
    /// `health.transition` event.
    pub fn set_recorder(&self, recorder: &Recorder) {
        self.lock().recorder = Some(recorder.clone());
    }

    /// The heartbeat windows in force.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Number of registered nodes.
    pub fn nodes(&self) -> usize {
        self.lock().nodes.len()
    }

    /// Records a heartbeat from `node` at `now_ns`. A heartbeat always
    /// re-marks the node [`NodeHealth::Alive`]; when it was suspect or
    /// dead, the revival is a transition (emitted, and returned).
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node ids.
    pub fn record_heartbeat(&self, node: NodeId, now_ns: u64) -> Option<HealthTransition> {
        let mut inner = self.lock();
        assert!(node < inner.nodes.len(), "node {node} out of range");
        inner.nodes[node].last_heartbeat_ns = now_ns;
        let from = inner.nodes[node].health;
        if from == NodeHealth::Alive {
            return None;
        }
        inner.nodes[node].health = NodeHealth::Alive;
        let t = HealthTransition { node, from, to: NodeHealth::Alive, at_ns: now_ns };
        inner.emit(t);
        Some(t)
    }

    /// Declares `node` dead right now — the fast path for an explicit
    /// failure signal (connection reset, chaos crash) that should not
    /// wait out the heartbeat windows. No-op (returns `None`) when the
    /// node is already dead.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node ids.
    pub fn mark_dead(&self, node: NodeId, now_ns: u64) -> Option<HealthTransition> {
        let mut inner = self.lock();
        assert!(node < inner.nodes.len(), "node {node} out of range");
        let from = inner.nodes[node].health;
        if from == NodeHealth::Dead {
            return None;
        }
        inner.nodes[node].health = NodeHealth::Dead;
        let t = HealthTransition { node, from, to: NodeHealth::Dead, at_ns: now_ns };
        inner.emit(t);
        Some(t)
    }

    /// Re-classifies every node from its heartbeat age at `now_ns` and
    /// returns the transitions, in node order. Reviving is *not* done
    /// here — only a fresh heartbeat revives — so sweeps are monotone:
    /// Alive → Suspect → Dead.
    pub fn sweep(&self, now_ns: u64) -> Vec<HealthTransition> {
        let mut inner = self.lock();
        let mut transitions = Vec::new();
        for node in 0..inner.nodes.len() {
            let state = inner.nodes[node];
            let silence = now_ns.saturating_sub(state.last_heartbeat_ns);
            let classified = if silence >= self.config.dead_after_ns {
                NodeHealth::Dead
            } else if silence >= self.config.suspect_after_ns {
                NodeHealth::Suspect
            } else {
                NodeHealth::Alive
            };
            // Monotone: a sweep can only degrade a node's state.
            let degraded = classified.gauge() < state.health.gauge();
            if degraded {
                inner.nodes[node].health = classified;
                let t =
                    HealthTransition { node, from: state.health, to: classified, at_ns: now_ns };
                inner.emit(t);
                transitions.push(t);
            }
        }
        transitions
    }

    /// The current state of one node.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node ids.
    pub fn state(&self, node: NodeId) -> NodeHealth {
        self.lock().nodes[node].health
    }

    /// The current state of every node, in node order.
    pub fn states(&self) -> Vec<NodeHealth> {
        self.lock().nodes.iter().map(|n| n.health).collect()
    }

    /// The nodes currently written off as [`NodeHealth::Dead`], in node
    /// order — the set a membership controller must replace before the
    /// cluster regains its full m-fault budget.
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.lock()
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.health == NodeHealth::Dead)
            .map(|(i, _)| i)
            .collect()
    }

    /// Last heartbeat timestamp of one node.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range node ids.
    pub fn last_heartbeat_ns(&self, node: NodeId) -> u64 {
        self.lock().nodes[node].last_heartbeat_ns
    }

    /// Transitions that happened at or after `cursor` (an opaque value
    /// from a previous call; start from 0), in order, together with the
    /// next cursor. The history is bounded, so a consumer polling
    /// slower than transitions occur may miss the oldest — the returned
    /// cursor always reflects everything emitted so far.
    pub fn transitions_since(&self, cursor: u64) -> (Vec<HealthTransition>, u64) {
        let inner = self.lock();
        let end = inner.log_start + inner.log.len() as u64;
        let from = cursor.max(inner.log_start).min(end);
        let transitions =
            inner.log.iter().skip((from - inner.log_start) as usize).copied().collect();
        (transitions, end)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("health registry poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig { suspect_after_ns: 100, dead_after_ns: 300 }
    }

    #[test]
    fn transition_log_supports_cursor_reads() {
        let reg = HealthRegistry::new(2, cfg());
        let (none, cursor) = reg.transitions_since(0);
        assert!(none.is_empty());
        assert_eq!(cursor, 0);

        reg.mark_dead(0, 5);
        reg.record_heartbeat(0, 10); // revival
        reg.sweep(500); // both nodes dead (node 0 heartbeat 10, node 1 at 0)
        let (transitions, cursor) = reg.transitions_since(cursor);
        assert_eq!(transitions.len(), 4, "{transitions:?}");
        assert_eq!(transitions[0].to, NodeHealth::Dead);
        assert_eq!(transitions[1].to, NodeHealth::Alive);
        // Cursor is caught up: nothing new until the next transition.
        let (empty, cursor2) = reg.transitions_since(cursor);
        assert!(empty.is_empty());
        assert_eq!(cursor2, cursor);
    }

    #[test]
    fn silence_degrades_alive_to_suspect_to_dead() {
        let reg = HealthRegistry::new(1, cfg());
        reg.record_heartbeat(0, 0);
        assert!(reg.sweep(99).is_empty());
        assert_eq!(reg.state(0), NodeHealth::Alive);

        let t = reg.sweep(100);
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), (NodeHealth::Alive, NodeHealth::Suspect));

        assert!(reg.sweep(200).is_empty(), "still suspect, no new transition");

        let t = reg.sweep(300);
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), (NodeHealth::Suspect, NodeHealth::Dead));
        assert_eq!(reg.state(0), NodeHealth::Dead);
    }

    #[test]
    fn heartbeat_revives_and_reports_the_transition() {
        let reg = HealthRegistry::new(2, cfg());
        reg.sweep(500);
        assert_eq!(reg.states(), vec![NodeHealth::Dead, NodeHealth::Dead]);
        let t = reg.record_heartbeat(1, 600).expect("revival is a transition");
        assert_eq!((t.from, t.to), (NodeHealth::Dead, NodeHealth::Alive));
        assert_eq!(reg.states(), vec![NodeHealth::Dead, NodeHealth::Alive]);
        assert!(reg.record_heartbeat(1, 601).is_none(), "alive -> alive is not a transition");
    }

    #[test]
    fn mark_dead_short_circuits_the_windows() {
        let reg = HealthRegistry::new(1, cfg());
        reg.record_heartbeat(0, 50);
        let t = reg.mark_dead(0, 60).expect("explicit death is a transition");
        assert_eq!((t.from, t.to), (NodeHealth::Alive, NodeHealth::Dead));
        assert!(reg.mark_dead(0, 61).is_none(), "already dead");
        // A sweep shortly after must not resurrect it.
        assert!(reg.sweep(70).is_empty());
        assert_eq!(reg.state(0), NodeHealth::Dead);
    }

    #[test]
    fn skipping_the_suspect_window_jumps_straight_to_dead() {
        let reg = HealthRegistry::new(1, cfg());
        reg.record_heartbeat(0, 0);
        let t = reg.sweep(1_000);
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].from, t[0].to), (NodeHealth::Alive, NodeHealth::Dead));
    }

    #[test]
    fn clones_share_state() {
        let reg = HealthRegistry::new(1, cfg());
        let other = reg.clone();
        reg.record_heartbeat(0, 0);
        other.sweep(400);
        assert_eq!(reg.state(0), NodeHealth::Dead);
    }

    #[test]
    fn transitions_emit_counters_and_events_when_attached() {
        let (rec, clock) = ecc_telemetry::Recorder::with_manual_clock();
        let reg = HealthRegistry::new(2, cfg());
        reg.set_recorder(&rec);
        reg.record_heartbeat(0, 0);
        clock.set_ns(300);
        reg.sweep(300); // node 0 suspect->? (0 heartbeat at 0 => dead at 300); node 1 dead
        let snap = rec.snapshot();
        assert_eq!(snap.counter("cluster.health.transitions"), 2);
        assert_eq!(snap.counter("cluster.health.to_dead"), 2);
        assert!(snap.events.iter().all(|e| e.name == "health.transition"));
        assert!(snap.events[0].detail.contains("alive -> dead"));
    }

    #[test]
    #[should_panic(expected = "health windows")]
    fn inverted_windows_are_rejected() {
        let _ = HealthRegistry::new(1, HealthConfig { suspect_after_ns: 10, dead_after_ns: 5 });
    }

    #[test]
    fn gauge_orders_by_healthiness() {
        assert!(NodeHealth::Alive.gauge() > NodeHealth::Suspect.gauge());
        assert!(NodeHealth::Suspect.gauge() > NodeHealth::Dead.gauge());
        assert_eq!(NodeHealth::Alive.as_str(), "alive");
    }
}
