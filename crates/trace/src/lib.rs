//! Causal span tracing for the ECCheck pipeline.
//!
//! Where `ecc-telemetry` aggregates (counters, histograms), this crate
//! records *timelines*: hierarchical spans with begin/end instants,
//! point instants, and cross-track *flow* arrows that tie a send on one
//! node to the matching receive on another. A [`Tracer`] organises its
//! events into Chrome-Trace-style **processes** (one per simulated node)
//! and **tracks** (one per stage or worker thread), exports them as
//! Chrome Trace Event JSON loadable in [Perfetto](https://ui.perfetto.dev)
//! ([`Tracer::chrome_trace_json`]), and renders a text critical-path
//! summary ([`Tracer::critical_path_summary`]) that attributes a root
//! span's end-to-end latency to its stages.
//!
//! Time is read through the same [`Clock`] abstraction the telemetry
//! recorder uses — build a tracer with [`Tracer::for_recorder`] and the
//! two share one epoch, so a histogram sample and the span that produced
//! it carry comparable timestamps. Under a
//! [`ManualClock`] (or when timestamps are
//! supplied explicitly via the `*_at` methods, as the simulation's
//! timing models do) identical runs export byte-identical JSON.
//!
//! Design constraints match `ecc-telemetry`: no dependencies, no
//! `unsafe`, deterministic output.
//!
//! # Examples
//!
//! ```
//! use ecc_trace::Tracer;
//!
//! let (tracer, clock) = Tracer::with_manual_clock();
//! let node0 = tracer.track(0, "node0", "encode");
//! let node1 = tracer.track(1, "node1", "recv");
//!
//! let span = tracer.span(node0, "encode.packet", "pkt 0");
//! clock.advance_ns(1_000);
//! let flow = tracer.flow_start(node0, "p2p");
//! drop(span);
//!
//! clock.advance_ns(500);
//! let recv = tracer.span(node1, "recv.packet", "pkt 0");
//! tracer.flow_end(node1, flow, "p2p");
//! drop(recv);
//!
//! let json = tracer.chrome_trace_json();
//! ecc_trace::validate_chrome_trace(&json).expect("well-formed trace");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
pub mod json;
mod summary;
mod validate;

pub use validate::{validate_chrome_trace, TraceStats};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use ecc_telemetry::{Clock, ManualClock, Recorder, WallClock};

/// Process id for the engine's orchestration tracks ("driver" process).
///
/// Simulated nodes use their node index as pid; synthetic processes sit
/// far above any realistic node count so the two can never collide.
pub const DRIVER_PID: u64 = 1_000_000;

/// Process id for coding work (serial coder and pool worker tracks).
pub const CODING_PID: u64 = 1_000_001;

/// Identifies one track: a (process, thread) pair in the Chrome trace
/// model. Obtain via [`Tracer::track`]; cheap to copy and share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TrackId {
    pid: u64,
    tid: u64,
}

impl TrackId {
    /// The process ("node") this track belongs to.
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// The track index within its process.
    pub fn tid(&self) -> u64 {
        self.tid
    }
}

/// Identifies a flow (an arrow between two slices on any two tracks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowId(pub(crate) u64);

#[derive(Debug, Clone)]
pub(crate) enum Record {
    Begin { ts: u64, name: String, detail: String },
    End { ts: u64 },
    Instant { ts: u64, name: String, detail: String },
    FlowStart { ts: u64, id: u64, name: String },
    FlowEnd { ts: u64, id: u64, name: String },
}

impl Record {
    pub(crate) fn ts(&self) -> u64 {
        match self {
            Record::Begin { ts, .. }
            | Record::End { ts }
            | Record::Instant { ts, .. }
            | Record::FlowStart { ts, .. }
            | Record::FlowEnd { ts, .. } => *ts,
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct TrackState {
    pub(crate) name: String,
    pub(crate) records: Vec<Record>,
    /// Number of currently-open spans (begin without end).
    pub(crate) open: usize,
}

impl TrackState {
    /// Appends a record, clamping its timestamp so the track stays
    /// monotone even if an imperfect clock steps backwards.
    fn push(&mut self, mut record: Record) {
        if let Some(last) = self.records.last() {
            let floor = last.ts();
            if record.ts() < floor {
                match &mut record {
                    Record::Begin { ts, .. }
                    | Record::End { ts }
                    | Record::Instant { ts, .. }
                    | Record::FlowStart { ts, .. }
                    | Record::FlowEnd { ts, .. } => *ts = floor,
                }
            }
        }
        match &record {
            Record::Begin { .. } => self.open += 1,
            Record::End { .. } => {
                self.open = self.open.saturating_sub(1);
            }
            _ => {}
        }
        self.records.push(record);
    }
}

#[derive(Debug, Default)]
pub(crate) struct ProcessState {
    pub(crate) name: String,
    pub(crate) tracks: BTreeMap<u64, TrackState>,
    by_name: BTreeMap<String, u64>,
    next_tid: u64,
}

#[derive(Debug, Default)]
pub(crate) struct State {
    pub(crate) processes: BTreeMap<u64, ProcessState>,
    next_flow: u64,
}

#[derive(Debug)]
struct Inner {
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
}

/// The tracing hub: a cheaply cloneable handle to a shared timeline.
///
/// All clones observe (and append to) the same set of processes, tracks
/// and events. Emission on one track must come from one logical thread
/// at a time (each pool worker gets its own track); tracks themselves
/// may be appended to concurrently.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A tracer on wall-clock time (epoch = creation instant).
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// A tracer reading time from the given clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self { inner: Arc::new(Inner { clock, state: Mutex::new(State::default()) }) }
    }

    /// A tracer sharing the recorder's clock, so span timestamps and the
    /// recorder's event log use one epoch and can be cross-referenced.
    pub fn for_recorder(recorder: &Recorder) -> Self {
        Self::with_clock(recorder.clock())
    }

    /// A tracer plus the [`ManualClock`] that drives it.
    pub fn with_manual_clock() -> (Self, ManualClock) {
        let clock = ManualClock::new();
        (Self::with_clock(Arc::new(clock.clone())), clock)
    }

    /// The current clock reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().expect("tracer state poisoned")
    }

    /// Looks up (registering on first use) the track `track_name` in
    /// process `pid`. The first registration fixes the process's display
    /// name; track ids are assigned in registration order, so register
    /// tracks from one thread (before fanning out) for deterministic
    /// output.
    pub fn track(&self, pid: u64, process_name: &str, track_name: &str) -> TrackId {
        let mut state = self.state();
        let process = state.processes.entry(pid).or_default();
        if process.name.is_empty() {
            process.name = process_name.to_string();
        }
        if let Some(&tid) = process.by_name.get(track_name) {
            return TrackId { pid, tid };
        }
        let tid = process.next_tid;
        process.next_tid += 1;
        process.by_name.insert(track_name.to_string(), tid);
        process
            .tracks
            .insert(tid, TrackState { name: track_name.to_string(), ..Default::default() });
        TrackId { pid, tid }
    }

    fn with_track<R>(&self, track: TrackId, f: impl FnOnce(&mut State, TrackId) -> R) -> R {
        let mut state = self.state();
        debug_assert!(
            state.processes.get(&track.pid).is_some_and(|p| p.tracks.contains_key(&track.tid)),
            "track must be registered via Tracer::track"
        );
        f(&mut state, track)
    }

    fn push(&self, track: TrackId, record: Record) {
        self.with_track(track, |state, track| {
            state
                .processes
                .get_mut(&track.pid)
                .and_then(|p| p.tracks.get_mut(&track.tid))
                .expect("registered track")
                .push(record);
        });
    }

    /// Opens a span at an explicit timestamp (nanoseconds on the
    /// tracer's epoch). Pair with [`Tracer::end_at`]. Use for simulated
    /// timelines where instants come from the model, not the clock.
    pub fn begin_at(&self, track: TrackId, name: &str, detail: impl Into<String>, ts_ns: u64) {
        self.push(
            track,
            Record::Begin { ts: ts_ns, name: name.to_string(), detail: detail.into() },
        );
    }

    /// Closes the innermost open span on `track` at an explicit
    /// timestamp.
    pub fn end_at(&self, track: TrackId, ts_ns: u64) {
        self.push(track, Record::End { ts: ts_ns });
    }

    /// Records a point instant at an explicit timestamp.
    pub fn instant_at(&self, track: TrackId, name: &str, detail: impl Into<String>, ts_ns: u64) {
        self.push(
            track,
            Record::Instant { ts: ts_ns, name: name.to_string(), detail: detail.into() },
        );
    }

    /// Starts a flow (arrow) out of the slice enclosing `ts_ns` on
    /// `track`, at an explicit timestamp.
    pub fn flow_start_at(&self, track: TrackId, name: &str, ts_ns: u64) -> FlowId {
        let mut state = self.state();
        let id = state.next_flow;
        state.next_flow += 1;
        state
            .processes
            .get_mut(&track.pid)
            .and_then(|p| p.tracks.get_mut(&track.tid))
            .expect("registered track")
            .push(Record::FlowStart { ts: ts_ns, id, name: name.to_string() });
        FlowId(id)
    }

    /// Terminates a flow into the slice enclosing `ts_ns` on `track`, at
    /// an explicit timestamp. `name` should match the start's name.
    pub fn flow_end_at(&self, track: TrackId, flow: FlowId, name: &str, ts_ns: u64) {
        self.push(track, Record::FlowEnd { ts: ts_ns, id: flow.0, name: name.to_string() });
    }

    /// Records a point instant stamped with the current clock reading.
    pub fn instant(&self, track: TrackId, name: &str, detail: impl Into<String>) {
        self.instant_at(track, name, detail, self.now_ns());
    }

    /// Starts a flow out of the currently open slice, stamped now.
    pub fn flow_start(&self, track: TrackId, name: &str) -> FlowId {
        self.flow_start_at(track, name, self.now_ns())
    }

    /// Terminates a flow into the currently open slice, stamped now.
    pub fn flow_end(&self, track: TrackId, flow: FlowId, name: &str) {
        self.flow_end_at(track, flow, name, self.now_ns());
    }

    /// Opens a scoped span stamped with the current clock reading; the
    /// returned guard closes it (with a fresh clock reading) on drop.
    pub fn span(&self, track: TrackId, name: &str, detail: impl Into<String>) -> Span {
        self.begin_at(track, name, detail, self.now_ns());
        Span { tracer: self.clone(), track, ended: false }
    }

    /// Number of events recorded so far (spans count begin and end).
    pub fn len(&self) -> usize {
        let state = self.state();
        state.processes.values().flat_map(|p| p.tracks.values()).map(|t| t.records.len()).sum()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn snapshot_state<R>(&self, f: impl FnOnce(&State) -> R) -> R {
        f(&self.state())
    }
}

/// A scoped span handle; closes its span on drop (or explicitly via
/// [`Span::end`]). Owns a tracer clone, so it may move into closures and
/// across threads — but must end on the thread that owns its track.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    track: TrackId,
    ended: bool,
}

impl Span {
    /// Closes the span now, stamping the end with the current clock.
    pub fn end(mut self) {
        self.close();
    }

    /// The track this span lives on.
    pub fn track(&self) -> TrackId {
        self.track
    }

    /// Starts a flow out of this span, stamped now.
    pub fn flow_start(&self, name: &str) -> FlowId {
        self.tracer.flow_start(self.track, name)
    }

    fn close(&mut self) {
        if !self.ended {
            self.ended = true;
            self.tracer.end_at(self.track, self.tracer.now_ns());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_register_idempotently_in_order() {
        let (tracer, _clock) = Tracer::with_manual_clock();
        let a = tracer.track(3, "node3", "encode");
        let b = tracer.track(3, "node3", "xfer");
        let a2 = tracer.track(3, "ignored-second-name", "encode");
        assert_eq!(a, a2);
        assert_eq!(a.pid(), 3);
        assert_eq!(a.tid(), 0);
        assert_eq!(b.tid(), 1);
    }

    #[test]
    fn span_guard_brackets_clock_readings() {
        let (tracer, clock) = Tracer::with_manual_clock();
        let tk = tracer.track(0, "node0", "main");
        {
            let _s = tracer.span(tk, "work", "");
            clock.advance_ns(500);
        }
        tracer.snapshot_state(|state| {
            let records = &state.processes[&0].tracks[&0].records;
            assert_eq!(records.len(), 2);
            assert!(matches!(records[0], Record::Begin { ts: 0, .. }));
            assert!(matches!(records[1], Record::End { ts: 500 }));
        });
    }

    #[test]
    fn explicit_end_matches_drop() {
        let (tracer, clock) = Tracer::with_manual_clock();
        let tk = tracer.track(0, "node0", "main");
        let s = tracer.span(tk, "work", "");
        clock.advance_ns(7);
        s.end();
        tracer.snapshot_state(|state| {
            assert_eq!(state.processes[&0].tracks[&0].records.len(), 2);
            assert_eq!(state.processes[&0].tracks[&0].open, 0);
        });
    }

    #[test]
    fn backwards_timestamps_are_clamped_monotone() {
        let (tracer, _clock) = Tracer::with_manual_clock();
        let tk = tracer.track(0, "node0", "main");
        tracer.instant_at(tk, "late", "", 100);
        tracer.instant_at(tk, "early", "", 50);
        tracer.snapshot_state(|state| {
            let records = &state.processes[&0].tracks[&0].records;
            assert_eq!(records[1].ts(), 100, "clamped to the track's last timestamp");
        });
    }

    #[test]
    fn flow_ids_are_unique_and_sequential() {
        let (tracer, _clock) = Tracer::with_manual_clock();
        let a = tracer.track(0, "node0", "send");
        let b = tracer.track(1, "node1", "recv");
        let f1 = tracer.flow_start_at(a, "p2p", 10);
        let f2 = tracer.flow_start_at(a, "p2p", 20);
        assert_ne!(f1, f2);
        tracer.flow_end_at(b, f1, "p2p", 30);
        tracer.flow_end_at(b, f2, "p2p", 40);
        assert_eq!(tracer.len(), 4);
    }

    #[test]
    fn clones_share_the_timeline() {
        let (tracer, _clock) = Tracer::with_manual_clock();
        let tk = tracer.track(0, "node0", "main");
        tracer.clone().instant(tk, "from-clone", "");
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn concurrent_tracks_keep_per_track_order() {
        let tracer = Tracer::new();
        let tracks: Vec<TrackId> =
            (0..4).map(|i| tracer.track(CODING_PID, "coding", &format!("worker{i}"))).collect();
        std::thread::scope(|s| {
            for &tk in &tracks {
                let tracer = tracer.clone();
                s.spawn(move || {
                    for i in 0..10 {
                        let _span = tracer.span(tk, "stripe", format!("{i}"));
                    }
                });
            }
        });
        tracer.snapshot_state(|state| {
            for track in state.processes[&CODING_PID].tracks.values() {
                assert_eq!(track.records.len(), 20);
                assert_eq!(track.open, 0);
                // Timestamps never regress within a track.
                let ts: Vec<u64> = track.records.iter().map(Record::ts).collect();
                assert!(ts.windows(2).all(|w| w[0] <= w[1]));
            }
        });
    }
}
