//! A minimal dependency-free JSON parser.
//!
//! Exists so the trace validator can check exported documents by
//! actually parsing them (rather than substring matching) without
//! pulling in serde. Supports the full JSON grammar with the usual
//! in-memory value tree; numbers are kept as `f64` plus the raw lexeme
//! so integer timestamps survive exactly.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; the raw lexeme is preserved alongside the parsed
    /// value.
    Num(f64, String),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys keep insertion order is *not* required by the
    /// validator, so a sorted map is fine.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n, _) => Some(*n),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message (with byte offset) on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{text}'"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match lexeme.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n, lexeme.to_string())),
            _ => self.err("malformed number"),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(parse("-12e2").unwrap().as_f64(), Some(-1200.0));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"x\ny"},[]],"c":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(arr[2], Json::Arr(vec![]));
        assert_eq!(v.get("c").unwrap(), &Json::Obj(BTreeMap::new()));
    }

    #[test]
    fn unescapes_unicode() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "nul", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn number_lexeme_is_preserved() {
        match parse("1234.567").unwrap() {
            Json::Num(n, raw) => {
                assert_eq!(n, 1234.567);
                assert_eq!(raw, "1234.567");
            }
            other => panic!("expected number, got {other:?}"),
        }
    }
}
