//! Text critical-path summary.
//!
//! Answers "where did the end-to-end latency go?" without opening
//! Perfetto: given a root span name (e.g. `ecc.save`), find its most
//! recent completed occurrence, attribute the window to the root's
//! direct child spans (plus unattributed self time), and report how busy
//! every other track was inside that window. All aggregation is over
//! recorded integer timestamps, so the rendering is deterministic.

use std::collections::BTreeMap;

use ecc_telemetry::fmt_ns;

use crate::{Record, Tracer};

/// One completed span, flattened out of a track's begin/end stream.
struct FlatSpan {
    name: String,
    start: u64,
    end: u64,
    /// Index of the enclosing span within the same track's list.
    parent: Option<usize>,
}

/// Replays a track's records into completed spans (open spans are
/// dropped — they have no duration to attribute).
fn flatten(records: &[Record]) -> Vec<FlatSpan> {
    let mut spans: Vec<FlatSpan> = Vec::new();
    // Stack of indices into `spans` for currently-open entries.
    let mut stack: Vec<usize> = Vec::new();
    for record in records {
        match record {
            Record::Begin { ts, name, .. } => {
                spans.push(FlatSpan {
                    name: name.clone(),
                    start: *ts,
                    end: *ts,
                    parent: stack.last().copied(),
                });
                stack.push(spans.len() - 1);
            }
            Record::End { ts } => {
                if let Some(i) = stack.pop() {
                    spans[i].end = *ts;
                }
            }
            _ => {}
        }
    }
    // Unclosed spans keep end == start; drop them and anything nested
    // under them by filtering zero-length roots is wrong (legitimate
    // zero-length spans exist under a manual clock), so instead mark
    // closure explicitly: a span is complete iff it's not on the stack.
    for &i in &stack {
        spans[i].end = spans[i].start; // normalize; excluded below
    }
    let open: Vec<usize> = stack;
    spans.into_iter().enumerate().filter(|(i, _)| !open.contains(i)).map(|(_, s)| s).collect()
}

/// Sums the union of `[start, end)` intervals clipped to a window.
fn merged_busy_ns(mut intervals: Vec<(u64, u64)>, window: (u64, u64)) -> u64 {
    intervals.retain(|&(s, e)| e > window.0 && s < window.1);
    for iv in &mut intervals {
        iv.0 = iv.0.max(window.0);
        iv.1 = iv.1.min(window.1);
    }
    intervals.sort_unstable();
    let mut busy = 0;
    let mut cursor = window.0;
    for (s, e) in intervals {
        let s = s.max(cursor);
        if e > s {
            busy += e - s;
            cursor = e;
        }
    }
    busy
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 * 100.0 / total as f64
    }
}

impl Tracer {
    /// Renders a text summary attributing the latest completed `root`
    /// span's latency to its direct children (on the same track) and to
    /// per-name busy time on every other track within the root's window.
    ///
    /// Returns a short note instead when no completed span named `root`
    /// exists.
    pub fn critical_path_summary(&self, root: &str) -> String {
        self.snapshot_state(|state| {
            // Flatten every track once, keyed (pid, tid) for determinism.
            let mut flat: BTreeMap<(u64, u64), Vec<FlatSpan>> = BTreeMap::new();
            let mut labels: BTreeMap<(u64, u64), String> = BTreeMap::new();
            for (&pid, process) in &state.processes {
                for (&tid, track) in &process.tracks {
                    labels.insert((pid, tid), format!("{}/{}", process.name, track.name));
                    flat.insert((pid, tid), flatten(&track.records));
                }
            }

            // The root occurrence: latest start wins; BTreeMap iteration
            // breaks start-time ties deterministically.
            let mut root_at: Option<((u64, u64), usize)> = None;
            for (&key, spans) in &flat {
                for (i, span) in spans.iter().enumerate() {
                    if span.name == root
                        && root_at.map(|(k, j)| span.start > flat[&k][j].start).unwrap_or(true)
                    {
                        root_at = Some((key, i));
                    }
                }
            }
            let Some((root_key, root_idx)) = root_at else {
                return format!("critical path: no completed span named {root:?} recorded\n");
            };
            let root_span = &flat[&root_key][root_idx];
            let (start, end) = (root_span.start, root_span.end);
            let total = end - start;

            let mut out = String::new();
            out.push_str(&format!(
                "== critical path: {root} ==\ntrack  {}\nwindow {} .. {}  (total {})\n",
                labels[&root_key],
                fmt_ns(start as f64),
                fmt_ns(end as f64),
                fmt_ns(total as f64),
            ));

            // Direct children on the root's own track, aggregated by name
            // in first-appearance order. Siblings under one parent are
            // sequential (the begin/end stream nests), so sums are exact.
            let mut stage_order: Vec<String> = Vec::new();
            let mut stage_ns: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // name -> (ns, count)
            let mut attributed = 0;
            for span in &flat[&root_key] {
                if span.parent == Some(root_idx) {
                    let d = span.end - span.start;
                    attributed += d;
                    let entry = stage_ns.entry(span.name.clone()).or_insert_with(|| {
                        stage_order.push(span.name.clone());
                        (0, 0)
                    });
                    entry.0 += d;
                    entry.1 += 1;
                }
            }
            out.push_str("stages (direct children):\n");
            if stage_order.is_empty() {
                out.push_str("  (none)\n");
            }
            for name in &stage_order {
                let (ns, count) = stage_ns[name];
                out.push_str(&format!(
                    "  {name:<32} {:>12}  {:>5.1}%  (n={count})\n",
                    fmt_ns(ns as f64),
                    pct(ns, total),
                ));
            }
            let self_ns = total.saturating_sub(attributed);
            out.push_str(&format!(
                "  {:<32} {:>12}  {:>5.1}%\n",
                "(self)",
                fmt_ns(self_ns as f64),
                pct(self_ns, total),
            ));

            // Concurrent activity: per-name merged busy time on every
            // other track, clipped to the root window.
            let mut other_lines: Vec<String> = Vec::new();
            for (&key, spans) in &flat {
                if key == root_key {
                    continue;
                }
                let mut by_name: BTreeMap<&str, Vec<(u64, u64)>> = BTreeMap::new();
                for span in spans {
                    // Top-level spans only: nested children would double
                    // count their parents' time.
                    if span.parent.is_none() {
                        by_name.entry(&span.name).or_default().push((span.start, span.end));
                    }
                }
                let mut rows: Vec<(u64, &str)> = by_name
                    .into_iter()
                    .map(|(name, ivs)| (merged_busy_ns(ivs, (start, end)), name))
                    .filter(|&(busy, _)| busy > 0)
                    .collect();
                rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));
                for (busy, name) in rows {
                    other_lines.push(format!(
                        "  {:<24} {name:<24} {:>12}  {:>5.1}%\n",
                        labels[&key],
                        fmt_ns(busy as f64),
                        pct(busy, total),
                    ));
                }
            }
            if !other_lines.is_empty() {
                out.push_str("concurrent tracks (busy inside window):\n");
                for line in other_lines {
                    out.push_str(&line);
                }
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn merged_busy_unions_and_clips() {
        assert_eq!(merged_busy_ns(vec![(0, 10), (5, 15)], (0, 20)), 15);
        assert_eq!(merged_busy_ns(vec![(0, 10), (10, 20)], (5, 15)), 10);
        assert_eq!(merged_busy_ns(vec![(30, 40)], (0, 20)), 0);
        assert_eq!(merged_busy_ns(vec![], (0, 20)), 0);
    }

    #[test]
    fn attributes_children_and_self_time() {
        let (tracer, _clock) = Tracer::with_manual_clock();
        let tk = tracer.track(0, "driver", "save");
        tracer.begin_at(tk, "ecc.save", "", 0);
        tracer.begin_at(tk, "encode", "", 10);
        tracer.end_at(tk, 60);
        tracer.begin_at(tk, "place", "", 60);
        tracer.end_at(tk, 90);
        tracer.end_at(tk, 100);

        let text = tracer.critical_path_summary("ecc.save");
        assert!(text.contains("== critical path: ecc.save =="), "{text}");
        assert!(text.contains("driver/save"), "{text}");
        // encode: 50ns of 100ns = 50%, place 30%, self 20%.
        assert!(text.contains("encode"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("30.0%"), "{text}");
        assert!(text.contains("(self)"), "{text}");
        assert!(text.contains("20.0%"), "{text}");
    }

    #[test]
    fn reports_concurrent_track_busy_time() {
        let (tracer, _clock) = Tracer::with_manual_clock();
        let driver = tracer.track(0, "driver", "save");
        let worker = tracer.track(1, "node1", "encode");
        tracer.begin_at(driver, "ecc.save", "", 0);
        tracer.end_at(driver, 100);
        // Two overlapping occurrences merge: union is [20, 70) = 50ns.
        tracer.begin_at(worker, "stripe", "", 20);
        tracer.end_at(worker, 60);
        tracer.begin_at(worker, "stripe", "", 40);
        tracer.end_at(worker, 70);
        // Outside the window: ignored.
        tracer.begin_at(worker, "stripe", "", 200);
        tracer.end_at(worker, 250);

        let text = tracer.critical_path_summary("ecc.save");
        assert!(text.contains("node1/encode"), "{text}");
        assert!(text.contains("stripe"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
    }

    #[test]
    fn latest_root_occurrence_wins() {
        let (tracer, _clock) = Tracer::with_manual_clock();
        let tk = tracer.track(0, "driver", "save");
        tracer.begin_at(tk, "ecc.save", "", 0);
        tracer.end_at(tk, 10);
        tracer.begin_at(tk, "ecc.save", "", 100);
        tracer.begin_at(tk, "late-child", "", 100);
        tracer.end_at(tk, 140);
        tracer.end_at(tk, 140);
        let text = tracer.critical_path_summary("ecc.save");
        assert!(text.contains("late-child"), "{text}");
        assert!(text.contains("total 40ns"), "{text}");
    }

    #[test]
    fn missing_root_yields_a_note_not_a_panic() {
        let tracer = Tracer::new();
        let text = tracer.critical_path_summary("nope");
        assert!(text.contains("no completed span named \"nope\""), "{text}");
    }

    #[test]
    fn open_spans_are_excluded() {
        let (tracer, _clock) = Tracer::with_manual_clock();
        let tk = tracer.track(0, "driver", "save");
        tracer.begin_at(tk, "ecc.save", "", 0); // never closed
        let text = tracer.critical_path_summary("ecc.save");
        assert!(text.contains("no completed span"), "{text}");
    }
}
