//! Chrome Trace Event JSON export.
//!
//! Emits the classic `{"traceEvents":[...]}` document that Perfetto
//! (and `chrome://tracing`) loads: metadata events naming processes and
//! tracks, `B`/`E` duration pairs for spans, `i` instants, and `s`/`f`
//! flow pairs that render as arrows between slices. The writer is
//! hand-rolled (like `ecc-telemetry`'s snapshot JSON) so identical
//! timelines serialize byte-identically: processes ascend by pid, tracks
//! by tid, and each track's events keep their recorded order.

use crate::{Record, Tracer};

/// Formats a nanosecond instant as the microsecond `ts` value the Chrome
/// trace format expects, with exact (3-decimal) precision.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_event(out: &mut String, first: &mut bool, body: impl FnOnce(&mut String)) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('{');
    body(out);
    out.push('}');
}

impl Tracer {
    /// Serializes the whole timeline as a Chrome Trace Event JSON
    /// document (Perfetto-loadable). Deterministic: identical timelines
    /// produce byte-identical documents.
    pub fn chrome_trace_json(&self) -> String {
        self.snapshot_state(|state| {
            let mut out = String::with_capacity(4096);
            out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
            let mut first = true;

            // Metadata: process and track names, with sort indices that
            // pin the UI ordering to ours.
            for (&pid, process) in &state.processes {
                push_event(&mut out, &mut first, |o| {
                    o.push_str(&format!("\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":"));
                    push_json_string(o, &process.name);
                    o.push('}');
                });
                push_event(&mut out, &mut first, |o| {
                    o.push_str(&format!(
                        "\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_sort_index\",\"args\":{{\"sort_index\":{pid}}}"
                    ));
                });
                for (&tid, track) in &process.tracks {
                    push_event(&mut out, &mut first, |o| {
                        o.push_str(&format!(
                            "\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":"
                        ));
                        push_json_string(o, &track.name);
                        o.push('}');
                    });
                    push_event(&mut out, &mut first, |o| {
                        o.push_str(&format!(
                            "\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{tid}}}"
                        ));
                    });
                }
            }

            // Events, per process then per track, in recorded order.
            for (&pid, process) in &state.processes {
                for (&tid, track) in &process.tracks {
                    for record in &track.records {
                        push_event(&mut out, &mut first, |o| {
                            let ts = ts_us(record.ts());
                            match record {
                                Record::Begin { name, detail, .. } => {
                                    o.push_str(&format!(
                                        "\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"cat\":\"ecc\",\"name\":"
                                    ));
                                    push_json_string(o, name);
                                    if !detail.is_empty() {
                                        o.push_str(",\"args\":{\"detail\":");
                                        push_json_string(o, detail);
                                        o.push('}');
                                    }
                                }
                                Record::End { .. } => {
                                    o.push_str(&format!(
                                        "\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}"
                                    ));
                                }
                                Record::Instant { name, detail, .. } => {
                                    o.push_str(&format!(
                                        "\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"name\":"
                                    ));
                                    push_json_string(o, name);
                                    if !detail.is_empty() {
                                        o.push_str(",\"args\":{\"detail\":");
                                        push_json_string(o, detail);
                                        o.push('}');
                                    }
                                }
                                Record::FlowStart { id, name, .. } => {
                                    o.push_str(&format!(
                                        "\"ph\":\"s\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"cat\":\"flow\",\"id\":{id},\"name\":"
                                    ));
                                    push_json_string(o, name);
                                }
                                Record::FlowEnd { id, name, .. } => {
                                    o.push_str(&format!(
                                        "\"ph\":\"f\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"cat\":\"flow\",\"id\":{id},\"bp\":\"e\",\"name\":"
                                    ));
                                    push_json_string(o, name);
                                }
                            }
                        });
                    }
                }
            }
            out.push_str("]}");
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ts_formats_exact_microseconds() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1), "0.001");
        assert_eq!(ts_us(1_000), "1.000");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn export_is_deterministic_and_ordered() {
        let build = || {
            let (tracer, clock) = Tracer::with_manual_clock();
            let a = tracer.track(1, "node1", "encode");
            let b = tracer.track(0, "node0", "recv");
            let span = tracer.span(a, "encode.packet", "pkt 0");
            clock.advance_ns(1_500);
            let flow = tracer.flow_start(a, "p2p");
            drop(span);
            clock.advance_ns(300);
            let recv = tracer.span(b, "recv.packet", "pkt 0");
            tracer.flow_end(b, flow, "p2p");
            drop(recv);
            tracer.chrome_trace_json()
        };
        let json = build();
        assert_eq!(json, build(), "identical manual-clock runs must export identically");
        // Processes are emitted ascending by pid even though pid 1
        // registered first.
        let p0 = json.find("\"name\":\"node0\"").expect("node0 metadata");
        let p1 = json.find("\"name\":\"node1\"").expect("node1 metadata");
        assert!(p0 < p1);
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"bp\":\"e\""));
        assert!(json.contains("\"ts\":1.500"));
    }

    #[test]
    fn detail_strings_are_escaped() {
        let (tracer, _clock) = Tracer::with_manual_clock();
        let tk = tracer.track(0, "node0", "main");
        tracer.instant(tk, "note", "say \"hi\"\n");
        let json = tracer.chrome_trace_json();
        assert!(json.contains("say \\\"hi\\\"\\n"));
    }
}
