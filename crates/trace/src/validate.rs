//! Structural validator for exported Chrome Trace Event documents.
//!
//! Guards the exporter (and any hand-edited trace) against the mistakes
//! that make Perfetto silently drop events: missing required keys,
//! timestamps running backwards within a track, unmatched `B`/`E`
//! pairs, and flow `f` events with no matching `s`. Built on the local
//! [`crate::json`] parser so the check is a real parse, not substring
//! matching.

use std::collections::BTreeMap;

use crate::json::{parse, Json};

/// Aggregate facts about a validated trace, for assertions in tests and
/// reporting in tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total entries in `traceEvents` (including metadata).
    pub events: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Matched `s`→`f` flow pairs.
    pub flows: usize,
    /// Distinct processes (pids) that emitted timeline events.
    pub processes: usize,
    /// Distinct `(pid, tid)` tracks that emitted timeline events.
    pub tracks: usize,
}

fn get_u64(event: &Json, key: &str) -> Option<u64> {
    let n = event.get(key)?.as_f64()?;
    if n < 0.0 || n.fract() != 0.0 {
        return None;
    }
    Some(n as u64)
}

/// Timestamps arrive as decimal microseconds; convert to integer
/// nanoseconds for exact comparisons (the exporter emits exactly three
/// decimals, so this is lossless for its output).
fn ts_to_ns(event: &Json) -> Option<u64> {
    let ts = event.get("ts")?.as_f64()?;
    if ts < 0.0 {
        return None;
    }
    Some((ts * 1_000.0).round() as u64)
}

/// Validates a Chrome Trace Event JSON document.
///
/// Checks, in order:
/// 1. the document parses and has a `traceEvents` array;
/// 2. every event is an object with a one-character `ph` and the keys
///    that phase requires (`pid`/`tid`/`ts`/`name` as applicable);
/// 3. per `(pid, tid)` track, timestamps never decrease;
/// 4. per track, `B`/`E` events nest: every `E` closes an open `B` and
///    no `B` is left open at the end;
/// 5. flow `s`/`f` events pair one-to-one by `id` with `f.ts ≥ s.ts`
///    (document order is irrelevant — the exporter groups events by
///    process, so a finish can legitimately precede its start in the
///    stream), and no flow is left half-open.
///
/// # Errors
///
/// Returns a message naming the first offending event index and what
/// was wrong with it.
pub fn validate_chrome_trace(document: &str) -> Result<TraceStats, String> {
    let root = parse(document).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .ok_or("missing \"traceEvents\" key")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;

    let mut stats = TraceStats { events: events.len(), ..TraceStats::default() };
    // Per-track running state: last timestamp and open-B stack depth.
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut open: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    // Flows are matched after the scan: document order is grouped by
    // process, so an `f` may appear before its `s`.
    let mut flow_starts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut flow_finishes: Vec<(usize, u64, u64)> = Vec::new(); // (event, id, ts)
    let mut pids: BTreeMap<u64, ()> = BTreeMap::new();

    for (i, event) in events.iter().enumerate() {
        let fail = |what: &str| Err(format!("event {i}: {what}"));
        if !matches!(event, Json::Obj(_)) {
            return fail("not an object");
        }
        let ph = match event.get("ph").and_then(Json::as_str) {
            Some(ph) => ph,
            None => return fail("missing \"ph\""),
        };
        if ph == "M" {
            // Metadata names a process or track; needs pid + name.
            if get_u64(event, "pid").is_none() {
                return fail("metadata event missing integer \"pid\"");
            }
            if event.get("name").and_then(Json::as_str).is_none() {
                return fail("metadata event missing \"name\"");
            }
            continue;
        }

        // All timeline phases need pid, tid and a non-negative ts.
        let pid = match get_u64(event, "pid") {
            Some(pid) => pid,
            None => return fail("missing integer \"pid\""),
        };
        let tid = match get_u64(event, "tid") {
            Some(tid) => tid,
            None => return fail("missing integer \"tid\""),
        };
        let ts = match ts_to_ns(event) {
            Some(ts) => ts,
            None => return fail("missing or negative \"ts\""),
        };
        let track = (pid, tid);
        if let Some(&prev) = last_ts.get(&track) {
            if ts < prev {
                return fail(&format!(
                    "timestamp runs backwards on track (pid {pid}, tid {tid}): {ts}ns after {prev}ns"
                ));
            }
        }
        last_ts.insert(track, ts);
        pids.insert(pid, ());

        let has_name = event.get("name").and_then(Json::as_str).is_some();
        match ph {
            "B" => {
                if !has_name {
                    return fail("\"B\" event missing \"name\"");
                }
                *open.entry(track).or_insert(0) += 1;
            }
            "E" => {
                let depth = open.entry(track).or_insert(0);
                if *depth == 0 {
                    return fail(&format!(
                        "\"E\" with no open \"B\" on track (pid {pid}, tid {tid})"
                    ));
                }
                *depth -= 1;
                stats.spans += 1;
            }
            "i" => {
                if !has_name {
                    return fail("\"i\" event missing \"name\"");
                }
                stats.instants += 1;
            }
            "s" => {
                let id = match get_u64(event, "id") {
                    Some(id) => id,
                    None => return fail("flow \"s\" missing integer \"id\""),
                };
                if flow_starts.insert(id, ts).is_some() {
                    return fail(&format!("flow id {id} started twice"));
                }
            }
            "f" => {
                let id = match get_u64(event, "id") {
                    Some(id) => id,
                    None => return fail("flow \"f\" missing integer \"id\""),
                };
                flow_finishes.push((i, id, ts));
            }
            other => return fail(&format!("unsupported phase {other:?}")),
        }
    }

    for (&(pid, tid), &depth) in &open {
        if depth > 0 {
            return Err(format!(
                "track (pid {pid}, tid {tid}) ends with {depth} unclosed \"B\" event(s)"
            ));
        }
    }
    for (i, id, ts) in flow_finishes {
        match flow_starts.remove(&id) {
            None => {
                return Err(format!("event {i}: flow \"f\" with id {id} has no matching \"s\""))
            }
            Some(start_ts) if ts < start_ts => {
                return Err(format!(
                    "event {i}: flow id {id} finishes at {ts}ns before it starts at {start_ts}ns"
                ))
            }
            Some(_) => stats.flows += 1,
        }
    }
    if let Some((&id, _)) = flow_starts.iter().next() {
        return Err(format!("flow id {id} started but never finished"));
    }

    stats.processes = pids.len();
    stats.tracks = last_ts.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn wrap(events: &str) -> String {
        format!("{{\"traceEvents\":[{events}]}}")
    }

    #[test]
    fn accepts_a_real_export() {
        let (tracer, clock) = Tracer::with_manual_clock();
        let a = tracer.track(0, "node0", "encode");
        let b = tracer.track(1, "node1", "recv");
        let span = tracer.span(a, "encode", "");
        clock.advance_ns(10);
        let flow = tracer.flow_start(a, "p2p");
        drop(span);
        clock.advance_ns(5);
        let recv = tracer.span(b, "recv", "");
        tracer.flow_end(b, flow, "p2p");
        tracer.instant(b, "done", "");
        drop(recv);

        let stats = validate_chrome_trace(&tracer.chrome_trace_json()).expect("valid");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.flows, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.processes, 2);
        assert_eq!(stats.tracks, 2);
    }

    #[test]
    fn rejects_structural_problems() {
        let cases: &[(&str, &str)] = &[
            ("{\"traceEvents\":{}}", "not an array"),
            ("{}", "missing \"traceEvents\""),
            ("not json", "not valid JSON"),
            (&wrap(r#"{"pid":0,"tid":0,"ts":1}"#), "missing \"ph\""),
            (&wrap(r#"{"ph":"B","tid":0,"ts":1,"name":"x"}"#), "missing integer \"pid\""),
            (&wrap(r#"{"ph":"B","pid":0,"tid":0,"ts":1}"#), "missing \"name\""),
            (&wrap(r#"{"ph":"E","pid":0,"tid":0,"ts":1}"#), "no open \"B\""),
            (
                &wrap(
                    r#"{"ph":"B","pid":0,"tid":0,"ts":5,"name":"x"},
                       {"ph":"E","pid":0,"tid":0,"ts":2}"#,
                ),
                "runs backwards",
            ),
            (&wrap(r#"{"ph":"B","pid":0,"tid":0,"ts":1,"name":"x"}"#), "unclosed \"B\""),
            (
                &wrap(r#"{"ph":"f","pid":0,"tid":0,"ts":1,"id":7,"name":"p2p"}"#),
                "no matching \"s\"",
            ),
            (&wrap(r#"{"ph":"s","pid":0,"tid":0,"ts":1,"id":7,"name":"p2p"}"#), "never finished"),
            (&wrap(r#"{"ph":"Z","pid":0,"tid":0,"ts":1}"#), "unsupported phase"),
        ];
        for (doc, needle) in cases {
            let err = validate_chrome_trace(doc).expect_err("should be rejected");
            assert!(err.contains(needle), "error {err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn flow_finish_may_precede_start_in_document_order() {
        // The exporter groups events by process; a driver (huge pid) can
        // start a flow that finishes on a node (small pid) earlier in the
        // document. Only timestamps must be ordered.
        let doc = wrap(
            r#"{"ph":"B","pid":0,"tid":0,"ts":5,"name":"recv"},
               {"ph":"f","pid":0,"tid":0,"ts":5,"id":1,"bp":"e","name":"p2p"},
               {"ph":"E","pid":0,"tid":0,"ts":6},
               {"ph":"B","pid":9,"tid":0,"ts":1,"name":"send"},
               {"ph":"s","pid":9,"tid":0,"ts":2,"id":1,"name":"p2p"},
               {"ph":"E","pid":9,"tid":0,"ts":3}"#,
        );
        assert_eq!(validate_chrome_trace(&doc).expect("valid").flows, 1);
    }

    #[test]
    fn cross_track_flow_may_finish_later() {
        let doc = wrap(
            r#"{"ph":"B","pid":0,"tid":0,"ts":1,"name":"send"},
               {"ph":"s","pid":0,"tid":0,"ts":2,"id":1,"name":"p2p"},
               {"ph":"E","pid":0,"tid":0,"ts":3},
               {"ph":"B","pid":1,"tid":0,"ts":4,"name":"recv"},
               {"ph":"f","pid":1,"tid":0,"ts":4,"id":1,"bp":"e","name":"p2p"},
               {"ph":"E","pid":1,"tid":0,"ts":5}"#,
        );
        let stats = validate_chrome_trace(&doc).expect("valid");
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.flows, 1);
        assert_eq!(stats.tracks, 2);
    }
}
