//! The authoritative node registry.
//!
//! One entry per cluster *slot* (a logical rack position; the engine's
//! `NodeId` space), tracking which process *incarnation* currently
//! holds the slot and where it is in the membership lifecycle. The
//! shape follows the placement-center idiom (a keyed registry of node
//! records owned by one controller) rather than gossip: ECCheck's
//! clusters are small and the save path already produces the
//! heartbeats, so a single authority is simpler and sufficient.

use std::collections::BTreeMap;

use ecc_cluster::NodeId;

use crate::MembershipError;

/// Lifecycle state of a slot's current incarnation.
///
/// ```text
///            retire()           admit()          activate()
///   Active ----------> Leaving --------> Joining ----------> Active
///      |                  |                 ^
///      | mark_dead()      | mark_dead()    | admit()
///      +------------> Dead +---------------+
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Serving: holds its chunk, counts toward the fault budget.
    Active,
    /// Graceful drain announced; bytes still readable, replacement
    /// pending. Its chunk migrates by [`crate::Move::Copy`].
    Leaving,
    /// Crashed or written off by the health registry; its in-memory
    /// chunk is lost and must be rebuilt ([`crate::Move::Rebuild`]).
    Dead,
    /// A fresh (empty) replacement process holds the slot but has not
    /// yet been handed its chunk; activated by a verified rebalance.
    Joining,
}

impl MemberState {
    /// Stable lowercase label (used in metrics, events, and errors).
    pub fn as_str(self) -> &'static str {
        match self {
            MemberState::Active => "active",
            MemberState::Leaving => "leaving",
            MemberState::Dead => "dead",
            MemberState::Joining => "joining",
        }
    }
}

/// One slot's registry record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInfo {
    /// How many processes have held this slot (0 = the original).
    /// Bumped by [`MembershipTable::admit`]; a chunk stored under an
    /// older incarnation is *not* trusted to exist.
    pub incarnation: u64,
    /// Lifecycle state.
    pub state: MemberState,
}

/// The authoritative slot registry. See the module docs.
#[derive(Debug, Clone)]
pub struct MembershipTable {
    slots: BTreeMap<NodeId, NodeInfo>,
}

impl MembershipTable {
    /// A registry of `universe` slots, all active at incarnation 0.
    pub fn new(universe: usize) -> Self {
        let slots = (0..universe)
            .map(|slot| (slot, NodeInfo { incarnation: 0, state: MemberState::Active }))
            .collect();
        Self { slots }
    }

    /// Number of slots in the universe.
    pub fn universe(&self) -> usize {
        self.slots.len()
    }

    /// One slot's record.
    ///
    /// # Errors
    ///
    /// [`MembershipError::SlotOutOfRange`] for unknown slots.
    pub fn info(&self, slot: NodeId) -> Result<NodeInfo, MembershipError> {
        self.slots
            .get(&slot)
            .copied()
            .ok_or(MembershipError::SlotOutOfRange { slot, universe: self.slots.len() })
    }

    /// One slot's lifecycle state (out-of-range slots read as `Dead`:
    /// they certainly are not serving).
    pub fn state(&self, slot: NodeId) -> MemberState {
        self.slots.get(&slot).map_or(MemberState::Dead, |i| i.state)
    }

    /// One slot's incarnation (0 for out-of-range slots).
    pub fn incarnation(&self, slot: NodeId) -> u64 {
        self.slots.get(&slot).map_or(0, |i| i.incarnation)
    }

    /// All records in slot order.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, NodeInfo)> + '_ {
        self.slots.iter().map(|(&slot, &info)| (slot, info))
    }

    /// Slots currently not `Active`, in slot order — what stands
    /// between the cluster and its full m-fault budget.
    pub fn degraded_slots(&self) -> Vec<NodeId> {
        self.slots
            .iter()
            .filter(|(_, i)| i.state != MemberState::Active)
            .map(|(&slot, _)| slot)
            .collect()
    }

    /// `true` when every slot is `Active` (full fault budget).
    pub fn fully_active(&self) -> bool {
        self.slots.values().all(|i| i.state == MemberState::Active)
    }

    /// Writes a slot off as dead (idempotent). Returns `true` when the
    /// state actually changed. Joining slots can die too — a
    /// replacement may crash before its rebalance commits.
    pub fn mark_dead(&mut self, slot: NodeId) -> bool {
        match self.slots.get_mut(&slot) {
            Some(info) if info.state != MemberState::Dead => {
                info.state = MemberState::Dead;
                true
            }
            _ => false,
        }
    }

    /// Announces a graceful drain: `Active → Leaving`. The caller must
    /// stage the slot's bytes *before* admitting a replacement (the
    /// admission wipes them).
    ///
    /// # Errors
    ///
    /// [`MembershipError::SlotState`] unless the slot is `Active`,
    /// [`MembershipError::SlotOutOfRange`] for unknown slots.
    pub fn retire(&mut self, slot: NodeId) -> Result<(), MembershipError> {
        self.transition(slot, MemberState::Leaving, |s| s == MemberState::Active, "active")
    }

    /// Admits a replacement process into a vacated slot:
    /// `Dead | Leaving → Joining`, bumping the incarnation. Returns the
    /// new incarnation.
    ///
    /// # Errors
    ///
    /// [`MembershipError::SlotState`] when the slot is still `Active`
    /// (evict it first) or already `Joining` (one replacement at a
    /// time), [`MembershipError::SlotOutOfRange`] for unknown slots.
    pub fn admit(&mut self, slot: NodeId) -> Result<u64, MembershipError> {
        self.transition(
            slot,
            MemberState::Joining,
            |s| matches!(s, MemberState::Dead | MemberState::Leaving),
            "dead or leaving",
        )?;
        let info = self.slots.get_mut(&slot).expect("checked by transition");
        info.incarnation += 1;
        Ok(info.incarnation)
    }

    /// Activates a joining slot after its chunk has been migrated and
    /// the layout verified: `Joining → Active`.
    ///
    /// # Errors
    ///
    /// [`MembershipError::SlotState`] unless the slot is `Joining`,
    /// [`MembershipError::SlotOutOfRange`] for unknown slots.
    pub fn activate(&mut self, slot: NodeId) -> Result<(), MembershipError> {
        self.transition(slot, MemberState::Active, |s| s == MemberState::Joining, "joining")
    }

    fn transition(
        &mut self,
        slot: NodeId,
        to: MemberState,
        ok: impl Fn(MemberState) -> bool,
        expected: &'static str,
    ) -> Result<(), MembershipError> {
        let universe = self.slots.len();
        let info =
            self.slots.get_mut(&slot).ok_or(MembershipError::SlotOutOfRange { slot, universe })?;
        if !ok(info.state) {
            return Err(MembershipError::SlotState { slot, expected, actual: info.state.as_str() });
        }
        info.state = to;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_happy_path_bumps_incarnations() {
        let mut t = MembershipTable::new(4);
        assert!(t.fully_active());
        assert!(t.mark_dead(2));
        assert!(!t.mark_dead(2), "idempotent");
        assert_eq!(t.degraded_slots(), vec![2]);
        assert_eq!(t.admit(2).unwrap(), 1);
        assert_eq!(t.state(2), MemberState::Joining);
        t.activate(2).unwrap();
        assert!(t.fully_active());
        assert_eq!(t.incarnation(2), 1);
        // A second churn keeps counting.
        t.mark_dead(2);
        assert_eq!(t.admit(2).unwrap(), 2);
    }

    #[test]
    fn graceful_drain_goes_through_leaving() {
        let mut t = MembershipTable::new(3);
        t.retire(1).unwrap();
        assert_eq!(t.state(1), MemberState::Leaving);
        assert!(t.retire(1).is_err(), "cannot retire twice");
        assert_eq!(t.admit(1).unwrap(), 1);
        t.activate(1).unwrap();
    }

    #[test]
    fn illegal_transitions_are_refused() {
        let mut t = MembershipTable::new(2);
        assert!(matches!(t.admit(0), Err(MembershipError::SlotState { .. })));
        t.mark_dead(0);
        t.admit(0).unwrap();
        assert!(matches!(t.admit(0), Err(MembershipError::SlotState { .. })));
        assert!(matches!(t.retire(0), Err(MembershipError::SlotState { .. })));
        assert!(matches!(t.activate(1), Err(MembershipError::SlotState { .. })));
        assert!(matches!(t.admit(9), Err(MembershipError::SlotOutOfRange { .. })));
        // A joining replacement can itself die.
        assert!(t.mark_dead(0));
        assert_eq!(t.admit(0).unwrap(), 2);
    }
}
