//! Control-plane error taxonomy.

use std::error::Error;
use std::fmt;

use ecc_cluster::ClusterError;
use eccheck::EcCheckError;

/// Errors produced by the membership control plane.
#[derive(Debug)]
#[non_exhaustive]
pub enum MembershipError {
    /// A slot id outside the cluster's slot universe.
    SlotOutOfRange {
        /// The offending slot.
        slot: usize,
        /// Number of slots in the universe.
        universe: usize,
    },
    /// A lifecycle transition was requested from the wrong state (e.g.
    /// admitting a replacement into a slot that is still active).
    SlotState {
        /// The slot whose transition was refused.
        slot: usize,
        /// The state the transition requires.
        expected: &'static str,
        /// The state the slot is actually in.
        actual: &'static str,
    },
    /// Too few intact chunks survive to rebuild the churned ones: the
    /// rebalance cannot proceed, and neither the shard map nor the
    /// epoch advances.
    NotEnoughSurvivors {
        /// Intact chunks found.
        survivors: usize,
        /// Chunks needed (`k`).
        needed: usize,
    },
    /// Post-migration verification found the m-fault guarantee broken
    /// on the candidate layout; the epoch was *not* bumped.
    GuaranteeViolated {
        /// The checkpoint version that failed verification.
        version: u64,
        /// What exactly was missing or corrupt.
        detail: String,
    },
    /// An underlying data-plane failure.
    Plane(ClusterError),
    /// An underlying engine failure (placement construction, erasure
    /// coding).
    Engine(EcCheckError),
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::SlotOutOfRange { slot, universe } => {
                write!(f, "slot {slot} out of range (universe has {universe} slots)")
            }
            MembershipError::SlotState { slot, expected, actual } => {
                write!(f, "slot {slot} is {actual}, transition requires {expected}")
            }
            MembershipError::NotEnoughSurvivors { survivors, needed } => {
                write!(f, "cannot rebuild: only {survivors} intact chunks survive, {needed} needed")
            }
            MembershipError::GuaranteeViolated { version, detail } => {
                write!(f, "m-fault guarantee violated on candidate layout for v{version}: {detail}")
            }
            MembershipError::Plane(e) => write!(f, "data plane: {e}"),
            MembershipError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl Error for MembershipError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MembershipError::Plane(e) => Some(e),
            MembershipError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for MembershipError {
    fn from(e: ClusterError) -> Self {
        MembershipError::Plane(e)
    }
}

impl From<EcCheckError> for MembershipError {
    fn from(e: EcCheckError) -> Self {
        MembershipError::Engine(e)
    }
}
