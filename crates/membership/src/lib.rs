//! Elastic membership and the placement control plane.
//!
//! ECCheck's evaluation (and the core engine's `ClusterSpec`) assume a
//! fixed set of `n = k + m` nodes, but the §II-B failure model is
//! exactly what real fleets violate continuously: nodes crash, get
//! drained for maintenance, and come back as fresh (empty) processes.
//! This crate closes that gap with a *placement controller* in the
//! style of a placement center (cf. robustmq's `storage_cluster`): a
//! control-plane authority that owns
//!
//! - the **[`MembershipTable`]** — the authoritative node registry:
//!   one entry per cluster slot, tracking the slot's *incarnation*
//!   (bumped every time a replacement process takes the slot over) and
//!   lifecycle state ([`MemberState`]: active → leaving/dead → joining
//!   → active);
//! - the **[`ShardMap`]** — the epoch-versioned record of which slot
//!   incarnation holds which erasure-code chunk, derived from the
//!   paper's sweep-line placement (§IV-B-1) and advanced only by a
//!   verified rebalance;
//! - the **[`PlacementController`]** — the reconciliation loop that
//!   consumes `HealthRegistry::transitions_since` to detect dead
//!   nodes, admits replacements, and drives **online re-encoding**.
//!
//! # The rebalance protocol
//!
//! On membership change the controller recomputes the sweep-line
//! placement, diffs the shard map against it ([`ShardMap::diff`]), and
//! builds a [`RebalancePlan`] containing one [`Move`] per chunk whose
//! assignment actually changed — everything else stays put. A move is
//!
//! - [`Move::Copy`] when the outgoing incarnation's bytes are still
//!   readable (a graceful leave staged them): pure byte transfer,
//!   `~2·chunk` traffic;
//! - [`Move::Rebuild`] when they are gone (a crash): the chunk is
//!   reconstructed from any `k` intact survivors. Thanks to the
//!   GF-linearity of the Cauchy Reed–Solomon code, a lost *parity*
//!   chunk whose `k` data chunks all survive is **patched** by
//!   re-encoding just that one chunk — the other `m − 1` parity
//!   chunks are never touched, let alone re-distributed.
//!
//! The placement epoch bumps **only after** the m-fault guarantee has
//! been re-verified on the new layout (every chunk present, checksum
//! valid, on its own alive slot); a failed verification leaves the
//! epoch — and thus every engine's view of the world — unchanged.
//! Chunk migration traffic per rebalance is measured and reported
//! against the naive full-re-encode bound: re-encoding from scratch
//! would re-read the full data set (`k` chunks), re-distribute every
//! parity chunk (`m·s·W` bytes), and re-write each churned data slot
//! — `(k + m + d)·chunk` in total — while the plan moves only what
//! churned, so `chunk_bytes <= bound_bytes` at every commit.
//!
//! # Example
//!
//! ```
//! use ecc_cluster::{Cluster, ClusterSpec};
//! use ecc_membership::PlacementController;
//! use eccheck::EcCheckConfig;
//!
//! let spec = ClusterSpec::tiny_test(4, 2);
//! let mut cluster = Cluster::new(spec);
//! let config = EcCheckConfig::paper_defaults().with_packet_size(256);
//! let mut ctl = PlacementController::new(&spec, &config)?;
//! assert_eq!(ctl.epoch(), 0);
//!
//! // Node 2 crashes and a replacement process takes over its slot.
//! cluster.fail_node(2);
//! ctl.force_dead(2);
//! cluster.replace_node(2);
//! ctl.join(2)?;
//!
//! // No checkpoints stored yet, so the rebalance has nothing to move —
//! // but it still verifies the layout and commits a new epoch.
//! let report = ctl.rebalance(&mut cluster)?;
//! assert_eq!(report.epoch, 1);
//! assert_eq!(report.migrated_bytes, 0);
//! # Ok::<(), ecc_membership::MembershipError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod error;
mod shardmap;
mod table;

pub use controller::{Move, PlacementController, RebalancePlan, RebalanceReport};
pub use error::MembershipError;
pub use shardmap::{ShardEntry, ShardMap};
pub use table::{MemberState, MembershipTable, NodeInfo};
