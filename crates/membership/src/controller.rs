//! The placement controller: reconcile health, admit replacements,
//! drive online re-encoding, commit epochs.
//!
//! See the crate docs for the protocol; this module is the engine room.
//! The controller is deliberately a *single authority* (placement
//! center idiom): every shard-map transition funnels through
//! [`PlacementController::rebalance`], which is the only place the
//! placement epoch advances — and it advances only after the m-fault
//! guarantee has been re-verified chunk by chunk on the data plane.

use std::collections::{BTreeMap, BTreeSet};

use ecc_checkpoint::{checksum_frame, verify_checksum};
use ecc_cluster::{ClusterError, ClusterSpec, DataPlane, HealthRegistry, NodeHealth, NodeId};
use ecc_erasure::{CodeParams, ErasureCode};
use ecc_telemetry::Recorder;
use ecc_trace::{Tracer, TrackId, DRIVER_PID};
use eccheck::keys::{
    chunk_crc_key, chunk_key, encode_epoch, epoch_key, header_crc_key, header_key, key_version,
    manifest_key, placement_epoch_key,
};
use eccheck::{select_data_parity_nodes, EcCheckConfig, EcCheckError, Placement};

use crate::{MemberState, MembershipError, MembershipTable, ShardMap};

/// One chunk migration in a [`RebalancePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// The outgoing incarnation's bytes were staged (graceful leave):
    /// write them to the new incarnation. ~2·chunk traffic.
    Copy {
        /// The chunk to move.
        chunk: usize,
        /// The slot whose fresh incarnation receives it.
        slot: NodeId,
    },
    /// The bytes are gone (crash): reconstruct the chunk from `k`
    /// intact survivors — or, for a parity chunk whose data set is
    /// fully intact, re-encode just that chunk (GF-linearity patch).
    Rebuild {
        /// The chunk to rebuild.
        chunk: usize,
        /// The slot whose fresh incarnation receives it.
        slot: NodeId,
    },
}

impl Move {
    /// The slot receiving bytes.
    pub fn slot(self) -> NodeId {
        match self {
            Move::Copy { slot, .. } | Move::Rebuild { slot, .. } => slot,
        }
    }

    /// The chunk being moved.
    pub fn chunk(self) -> usize {
        match self {
            Move::Copy { chunk, .. } | Move::Rebuild { chunk, .. } => chunk,
        }
    }
}

/// The minimal set of migrations that reconciles the shard map with
/// the current membership — one [`Move`] per chunk whose assignment
/// changed, nothing for the rest of the cluster.
#[derive(Debug, Clone)]
pub struct RebalancePlan {
    /// The epoch the plan was computed against.
    pub epoch_from: u64,
    /// The placement the cluster converges to (sweep-line recompute).
    pub placement: Placement,
    /// The migrations, in chunk order.
    pub moves: Vec<Move>,
}

/// What one committed rebalance did. `migrated_bytes` vs `bound_bytes`
/// is the headline number: migration traffic proportional to churn,
/// not to a full re-encode of the checkpoint.
#[derive(Debug, Clone)]
pub struct RebalanceReport {
    /// The epoch after the rebalance (unchanged for a no-op).
    pub epoch: u64,
    /// Chunk moves served from staged bytes (graceful leaves).
    pub moves_copied: usize,
    /// Chunk moves served by erasure decoding from survivors.
    pub moves_rebuilt: usize,
    /// Rebuilds served by the cheaper GF-linearity parity patch
    /// (subset of `moves_rebuilt`).
    pub parity_patched: usize,
    /// Total bytes that crossed node boundaries for the migration
    /// (chunk reads + writes, staged reads, metadata replication).
    pub migrated_bytes: u64,
    /// The chunk-payload subset of `migrated_bytes` that only the
    /// migration scheme decides: erasure-code chunk bytes read from
    /// survivors and written to targets. Excludes checksum frames,
    /// replicated metadata, and graceful-drain evacuation reads — all
    /// of which move under any scheme. This is the number compared to
    /// `bound_bytes`; the invariant `chunk_bytes <= bound_bytes` holds
    /// for every committed rebalance.
    pub chunk_bytes: u64,
    /// What a naive full re-encode would have moved for the same
    /// membership change, summed over the migrated checkpoint
    /// versions: `k` data-chunk reads, `m` parity writes (`m·s·W`),
    /// plus one write per churned data slot — `(k + m + d) · chunk`.
    pub bound_bytes: u64,
    /// Checkpoint versions that were migrated.
    pub versions: Vec<u64>,
}

impl RebalanceReport {
    /// One-object JSON summary (artifact-friendly, no dependencies).
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"epoch\":{},\"moves_copied\":{},\"moves_rebuilt\":{},\"parity_patched\":{},\
             \"migrated_bytes\":{},\"chunk_bytes\":{},\"bound_bytes\":{},\"versions\":{:?}}}",
            self.epoch,
            self.moves_copied,
            self.moves_rebuilt,
            self.parity_patched,
            self.migrated_bytes,
            self.chunk_bytes,
            self.bound_bytes,
            self.versions
        )
    }
}

/// The placement controller. See the crate docs for an end-to-end
/// example.
#[derive(Debug)]
pub struct PlacementController {
    spec: ClusterSpec,
    k: usize,
    m: usize,
    code: ErasureCode,
    table: MembershipTable,
    map: ShardMap,
    health_cursor: u64,
    /// Bytes read off gracefully-leaving slots before their
    /// replacement wipes them, keyed by slot. The read traffic is
    /// attributed to the rebalance whose `Copy` move consumes it.
    staged: BTreeMap<NodeId, Vec<(String, Vec<u8>)>>,
    recorder: Recorder,
    trace: Option<(Tracer, TrackId)>,
}

impl PlacementController {
    /// A controller for the cluster `spec` encodes with `config`'s
    /// (k, m) split. The initial shard map is the paper's sweep-line
    /// placement at epoch 0 with every slot active.
    ///
    /// # Errors
    ///
    /// [`MembershipError::Engine`] when `k + m` does not match the
    /// node count or the code parameters are invalid.
    pub fn new(spec: &ClusterSpec, config: &EcCheckConfig) -> Result<Self, MembershipError> {
        let (k, m) = (config.k(), config.m());
        if k + m != spec.nodes() {
            return Err(EcCheckError::Config {
                detail: format!("k + m = {} must equal the {} nodes", k + m, spec.nodes()),
            }
            .into());
        }
        let code = ErasureCode::cauchy_good(
            CodeParams::new(k, m, config.w()).map_err(EcCheckError::from)?,
        )
        .map_err(EcCheckError::from)?;
        let placement = select_data_parity_nodes(&spec.origin_group(), k)?;
        let table = MembershipTable::new(spec.nodes());
        let map = ShardMap::new(placement, &table)?;
        Ok(Self {
            spec: *spec,
            k,
            m,
            code,
            table,
            map,
            health_cursor: 0,
            staged: BTreeMap::new(),
            recorder: Recorder::new(),
            trace: None,
        })
    }

    /// Attaches a telemetry recorder (shared-handle semantics, like
    /// the engine's).
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.recorder = recorder.clone();
    }

    /// Attaches a tracer; rebalances emit spans on a dedicated
    /// `membership` track of the driver process.
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        let track = tracer.track(DRIVER_PID, "driver", "membership");
        self.trace = Some((tracer.clone(), track));
    }

    /// The current placement epoch.
    pub fn epoch(&self) -> u64 {
        self.map.epoch()
    }

    /// The placement the shard map is bound to.
    pub fn placement(&self) -> &Placement {
        self.map.placement()
    }

    /// The authoritative node registry.
    pub fn table(&self) -> &MembershipTable {
        &self.table
    }

    /// The authoritative shard map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Ingests new health transitions (missed-heartbeat detection):
    /// every node the registry wrote off since the last call is marked
    /// dead in the membership table. Returns the newly dead slots.
    pub fn observe(&mut self, health: &HealthRegistry) -> Vec<NodeId> {
        let (transitions, cursor) = health.transitions_since(self.health_cursor);
        self.health_cursor = cursor;
        let mut newly_dead = Vec::new();
        for t in transitions {
            if t.to == NodeHealth::Dead && self.mark_dead_inner(t.node) {
                newly_dead.push(t.node);
            }
        }
        newly_dead
    }

    /// Writes a slot off as dead without waiting for the health
    /// registry (e.g. an operator-confirmed crash). Returns `true`
    /// when the state changed.
    pub fn force_dead(&mut self, slot: NodeId) -> bool {
        self.mark_dead_inner(slot)
    }

    fn mark_dead_inner(&mut self, slot: NodeId) -> bool {
        let changed = self.table.mark_dead(slot);
        if changed {
            self.recorder.counter("membership.dead.detected").incr();
            self.recorder.event("membership.dead", format!("slot {slot} written off"));
        }
        changed
    }

    /// Admits a replacement process into a vacated (dead or leaving)
    /// slot. The *physical* replacement — an empty node taking the
    /// slot over on the data plane — is the caller's side; this
    /// records the new incarnation so the next [`rebalance`] migrates
    /// the slot's chunk onto it. Returns the new incarnation.
    ///
    /// [`rebalance`]: PlacementController::rebalance
    ///
    /// # Errors
    ///
    /// Propagates [`MembershipTable::admit`]'s state checks.
    pub fn join(&mut self, slot: NodeId) -> Result<u64, MembershipError> {
        let incarnation = self.table.admit(slot)?;
        self.recorder.counter("membership.joins").incr();
        self.recorder
            .event("membership.join", format!("slot {slot} admitted incarnation {incarnation}"));
        Ok(incarnation)
    }

    /// Announces a graceful drain of an active slot: its entire key
    /// set is staged off the node *now* (while the bytes are still
    /// readable), so the eventual replacement is served by a cheap
    /// [`Move::Copy`] instead of a decode.
    ///
    /// # Errors
    ///
    /// [`MembershipError::Plane`] (`NodeDown`) when the slot is not
    /// alive on the plane — a dead node cannot drain, only crash —
    /// plus [`MembershipTable::retire`]'s state checks.
    pub fn leave(&mut self, plane: &impl DataPlane, slot: NodeId) -> Result<(), MembershipError> {
        if self.table.state(slot) != MemberState::Active {
            // Surface the same error retire() would, without staging.
            self.table.retire(slot)?;
            unreachable!("retire must fail for non-active slots");
        }
        if !plane.alive(slot) {
            return Err(ClusterError::NodeDown { node: slot }.into());
        }
        let mut blobs = Vec::new();
        let mut bytes = 0u64;
        for key in plane.local_keys(slot) {
            if let Some(blob) = plane.get_local(slot, &key) {
                bytes += blob.len() as u64;
                blobs.push((key, blob));
            }
        }
        self.staged.insert(slot, blobs);
        self.table.retire(slot)?;
        self.recorder.counter("membership.leaves").incr();
        self.recorder
            .event("membership.leave", format!("slot {slot} draining, {bytes} bytes staged"));
        Ok(())
    }

    /// Recomputes the sweep-line placement, diffs it (plus the
    /// incarnation counters) against the shard map, and returns the
    /// minimal migration set. Read-only; [`rebalance`] executes it.
    ///
    /// [`rebalance`]: PlacementController::rebalance
    ///
    /// # Errors
    ///
    /// [`MembershipError::Engine`] when placement recomputation fails.
    pub fn plan(&self) -> Result<RebalancePlan, MembershipError> {
        let placement = select_data_parity_nodes(&self.spec.origin_group(), self.k)?;
        let changed = self.map.diff(&placement, &self.table)?;
        let slot_of = |chunk: usize| -> NodeId {
            if chunk < self.k {
                placement.data_nodes()[chunk]
            } else {
                placement.parity_nodes()[chunk - self.k]
            }
        };
        let moves = changed
            .into_iter()
            .map(|chunk| {
                let slot = slot_of(chunk);
                if self.staged.contains_key(&slot) {
                    Move::Copy { chunk, slot }
                } else {
                    Move::Rebuild { chunk, slot }
                }
            })
            .collect();
        Ok(RebalancePlan { epoch_from: self.map.epoch(), placement, moves })
    }

    /// Executes the current [`plan`]: migrates every churned chunk for
    /// every checkpoint version on the plane, re-verifies the m-fault
    /// guarantee on the candidate layout, and only then commits — the
    /// shard map rebinds, joining slots activate, and the placement
    /// epoch bumps (written to every alive node under
    /// `keys::placement_epoch_key`, which is what makes stale engines
    /// refuse to save). With no pending membership change this is a
    /// no-op returning the current epoch.
    ///
    /// [`plan`]: PlacementController::plan
    ///
    /// # Errors
    ///
    /// [`MembershipError::NotEnoughSurvivors`] when fewer than `k`
    /// intact chunks remain for some version, and
    /// [`MembershipError::GuaranteeViolated`] when post-migration
    /// verification fails — in both cases nothing commits: the epoch,
    /// shard map, and registry states are unchanged.
    pub fn rebalance(
        &mut self,
        plane: &mut impl DataPlane,
    ) -> Result<RebalanceReport, MembershipError> {
        let timer = self.recorder.timer("membership.rebalance.ns");
        let plan = self.plan()?;
        if plan.moves.is_empty() {
            timer.stop();
            return Ok(RebalanceReport {
                epoch: self.map.epoch(),
                moves_copied: 0,
                moves_rebuilt: 0,
                parity_patched: 0,
                migrated_bytes: 0,
                chunk_bytes: 0,
                bound_bytes: 0,
                versions: Vec::new(),
            });
        }
        let span = self.trace.as_ref().map(|(tracer, track)| {
            tracer.span(*track, "membership.rebalance", format!("{} moves", plan.moves.len()))
        });

        let versions = discover_versions(plane);

        // Read-side traffic of the graceful drains this plan consumes:
        // the bytes staged off each leaving slot crossed a node
        // boundary once already, charged to the rebalance that uses
        // them (a drain whose replacement never arrives is not
        // charged). Evacuation reads happen under *any* scheme — a
        // full re-encode regenerates parity instead of copying it — so
        // they count toward `migrated_bytes` but not the
        // bound-comparable `chunk_bytes`.
        let mut staged_total = 0u64;
        for mv in &plan.moves {
            let Move::Copy { slot, .. } = *mv else { continue };
            for (_, blob) in self.staged.get(&slot).into_iter().flatten() {
                staged_total += blob.len() as u64;
            }
        }
        let mut report = RebalanceReport {
            epoch: self.map.epoch(),
            moves_copied: 0,
            moves_rebuilt: 0,
            parity_patched: 0,
            migrated_bytes: staged_total,
            chunk_bytes: 0,
            bound_bytes: 0,
            versions: versions.iter().copied().collect(),
        };
        for &version in &versions {
            self.migrate_version(plane, version, &plan, &mut report)?;
        }
        for &version in &versions {
            self.verify_m_fault(plane, version, &plan)?;
        }

        // Point of no return: every chunk of every version is verified
        // on its own alive slot, so the guarantee holds — commit.
        let epoch = self.map.advance(plan.placement, &self.table)?;
        let marker = encode_epoch(epoch);
        for slot in 0..self.table.universe() {
            if plane.alive(slot) {
                plane.put_local(slot, &placement_epoch_key(), marker.clone())?;
                for &version in &versions {
                    plane.put_local(slot, &epoch_key(version), marker.clone())?;
                }
            }
        }
        let joining: Vec<NodeId> = self
            .table
            .entries()
            .filter(|(_, i)| i.state == MemberState::Joining)
            .map(|(slot, _)| slot)
            .collect();
        for slot in joining {
            self.table.activate(slot)?;
            self.staged.remove(&slot);
        }
        report.epoch = epoch;

        self.recorder.counter("membership.epoch").incr();
        self.recorder.counter("membership.rebalance.calls").incr();
        self.recorder.counter("membership.migration.bytes").add(report.migrated_bytes);
        self.recorder.counter("membership.moves.copy").add(report.moves_copied as u64);
        self.recorder.counter("membership.moves.rebuild").add(report.moves_rebuilt as u64);
        self.recorder.counter("membership.moves.patch").add(report.parity_patched as u64);
        self.recorder.event(
            "membership.rebalance",
            format!(
                "epoch {} -> {epoch}: {} copied, {} rebuilt ({} patched), {} bytes (bound {})",
                plan.epoch_from,
                report.moves_copied,
                report.moves_rebuilt,
                report.parity_patched,
                report.migrated_bytes,
                report.bound_bytes
            ),
        );
        drop(span);
        timer.stop();
        Ok(report)
    }

    /// Migrates `version`'s churned chunks per `plan`, accumulating
    /// traffic into `report`.
    fn migrate_version(
        &mut self,
        plane: &mut impl DataPlane,
        version: u64,
        plan: &RebalancePlan,
        report: &mut RebalanceReport,
    ) -> Result<(), MembershipError> {
        let targets: BTreeSet<NodeId> = plan.moves.iter().map(|m| m.slot()).collect();
        // Naive full re-encode for the same membership change reads
        // the k data chunks, rewrites all m parity chunks, and writes
        // one chunk per churned *data* slot: (k + m + d) · chunk.
        let churned_data = plan.moves.iter().filter(|m| m.chunk() < self.k).count();
        let naive_factor = (self.k + self.m + churned_data) as u64;

        // Copy moves first: staged bytes of this version flow to the
        // slot's fresh incarnation.
        for mv in &plan.moves {
            let Move::Copy { slot, .. } = *mv else { continue };
            let staged = self.staged.get(&slot).cloned().unwrap_or_default();
            for (key, blob) in staged {
                if key_version(&key) == Some(version) {
                    report.migrated_bytes += blob.len() as u64;
                    if is_chunk_payload(&key) {
                        report.chunk_bytes += blob.len() as u64;
                    }
                    plane.put_local(slot, &key, blob)?;
                }
            }
            report.moves_copied += 1;
        }

        // Rebuild moves: reconstruct from survivors.
        let lost: Vec<Move> =
            plan.moves.iter().copied().filter(|m| matches!(m, Move::Rebuild { .. })).collect();
        if lost.is_empty() {
            // Still need the bound for the report: derive chunk size
            // from any survivor.
            if let Some(len) = self.survivor_chunk_len(plane, version, &targets) {
                report.bound_bytes += naive_factor * len as u64;
            }
            return Ok(());
        }

        // Gather intact survivor chunks (checksum-verified; a corrupt
        // survivor counts as an erasure, exactly like the load path).
        let n = self.table.universe();
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut intact = 0usize;
        let mut read_bytes = 0u64;
        for entry in self.map.entries() {
            if intact == self.k {
                break;
            }
            if targets.contains(&entry.slot) || !plane.alive(entry.slot) {
                continue;
            }
            let blob = plane.get_local(entry.slot, &chunk_key(version));
            let crc = plane.get_local(entry.slot, &chunk_crc_key(version));
            let (Some(blob), Some(crc)) = (blob, crc) else { continue };
            if !verify_checksum(&blob, &crc) {
                self.recorder.counter("membership.migration.corrupt_survivors").incr();
                continue;
            }
            read_bytes += blob.len() as u64;
            intact += 1;
            shards[entry.chunk] = Some(blob);
        }
        if intact < self.k {
            return Err(MembershipError::NotEnoughSurvivors { survivors: intact, needed: self.k });
        }
        let chunk_len = shards.iter().flatten().next().map_or(0, Vec::len);
        report.bound_bytes += naive_factor * chunk_len as u64;
        report.migrated_bytes += read_bytes;
        report.chunk_bytes += read_bytes;

        // GF-linearity fast path: when every lost chunk is parity and
        // the k collected chunks are exactly the data set, re-encode
        // just the lost rows — no decode, and the surviving m − f
        // parity chunks are never touched.
        let all_parity = lost.iter().all(|m| m.chunk() >= self.k);
        let data_complete = shards[..self.k].iter().all(Option::is_some);
        let rebuilt: Vec<(usize, Vec<u8>)> = if all_parity && data_complete {
            let data_refs: Vec<&[u8]> =
                shards[..self.k].iter().map(|s| s.as_deref().expect("data complete")).collect();
            let parity = self.code.encode(&data_refs).map_err(EcCheckError::from)?;
            report.parity_patched += lost.len();
            lost.iter().map(|m| (m.chunk(), parity[m.chunk() - self.k].clone())).collect()
        } else {
            let refs: Vec<Option<&[u8]>> = shards.iter().map(Option::as_deref).collect();
            let all = self.code.reconstruct_all(&refs).map_err(EcCheckError::from)?;
            lost.iter().map(|m| (m.chunk(), all[m.chunk()].clone())).collect()
        };
        let mut rebuilt_slots = Vec::new();
        for (mv, (chunk, blob)) in lost.iter().zip(rebuilt) {
            debug_assert_eq!(mv.chunk(), chunk);
            let frame = checksum_frame(&blob);
            report.migrated_bytes += (blob.len() + frame.len()) as u64;
            report.chunk_bytes += blob.len() as u64;
            plane.put_local(mv.slot(), &chunk_key(version), blob)?;
            plane.put_local(mv.slot(), &chunk_crc_key(version), frame)?;
            report.moves_rebuilt += 1;
            rebuilt_slots.push(mv.slot());
        }

        // A rebuilt slot also needs the replicated metadata (headers,
        // manifest, provenance) every node carries. Tiny next to the
        // chunks, but part of the restore contract — and counted.
        self.replicate_metadata(plane, version, &targets, &rebuilt_slots, report)?;
        Ok(())
    }

    /// Copies the per-version replicated metadata from a survivor to
    /// each rebuilt slot.
    fn replicate_metadata(
        &self,
        plane: &mut impl DataPlane,
        version: u64,
        targets: &BTreeSet<NodeId>,
        rebuilt_slots: &[NodeId],
        report: &mut RebalanceReport,
    ) -> Result<(), MembershipError> {
        let n = self.table.universe();
        let source = (0..n).find(|slot| !targets.contains(slot) && plane.alive(*slot));
        let Some(source) = source else { return Ok(()) };
        let mut meta_keys = vec![manifest_key(version), epoch_key(version)];
        for w in 0..self.spec.world_size() {
            meta_keys.push(header_key(version, w));
            meta_keys.push(header_crc_key(version, w));
        }
        for key in meta_keys {
            let Some(blob) = plane.get_local(source, &key) else { continue };
            for &slot in rebuilt_slots {
                report.migrated_bytes += blob.len() as u64;
                plane.put_local(slot, &key, blob.clone())?;
            }
        }
        Ok(())
    }

    /// Chunk length of any intact survivor for `version`, for bound
    /// accounting when a rebalance is copy-only.
    fn survivor_chunk_len(
        &self,
        plane: &impl DataPlane,
        version: u64,
        targets: &BTreeSet<NodeId>,
    ) -> Option<usize> {
        self.map
            .entries()
            .iter()
            .filter(|e| !targets.contains(&e.slot) && plane.alive(e.slot))
            .find_map(|e| plane.get_local(e.slot, &chunk_key(version)))
            .map(|blob| blob.len())
    }

    /// The acceptance gate for an epoch commit: every chunk of
    /// `version` present and checksum-valid on its own alive slot
    /// under the candidate placement — i.e. the cluster tolerates any
    /// `m` further faults from this instant on.
    fn verify_m_fault(
        &self,
        plane: &impl DataPlane,
        version: u64,
        plan: &RebalancePlan,
    ) -> Result<(), MembershipError> {
        let slots = plan.placement.data_nodes().iter().chain(plan.placement.parity_nodes());
        for (chunk, &slot) in slots.enumerate() {
            if !plane.alive(slot) {
                return Err(MembershipError::GuaranteeViolated {
                    version,
                    detail: format!("slot {slot} (chunk {chunk}) is not alive"),
                });
            }
            let blob = plane.get_local(slot, &chunk_key(version));
            let crc = plane.get_local(slot, &chunk_crc_key(version));
            let (Some(blob), Some(crc)) = (blob, crc) else {
                return Err(MembershipError::GuaranteeViolated {
                    version,
                    detail: format!("chunk {chunk} absent on slot {slot}"),
                });
            };
            if !verify_checksum(&blob, &crc) {
                return Err(MembershipError::GuaranteeViolated {
                    version,
                    detail: format!("chunk {chunk} on slot {slot} fails its checksum"),
                });
            }
        }
        Ok(())
    }
}

/// `true` when `key` holds erasure-code chunk *payload* — the traffic
/// class the `m·s·W` bound covers. Checksum frames ride alongside the
/// chunks but are integrity metadata, so they count toward
/// `migrated_bytes` only.
fn is_chunk_payload(key: &str) -> bool {
    eccheck::keys::is_chunk_class(key) && !key.ends_with(".crc")
}

/// Every checkpoint version with a manifest on some alive node.
fn discover_versions(plane: &impl DataPlane) -> BTreeSet<u64> {
    let mut versions = BTreeSet::new();
    for node in 0..plane.nodes() {
        if !plane.alive(node) {
            continue;
        }
        for key in plane.local_keys(node) {
            if let Some(rest) = key.strip_prefix("ecc/v") {
                if let Some(v) = rest.strip_suffix("/manifest").and_then(|v| v.parse().ok()) {
                    versions.insert(v);
                }
            }
        }
    }
    versions
}
