//! The epoch-versioned shard map: which slot incarnation holds which
//! chunk.
//!
//! The map binds the paper's sweep-line placement (chunk → slot) to
//! the registry's incarnation counters (slot → process). A chunk's
//! assignment *changes* — and only then must it migrate — when either
//! side moves: the sweep line hands the chunk to a different slot, or
//! the slot's incarnation bumps (a replacement process holds it, so
//! the bytes stored under the old incarnation are gone or going).
//! [`ShardMap::diff`] computes exactly that set, which is what keeps
//! rebalance traffic proportional to churn instead of to cluster size.

use ecc_cluster::NodeId;
use eccheck::Placement;

use crate::{MembershipError, MembershipTable};

/// One chunk's current binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEntry {
    /// Chunk id: data chunk `j` is `j`, parity chunk `i` is `k + i`
    /// (the engine's `chunk_id_of_node` convention).
    pub chunk: usize,
    /// The slot assigned to store it.
    pub slot: NodeId,
    /// The slot incarnation the bytes were last written under.
    pub incarnation: u64,
}

/// The authoritative chunk → (slot, incarnation) map at one placement
/// epoch. Advanced only by [`ShardMap::advance`] after the controller
/// has verified the new layout; epochs are strictly monotone.
#[derive(Debug, Clone)]
pub struct ShardMap {
    epoch: u64,
    placement: Placement,
    entries: Vec<ShardEntry>,
}

impl ShardMap {
    /// Binds `placement` to the current incarnations in `table`, at
    /// epoch 0.
    ///
    /// # Errors
    ///
    /// [`MembershipError::SlotOutOfRange`] when the placement names a
    /// slot outside the table's universe.
    pub fn new(placement: Placement, table: &MembershipTable) -> Result<Self, MembershipError> {
        let entries = bind(&placement, table)?;
        Ok(Self { epoch: 0, placement, entries })
    }

    /// The current placement epoch (0 until the first rebalance).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The placement behind the map.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// All bindings in chunk order.
    pub fn entries(&self) -> &[ShardEntry] {
        &self.entries
    }

    /// The slot assigned to `chunk`.
    ///
    /// # Panics
    ///
    /// Panics for chunk ids `>= k + m`.
    pub fn slot_of(&self, chunk: usize) -> NodeId {
        self.entries[chunk].slot
    }

    /// The chunk assigned to `slot`, if any.
    pub fn chunk_of(&self, slot: NodeId) -> Option<usize> {
        self.entries.iter().find(|e| e.slot == slot).map(|e| e.chunk)
    }

    /// The chunks whose assignment under (`placement`, `table`) differs
    /// from this map — the only chunks a rebalance may move. A chunk
    /// appears when the sweep line reassigned it to another slot *or*
    /// its slot's incarnation bumped.
    ///
    /// # Errors
    ///
    /// [`MembershipError::SlotOutOfRange`] when the placement names a
    /// slot outside the table's universe.
    pub fn diff(
        &self,
        placement: &Placement,
        table: &MembershipTable,
    ) -> Result<Vec<usize>, MembershipError> {
        let next = bind(placement, table)?;
        Ok(next
            .iter()
            .zip(&self.entries)
            .filter(|(new, old)| new != old)
            .map(|(new, _)| new.chunk)
            .collect())
    }

    /// Rebinds the map to (`placement`, `table`) and bumps the epoch.
    /// Call only after the controller verified the m-fault guarantee
    /// on the migrated layout. Returns the new epoch.
    ///
    /// # Errors
    ///
    /// [`MembershipError::SlotOutOfRange`] when the placement names a
    /// slot outside the table's universe (the map is unchanged).
    pub fn advance(
        &mut self,
        placement: Placement,
        table: &MembershipTable,
    ) -> Result<u64, MembershipError> {
        self.entries = bind(&placement, table)?;
        self.placement = placement;
        self.epoch += 1;
        Ok(self.epoch)
    }
}

/// Chunk → (slot, incarnation) bindings for a placement, in chunk-id
/// order (data chunks first, then parity).
fn bind(
    placement: &Placement,
    table: &MembershipTable,
) -> Result<Vec<ShardEntry>, MembershipError> {
    let slots = placement.data_nodes().iter().chain(placement.parity_nodes());
    slots
        .enumerate()
        .map(|(chunk, &slot)| {
            let info = table.info(slot)?;
            Ok(ShardEntry { chunk, slot, incarnation: info.incarnation })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eccheck::select_data_parity_nodes;

    fn sweep(nodes: usize, g: usize, k: usize) -> Placement {
        let origin: Vec<_> = (0..nodes).map(|i| i * g..(i + 1) * g).collect();
        select_data_parity_nodes(&origin, k).unwrap()
    }

    #[test]
    fn initial_map_binds_every_chunk_to_a_distinct_slot() {
        let table = MembershipTable::new(4);
        let map = ShardMap::new(sweep(4, 2, 2), &table).unwrap();
        assert_eq!(map.epoch(), 0);
        assert_eq!(map.entries().len(), 4);
        let mut slots: Vec<_> = map.entries().iter().map(|e| e.slot).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 4, "no two chunks share a slot");
        for e in map.entries() {
            assert_eq!(e.incarnation, 0);
            assert_eq!(map.slot_of(e.chunk), e.slot);
            assert_eq!(map.chunk_of(e.slot), Some(e.chunk));
        }
    }

    #[test]
    fn diff_is_exactly_the_churned_chunks() {
        let mut table = MembershipTable::new(4);
        let placement = sweep(4, 2, 2);
        let map = ShardMap::new(placement.clone(), &table).unwrap();
        assert!(map.diff(&placement, &table).unwrap().is_empty(), "no churn, no moves");

        // Slot 2's incarnation bumps: only its chunk must move.
        table.mark_dead(2);
        table.admit(2).unwrap();
        let moved = map.diff(&placement, &table).unwrap();
        assert_eq!(moved, vec![map.chunk_of(2).unwrap()]);
    }

    #[test]
    fn diff_detects_slot_reassignment() {
        let table = MembershipTable::new(4);
        let placement = sweep(4, 2, 2);
        let map = ShardMap::new(placement.clone(), &table).unwrap();
        // Swap the two parity slots: exactly those chunks move even
        // though every incarnation is unchanged.
        let swapped = Placement::new(
            placement.data_nodes().to_vec(),
            placement.parity_nodes().iter().rev().copied().collect(),
            placement.group_size(),
        )
        .unwrap();
        let moved = map.diff(&swapped, &table).unwrap();
        assert_eq!(moved.len(), 2);
        assert!(moved.iter().all(|&c| c >= placement.k()));
    }

    #[test]
    fn advance_is_strictly_monotone_and_rebinds() {
        let mut table = MembershipTable::new(4);
        let placement = sweep(4, 2, 2);
        let mut map = ShardMap::new(placement.clone(), &table).unwrap();
        table.mark_dead(0);
        table.admit(0).unwrap();
        assert_eq!(map.advance(placement.clone(), &table).unwrap(), 1);
        assert_eq!(map.advance(placement.clone(), &table).unwrap(), 2);
        let rebound = map.entries().iter().find(|e| e.slot == 0).unwrap();
        assert_eq!(rebound.incarnation, 1);
        assert!(map.diff(&placement, &table).unwrap().is_empty());
    }

    #[test]
    fn out_of_range_slots_are_refused() {
        let table = MembershipTable::new(2);
        let placement = sweep(4, 2, 2);
        assert!(matches!(
            ShardMap::new(placement, &table),
            Err(MembershipError::SlotOutOfRange { .. })
        ));
    }
}
