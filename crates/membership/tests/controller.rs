//! End-to-end control-plane tests: a real engine saving real bytes on
//! a real (in-memory) cluster, with the controller driving churn.

use ecc_checkpoint::StateDict;
use ecc_cluster::{Cluster, ClusterSpec, HealthConfig, HealthRegistry};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use ecc_membership::{MemberState, MembershipError, PlacementController};
use eccheck::{EcCheck, EcCheckConfig, EcCheckError};

fn config() -> EcCheckConfig {
    EcCheckConfig::paper_defaults().with_packet_size(256).with_coding_threads(2)
}

/// 4 nodes × 2 GPUs, k = m = 2, tiny Megatron-style shards.
fn setup() -> (ClusterSpec, Cluster, EcCheck, PlacementController, Vec<StateDict>) {
    let spec = ClusterSpec::tiny_test(4, 2);
    let cluster = Cluster::new(spec);
    let ecc = EcCheck::initialize(&spec, config()).unwrap();
    let ctl = PlacementController::new(&spec, &config()).unwrap();
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
    let par = ParallelismSpec::new(2, 2, 2).unwrap();
    let sd_spec = StateDictSpec::new(model, par);
    let dicts: Vec<StateDict> =
        (0..8).map(|w| build_worker_state_dict(&sd_spec, w).unwrap()).collect();
    (spec, cluster, ecc, ctl, dicts)
}

/// Re-sync a (stale) engine with the controller's committed epoch.
fn refresh(ecc: &mut EcCheck, ctl: &PlacementController) {
    ecc.apply_placement(ctl.epoch(), ctl.placement().clone()).unwrap();
}

#[test]
fn crash_replace_rebuilds_and_bumps_epoch() {
    let (_, mut cluster, mut ecc, mut ctl, dicts) = setup();
    ecc.save(&mut cluster, &dicts).unwrap();

    // Node 1 crashes; a fresh process takes its slot over.
    cluster.fail_node(1);
    assert!(ctl.force_dead(1));
    cluster.replace_node(1);
    assert_eq!(ctl.join(1).unwrap(), 1);

    let report = ctl.rebalance(&mut cluster).unwrap();
    assert_eq!(report.epoch, 1);
    assert_eq!(report.moves_copied + report.moves_rebuilt, 1, "only the churned chunk moves");
    assert!(report.migrated_bytes > 0);
    assert!(
        report.migrated_bytes < report.bound_bytes,
        "migration {} must undercut the full re-encode bound {}",
        report.migrated_bytes,
        report.bound_bytes
    );
    assert!(ctl.table().fully_active());

    // The engine is now stale and must refuse to save until refreshed.
    assert!(matches!(ecc.save(&mut cluster, &dicts), Err(EcCheckError::StaleEpoch { .. })));
    refresh(&mut ecc, &ctl);
    let (restored, _) = ecc.load(&mut cluster).unwrap();
    assert_eq!(restored, dicts, "checkpoint survives churn bit-exactly");
}

#[test]
fn m_fault_guarantee_holds_after_every_churn_instant() {
    let (spec, mut cluster, mut ecc, mut ctl, dicts) = setup();
    ecc.save(&mut cluster, &dicts).unwrap();
    let m = config().m();

    for victim in 0..spec.nodes() {
        cluster.fail_node(victim);
        ctl.force_dead(victim);
        cluster.replace_node(victim);
        ctl.join(victim).unwrap();
        ctl.rebalance(&mut cluster).unwrap();
        refresh(&mut ecc, &ctl);

        // At this instant, any m further faults must be survivable.
        for a in 0..spec.nodes() {
            for b in (a + 1)..spec.nodes() {
                let mut drill = cluster.clone();
                drill.fail_node(a);
                drill.fail_node(b);
                let (restored, _) = ecc.load(&mut drill).unwrap();
                assert_eq!(restored, dicts, "survive ({a},{b}) after churn of {victim}");
            }
        }
        // ... and m + 1 faults must be refused cleanly, not garbled.
        let mut drill = cluster.clone();
        for node in 0..=m {
            drill.fail_node(node);
        }
        assert!(matches!(ecc.load(&mut drill), Err(EcCheckError::Unrecoverable { .. })));
        // Heal the drill damage for the next round: reload on the real
        // cluster restores every replica.
        ecc.load(&mut cluster).unwrap();
    }
    assert_eq!(ctl.epoch(), spec.nodes() as u64);
}

#[test]
fn graceful_leave_migrates_by_copy() {
    let (_, mut cluster, mut ecc, mut ctl, dicts) = setup();
    ecc.save(&mut cluster, &dicts).unwrap();

    ctl.leave(&cluster, 3).unwrap();
    assert_eq!(ctl.table().state(3), MemberState::Leaving);
    // The drained process goes away; its replacement arrives empty.
    cluster.fail_node(3);
    cluster.replace_node(3);
    ctl.join(3).unwrap();

    let report = ctl.rebalance(&mut cluster).unwrap();
    assert_eq!(report.moves_copied, 1, "staged bytes served the move");
    assert_eq!(report.moves_rebuilt, 0, "no decode needed for a graceful drain");
    assert!(report.migrated_bytes < report.bound_bytes);

    refresh(&mut ecc, &ctl);
    let (restored, _) = ecc.load(&mut cluster).unwrap();
    assert_eq!(restored, dicts);
}

#[test]
fn lost_parity_is_patched_not_re_encoded() {
    let (_, mut cluster, mut ecc, mut ctl, dicts) = setup();
    ecc.save(&mut cluster, &dicts).unwrap();

    let parity_slot = ctl.placement().parity_nodes()[0];
    cluster.fail_node(parity_slot);
    ctl.force_dead(parity_slot);
    cluster.replace_node(parity_slot);
    ctl.join(parity_slot).unwrap();

    let report = ctl.rebalance(&mut cluster).unwrap();
    assert_eq!(report.moves_rebuilt, 1);
    assert_eq!(report.parity_patched, 1, "GF-linearity: re-encode one row, not a decode");

    refresh(&mut ecc, &ctl);
    let (restored, _) = ecc.load(&mut cluster).unwrap();
    assert_eq!(restored, dicts);
}

#[test]
fn epoch_commits_only_once_the_guarantee_holds() {
    let (_, mut cluster, mut ecc, mut ctl, dicts) = setup();
    ecc.save(&mut cluster, &dicts).unwrap();

    // Two nodes die but only one replacement arrives: the rebalance
    // must refuse to certify the layout, and the epoch must not move.
    cluster.fail_node(0);
    cluster.fail_node(2);
    ctl.force_dead(0);
    ctl.force_dead(2);
    cluster.replace_node(0);
    ctl.join(0).unwrap();
    assert!(matches!(ctl.rebalance(&mut cluster), Err(MembershipError::GuaranteeViolated { .. })));
    assert_eq!(ctl.epoch(), 0, "no certificate, no epoch");
    assert_eq!(ctl.table().state(0), MemberState::Joining, "join not activated either");

    // The second replacement arrives: now the rebalance goes through.
    cluster.replace_node(2);
    ctl.join(2).unwrap();
    let report = ctl.rebalance(&mut cluster).unwrap();
    assert_eq!(report.epoch, 1);
    assert_eq!(report.moves_rebuilt, 2);
    assert!(ctl.table().fully_active());

    refresh(&mut ecc, &ctl);
    let (restored, _) = ecc.load(&mut cluster).unwrap();
    assert_eq!(restored, dicts);
}

#[test]
fn observe_consumes_health_transitions() {
    let (spec, mut cluster, mut ecc, mut ctl, dicts) = setup();
    ecc.save(&mut cluster, &dicts).unwrap();

    let health = HealthRegistry::new(spec.nodes(), HealthConfig::default());
    for node in 0..spec.nodes() {
        health.record_heartbeat(node, 0);
    }
    assert!(ctl.observe(&health).is_empty(), "everyone heartbeating");

    // Node 2 stops heartbeating past the dead window.
    let dead_after = health.config().dead_after_ns;
    for node in [0, 1, 3] {
        health.record_heartbeat(node, dead_after + 1);
    }
    health.sweep(dead_after + 2);
    let newly_dead = ctl.observe(&health);
    assert_eq!(newly_dead, vec![2]);
    assert_eq!(ctl.table().state(2), MemberState::Dead);
    assert!(ctl.observe(&health).is_empty(), "cursor advanced; no re-delivery");
}

#[test]
fn quiet_cluster_rebalance_is_a_no_op() {
    let (_, mut cluster, mut ecc, mut ctl, dicts) = setup();
    ecc.save(&mut cluster, &dicts).unwrap();
    let report = ctl.rebalance(&mut cluster).unwrap();
    assert_eq!(report.epoch, 0);
    assert_eq!(report.migrated_bytes, 0);
    assert!(report.versions.is_empty());
    // No epoch marker committed: the engine stays fresh and saves fine.
    ecc.save(&mut cluster, &dicts).unwrap();
}
