//! Property tests for the control plane: under *arbitrary* join /
//! leave / crash sequences, the shard map never co-locates two chunks
//! of a parity group on one node, and the placement epoch is strictly
//! monotone (one step per committed rebalance, frozen otherwise).

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_erasure::{CodeParams, ErasureCode};
use ecc_membership::{MemberState, PlacementController};
use eccheck::keys::{chunk_crc_key, chunk_key, manifest_key};
use eccheck::EcCheckConfig;
use proptest::prelude::*;

const K: usize = 2;
const M: usize = 2;

/// Plants a valid 4-chunk codeword (version 1) on the cluster, so
/// rebalances exercise the real decode/patch paths instead of running
/// over an empty plane. 64-byte chunks: tiny but w-aligned.
fn seed_checkpoint(cluster: &mut Cluster, ctl: &PlacementController) {
    let code = ErasureCode::cauchy_good(CodeParams::new(K, M, 8).unwrap()).unwrap();
    let data: Vec<Vec<u8>> = (0..K).map(|j| vec![j as u8 + 1; 64]).collect();
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let parity = code.encode(&refs).unwrap();
    let placement = ctl.placement();
    for (j, chunk) in data.iter().enumerate() {
        put_chunk(cluster, placement.data_nodes()[j], chunk);
    }
    for (i, chunk) in parity.iter().enumerate() {
        put_chunk(cluster, placement.parity_nodes()[i], chunk);
    }
}

fn put_chunk(cluster: &mut Cluster, slot: usize, chunk: &[u8]) {
    cluster.put_local(slot, &chunk_key(1), chunk.to_vec()).unwrap();
    cluster.put_local(slot, &chunk_crc_key(1), ecc_checkpoint::checksum_frame(chunk)).unwrap();
    cluster.put_local(slot, &manifest_key(1), vec![0u8; 8]).unwrap();
}

#[derive(Debug, Clone, Copy)]
enum ChurnOp {
    Crash,
    Join,
    Leave,
}

fn churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![Just(ChurnOp::Crash), Just(ChurnOp::Join), Just(ChurnOp::Leave)]
}

proptest! {
    #[test]
    fn arbitrary_churn_keeps_the_map_sound(
        ops in proptest::collection::vec((0..4usize, churn_op()), 1..32),
    ) {
        let spec = ClusterSpec::tiny_test(4, 2);
        let config = EcCheckConfig::paper_defaults().with_packet_size(256);
        let mut cluster = Cluster::new(spec);
        let mut ctl = PlacementController::new(&spec, &config).unwrap();
        seed_checkpoint(&mut cluster, &ctl);

        for (slot, op) in ops {
            match op {
                ChurnOp::Crash => {
                    cluster.fail_node(slot);
                    ctl.force_dead(slot);
                }
                ChurnOp::Join => {
                    if matches!(
                        ctl.table().state(slot),
                        MemberState::Dead | MemberState::Leaving
                    ) {
                        cluster.replace_node(slot);
                        ctl.join(slot).unwrap();
                    }
                }
                ChurnOp::Leave => {
                    if ctl.table().state(slot) == MemberState::Active && cluster.alive(slot) {
                        ctl.leave(&cluster, slot).unwrap();
                    }
                }
            }

            // The controller reconciles after every membership event; a
            // refusal (guarantee not yet restorable) must freeze the
            // epoch, a commit must advance it by exactly one.
            let before = ctl.epoch();
            match ctl.rebalance(&mut cluster) {
                Ok(report) => {
                    prop_assert!(
                        report.epoch == before || report.epoch == before + 1,
                        "epoch jumped {before} -> {}", report.epoch
                    );
                    prop_assert_eq!(report.epoch, ctl.epoch());
                    if !report.versions.is_empty() && report.moves_rebuilt + report.moves_copied > 0 {
                        prop_assert!(report.migrated_bytes > 0);
                        prop_assert!(report.chunk_bytes <= report.bound_bytes,
                            "chunk migration {} exceeds the full re-encode bound {}",
                            report.chunk_bytes, report.bound_bytes);
                    }
                }
                Err(_) => prop_assert_eq!(ctl.epoch(), before, "refusal must not move the epoch"),
            }

            // No two chunks of the parity group may share a slot, ever.
            let mut slots: Vec<_> =
                ctl.shard_map().entries().iter().map(|e| e.slot).collect();
            let total = slots.len();
            slots.sort_unstable();
            slots.dedup();
            prop_assert_eq!(slots.len(), total, "shard map co-located chunks");
            prop_assert_eq!(total, K + M);
        }
    }

    /// Incarnations only ever grow, and only via admission.
    #[test]
    fn incarnations_are_monotone(ops in proptest::collection::vec((0..4usize, churn_op()), 1..32)) {
        let spec = ClusterSpec::tiny_test(4, 2);
        let config = EcCheckConfig::paper_defaults().with_packet_size(256);
        let cluster = Cluster::new(spec);
        let mut ctl = PlacementController::new(&spec, &config).unwrap();
        let mut floor = [0u64; 4];
        for (slot, op) in ops {
            match op {
                ChurnOp::Crash => { ctl.force_dead(slot); }
                ChurnOp::Join => {
                    if matches!(ctl.table().state(slot), MemberState::Dead | MemberState::Leaving) {
                        ctl.join(slot).unwrap();
                    }
                }
                ChurnOp::Leave => {
                    if ctl.table().state(slot) == MemberState::Active {
                        ctl.leave(&cluster, slot).unwrap();
                    }
                }
            }
            for (s, low) in floor.iter_mut().enumerate() {
                let inc = ctl.table().incarnation(s);
                prop_assert!(inc >= *low);
                *low = inc;
            }
        }
    }
}
