//! Synthesis of per-worker sharded `state_dict`s.
//!
//! The tensor inventory follows Megatron-LM's sharding conventions
//! (paper §III-A): tensor parallelism splits QKV/MLP matrices along the
//! hidden dimension, pipeline parallelism assigns consecutive layers to
//! stages, the first stage holds embeddings and the last the final
//! LayerNorm (plus BERT's pooler). Every fp16 parameter has three fp32
//! optimizer companions (master weight, Adam exp_avg, exp_avg_sq), so a
//! worker's bytes match the analytic 14 bytes/param of
//! [`crate::ModelConfig::checkpoint_bytes`].
//!
//! Tensor *contents* are seeded pseudo-random bytes: checkpointing treats
//! them as opaque memory, so values don't matter — but determinism does,
//! and two calls with the same spec produce identical bytes.

use ecc_checkpoint::{DType, StateDict, Tensor, Value};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::{DnnError, ModelConfig, ModelFamily, ParallelismSpec};

/// Everything needed to synthesize one worker's checkpoint shard.
#[derive(Debug, Clone, Copy)]
pub struct StateDictSpec {
    /// The model being "trained".
    pub model: ModelConfig,
    /// The parallelism grid.
    pub par: ParallelismSpec,
    /// Training iteration recorded in the checkpoint metadata.
    pub iteration: u64,
    /// Seed for the synthetic tensor contents.
    pub seed: u64,
}

impl StateDictSpec {
    /// A specification with iteration 0 and a fixed default seed.
    pub fn new(model: ModelConfig, par: ParallelismSpec) -> Self {
        Self { model, par, iteration: 0, seed: 0xECC0_1234 }
    }
}

/// Builds the sharded `state_dict` of worker `worker` (global rank).
///
/// # Errors
///
/// Returns [`DnnError::InvalidParallelism`] when the model does not
/// divide across the grid or the worker id is out of range.
pub fn build_worker_state_dict(spec: &StateDictSpec, worker: usize) -> Result<StateDict, DnnError> {
    spec.par.validate_for(&spec.model)?;
    if worker >= spec.par.world_size() {
        return Err(DnnError::InvalidParallelism {
            detail: format!("worker {worker} out of range (world size {})", spec.par.world_size()),
        });
    }
    let rank = spec.par.rank_of(worker);
    let m = &spec.model;
    let (h, tp) = (m.hidden(), spec.par.tp());
    let lps = spec.par.layers_per_stage(m);
    let first_layer = rank.pp * lps;
    let is_first_stage = rank.pp == 0;
    let is_last_stage = rank.pp == spec.par.pp() - 1;

    let mut filler = Filler::new(spec.seed, worker);
    let mut model_params: Vec<(String, Vec<usize>)> = Vec::new();

    if is_first_stage {
        let vocab_rows = m.vocab().div_ceil(tp);
        model_params.push(("embedding.word_embeddings.weight".into(), vec![vocab_rows, h]));
        if !matches!(m.family(), ModelFamily::T5) {
            model_params
                .push(("embedding.position_embeddings.weight".into(), vec![m.seq_len(), h]));
        }
    }

    for layer in first_layer..first_layer + lps {
        let p = format!("encoder.layers.{layer}");
        model_params.push((format!("{p}.input_layernorm.weight"), vec![h]));
        model_params.push((format!("{p}.input_layernorm.bias"), vec![h]));
        model_params
            .push((format!("{p}.self_attention.query_key_value.weight"), vec![3 * h / tp, h]));
        model_params.push((format!("{p}.self_attention.query_key_value.bias"), vec![3 * h / tp]));
        model_params.push((format!("{p}.self_attention.dense.weight"), vec![h, h / tp]));
        model_params.push((format!("{p}.self_attention.dense.bias"), vec![h]));
        // T5 decoder-half layers carry cross-attention (paper Table I
        // sizing; see ModelConfig::params_per_layer).
        if matches!(m.family(), ModelFamily::T5) && layer >= m.layers() / 2 {
            model_params.push((format!("{p}.inter_attention.query.weight"), vec![h / tp, h]));
            model_params.push((format!("{p}.inter_attention.query.bias"), vec![h / tp]));
            model_params
                .push((format!("{p}.inter_attention.key_value.weight"), vec![2 * h / tp, h]));
            model_params.push((format!("{p}.inter_attention.key_value.bias"), vec![2 * h / tp]));
            model_params.push((format!("{p}.inter_attention.dense.weight"), vec![h, h / tp]));
            model_params.push((format!("{p}.inter_attention.dense.bias"), vec![h]));
        }
        model_params.push((format!("{p}.post_attention_layernorm.weight"), vec![h]));
        model_params.push((format!("{p}.post_attention_layernorm.bias"), vec![h]));
        model_params.push((format!("{p}.mlp.dense_h_to_4h.weight"), vec![4 * h / tp, h]));
        model_params.push((format!("{p}.mlp.dense_h_to_4h.bias"), vec![4 * h / tp]));
        model_params.push((format!("{p}.mlp.dense_4h_to_h.weight"), vec![h, 4 * h / tp]));
        model_params.push((format!("{p}.mlp.dense_4h_to_h.bias"), vec![h]));
    }

    if is_last_stage {
        model_params.push(("encoder.final_layernorm.weight".into(), vec![h]));
        model_params.push(("encoder.final_layernorm.bias".into(), vec![h]));
        if matches!(m.family(), ModelFamily::Bert) {
            model_params.push(("pooler.dense.weight".into(), vec![h, h]));
            model_params.push(("pooler.dense.bias".into(), vec![h]));
        }
    }

    // Under FSDP the DP dimension shards every parameter as a flattened
    // slice of ceil(numel / dp) elements (the final rank's padding is
    // part of the shard, matching flat-parameter FSDP implementations).
    if spec.par.is_fsdp() && spec.par.dp() > 1 {
        let dp = spec.par.dp();
        for (_, shape) in &mut model_params {
            let numel: usize = shape.iter().product();
            *shape = vec![numel.div_ceil(dp)];
        }
    }

    // Model weights in fp16.
    let mut model_dict = StateDict::new();
    for (name, shape) in &model_params {
        model_dict.insert(name.clone(), Value::Tensor(filler.tensor(DType::F16, shape)));
    }

    // Optimizer: fp32 master + Adam moments per parameter tensor.
    let mut opt_state = StateDict::new();
    for (name, shape) in &model_params {
        let mut per_param = StateDict::new();
        per_param.insert("master", Value::Tensor(filler.tensor(DType::F32, shape)));
        per_param.insert("exp_avg", Value::Tensor(filler.tensor(DType::F32, shape)));
        per_param.insert("exp_avg_sq", Value::Tensor(filler.tensor(DType::F32, shape)));
        opt_state.insert(name.clone(), Value::Dict(per_param));
    }
    let mut optimizer = StateDict::new();
    optimizer.insert("step", Value::Int(spec.iteration as i64));
    optimizer.insert("state", Value::Dict(opt_state));

    // Non-tensor metadata mirroring a Megatron checkpoint.
    let mut args = StateDict::new();
    args.insert("tensor_model_parallel_size", Value::Int(spec.par.tp() as i64));
    args.insert("pipeline_model_parallel_size", Value::Int(spec.par.pp() as i64));
    args.insert("data_parallel_size", Value::Int(spec.par.dp() as i64));
    args.insert("hidden_size", Value::Int(h as i64));
    args.insert("num_layers", Value::Int(m.layers() as i64));
    args.insert("num_attention_heads", Value::Int(m.heads() as i64));
    args.insert("padded_vocab_size", Value::Int((m.vocab().div_ceil(tp) * tp) as i64));

    let mut rng_state = StateDict::new();
    rng_state.insert("python", Value::Bytes(filler.bytes(256)));
    rng_state.insert("numpy", Value::Bytes(filler.bytes(128)));
    rng_state.insert("torch_cpu", Value::Bytes(filler.bytes(64)));
    rng_state.insert("torch_cuda", Value::Bytes(filler.bytes(64)));

    let mut sd = StateDict::new();
    sd.insert("iteration", Value::Int(spec.iteration as i64));
    sd.insert("checkpoint_version", Value::Float(3.0));
    sd.insert("args", Value::Dict(args));
    sd.insert("model", Value::Dict(model_dict));
    sd.insert("optimizer", Value::Dict(optimizer));
    sd.insert("rng_state", Value::Dict(rng_state));
    Ok(sd)
}

/// Deterministic per-worker tensor filler.
struct Filler {
    rng: StdRng,
}

impl Filler {
    fn new(seed: u64, worker: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    fn tensor(&mut self, dtype: DType, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        let mut data = vec![0u8; numel * dtype.size()];
        self.rng.fill_bytes(&mut data);
        Tensor::from_bytes(dtype, shape, data).expect("sized to shape")
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut data = vec![0u8; len];
        self.rng.fill_bytes(&mut data);
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(family: ModelFamily) -> StateDictSpec {
        let model = match family {
            ModelFamily::Gpt2 => ModelConfig::gpt2(64, 4, 4),
            ModelFamily::Bert => ModelConfig::bert(64, 4, 4),
            ModelFamily::T5 => ModelConfig::t5(64, 4, 4),
        }
        .with_vocab(512)
        .with_seq_len(32);
        StateDictSpec::new(model, ParallelismSpec::new(2, 2, 1).unwrap())
    }

    #[test]
    fn deterministic_across_calls() {
        let spec = tiny_spec(ModelFamily::Gpt2);
        let a = build_worker_state_dict(&spec, 1).unwrap();
        let b = build_worker_state_dict(&spec, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_workers_differ() {
        let spec = tiny_spec(ModelFamily::Gpt2);
        let a = build_worker_state_dict(&spec, 0).unwrap();
        let b = build_worker_state_dict(&spec, 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn out_of_range_worker_is_rejected() {
        let spec = tiny_spec(ModelFamily::Gpt2);
        assert!(build_worker_state_dict(&spec, 4).is_err());
    }

    #[test]
    fn shards_sum_to_analytic_checkpoint_size() {
        for family in [ModelFamily::Gpt2, ModelFamily::Bert, ModelFamily::T5] {
            let spec = tiny_spec(family);
            let total: usize = (0..spec.par.world_size())
                .map(|w| build_worker_state_dict(&spec, w).unwrap().tensor_bytes())
                .sum();
            let analytic = spec.model.checkpoint_bytes() as f64;
            let ratio = total as f64 / analytic;
            assert!(
                (0.93..1.07).contains(&ratio),
                "{family:?}: synthesized {total} vs analytic {analytic} (ratio {ratio:.3})"
            );
        }
    }

    #[test]
    fn first_stage_holds_embeddings_last_holds_final_ln() {
        let spec = tiny_spec(ModelFamily::Gpt2);
        // Workers 0..2 are stage 0 (tp=2); workers 2..4 are stage 1.
        let first = build_worker_state_dict(&spec, 0).unwrap();
        let last = build_worker_state_dict(&spec, 3).unwrap();
        let model_of = |sd: &StateDict| match sd.get("model").unwrap() {
            Value::Dict(d) => d.clone(),
            _ => panic!("model is a dict"),
        };
        assert!(model_of(&first).get("embedding.word_embeddings.weight").is_some());
        assert!(model_of(&first).get("encoder.final_layernorm.weight").is_none());
        assert!(model_of(&last).get("encoder.final_layernorm.weight").is_some());
        assert!(model_of(&last).get("embedding.word_embeddings.weight").is_none());
    }

    #[test]
    fn t5_decoder_layers_have_cross_attention() {
        let spec = tiny_spec(ModelFamily::T5);
        // Stage 1 holds layers 2..4, which are the decoder half (>= 2).
        let sd = build_worker_state_dict(&spec, 2).unwrap();
        match sd.get("model").unwrap() {
            Value::Dict(d) => {
                assert!(d.get("encoder.layers.2.inter_attention.query.weight").is_some());
            }
            _ => panic!("model is a dict"),
        }
        // Stage 0 (encoder half) has none.
        let sd0 = build_worker_state_dict(&spec, 0).unwrap();
        match sd0.get("model").unwrap() {
            Value::Dict(d) => {
                assert!(d.get("encoder.layers.0.inter_attention.query.weight").is_none());
            }
            _ => panic!("model is a dict"),
        }
    }

    #[test]
    fn optimizer_triples_every_parameter() {
        let spec = tiny_spec(ModelFamily::Gpt2);
        let sd = build_worker_state_dict(&spec, 0).unwrap();
        let model_bytes = match sd.get("model").unwrap() {
            Value::Dict(d) => d.tensor_bytes(),
            _ => panic!(),
        };
        let opt_bytes = match sd.get("optimizer").unwrap() {
            Value::Dict(d) => d.tensor_bytes(),
            _ => panic!(),
        };
        // fp32 master + 2 moments = 12 bytes/param vs fp16's 2 bytes.
        assert_eq!(opt_bytes, model_bytes * 6);
    }

    #[test]
    fn metadata_is_tiny_relative_to_tensors() {
        let spec = tiny_spec(ModelFamily::Gpt2);
        let sd = build_worker_state_dict(&spec, 0).unwrap();
        let d = ecc_checkpoint::decompose(&sd);
        assert!(d.header_bytes() * 10 < d.tensor_bytes());
    }
}

#[cfg(test)]
mod fsdp_tests {
    use super::*;

    fn fsdp_spec(dp: usize) -> StateDictSpec {
        let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
        StateDictSpec::new(model, ParallelismSpec::new(2, 2, dp).unwrap().with_fsdp())
    }

    #[test]
    fn fsdp_shards_are_smaller_and_flat() {
        let rep = {
            let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
            let spec = StateDictSpec::new(model, ParallelismSpec::new(2, 2, 2).unwrap());
            build_worker_state_dict(&spec, 0).unwrap()
        };
        let fsdp = build_worker_state_dict(&fsdp_spec(2), 0).unwrap();
        // Roughly half the bytes (ceil padding allowed).
        let ratio = fsdp.tensor_bytes() as f64 / rep.tensor_bytes() as f64;
        assert!((0.45..0.60).contains(&ratio), "ratio {ratio}");
        // Parameters are 1-D flat shards.
        match fsdp.get("model").unwrap() {
            Value::Dict(d) => {
                for (name, v) in d.iter() {
                    if let Value::Tensor(t) = v {
                        assert_eq!(t.shape().len(), 1, "{name} should be flat");
                    }
                }
            }
            _ => panic!("model is a dict"),
        }
    }

    #[test]
    fn fsdp_total_tracks_analytic_shard_bytes() {
        let spec = fsdp_spec(4);
        let total: usize = (0..spec.par.world_size())
            .map(|w| build_worker_state_dict(&spec, w).unwrap().tensor_bytes())
            .sum();
        let analytic = spec.model.checkpoint_bytes() as f64;
        let ratio = total as f64 / analytic;
        assert!((0.93..1.10).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fsdp_dicts_remain_checkpointable() {
        // The whole serialization-free pipeline still round-trips.
        let sd = build_worker_state_dict(&fsdp_spec(2), 3).unwrap();
        let d = ecc_checkpoint::decompose(&sd);
        assert_eq!(d.reassemble().unwrap(), sd);
    }
}
