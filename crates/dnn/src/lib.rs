//! Synthetic distributed DNN training for the ECCheck reproduction.
//!
//! ECCheck is evaluated on GPT-2, BERT and T5 trained with Megatron-LM
//! under hybrid tensor/pipeline parallelism (paper §V, Table I). No GPU
//! training happens in this reproduction; instead this crate produces the
//! two things the checkpointing layer actually consumes:
//!
//! 1. **Sharded `state_dict`s** — per-worker checkpoint payloads whose
//!    tensor inventory (names, dtypes, shapes) matches a Megatron-style
//!    mixed-precision shard for the chosen parallelism, filled with
//!    seeded synthetic bytes ([`build_worker_state_dict`]).
//! 2. **A training time model** — analytic iteration times and per-NIC
//!    busy/idle interval profiles under 1F1B pipelining, which ECCheck's
//!    scheduler uses to place checkpoint traffic into idle slots
//!    ([`IterationProfile`]).
//!
//! # Examples
//!
//! ```
//! use ecc_dnn::{ModelConfig, ParallelismSpec};
//!
//! // GPT-2 5.3B from Table I, on the paper's 4×4-GPU testbed.
//! let model = ModelConfig::gpt2(2560, 40, 64);
//! let par = ParallelismSpec::new(4, 4, 1)?;
//! assert_eq!(par.world_size(), 16);
//! let shard = model.shard_bytes(&par);
//! assert!(shard > 0);
//! # Ok::<(), ecc_dnn::DnnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod models;
mod parallel;
mod statedict;
mod timemodel;

pub use error::DnnError;
pub use models::{table_i_configs, ModelConfig, ModelFamily};
pub use parallel::{ParallelismSpec, WorkerRank};
pub use statedict::{build_worker_state_dict, StateDictSpec};
pub use timemodel::{GpuSpec, IterationProfile, TrainingTimeModel};
