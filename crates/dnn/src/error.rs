use std::error::Error;
use std::fmt;

/// Errors produced while configuring models and parallelism.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DnnError {
    /// An invalid parallelism degree or an incompatible model/parallelism
    /// combination.
    InvalidParallelism {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// An invalid model configuration.
    InvalidModel {
        /// Human-readable description of the problem.
        detail: String,
    },
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::InvalidParallelism { detail } => {
                write!(f, "invalid parallelism: {detail}")
            }
            DnnError::InvalidModel { detail } => write!(f, "invalid model: {detail}"),
        }
    }
}

impl Error for DnnError {}
