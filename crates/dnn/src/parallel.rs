//! Hybrid parallelism: tensor × pipeline × data (paper §II-A, Fig. 1).

use crate::{DnnError, ModelConfig};

/// A worker's coordinates in the TP × PP × DP grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkerRank {
    /// Global worker id in `0..world_size`.
    pub global: usize,
    /// Tensor-parallel rank in `0..tp`.
    pub tp: usize,
    /// Pipeline stage in `0..pp`.
    pub pp: usize,
    /// Data-parallel replica in `0..dp`.
    pub dp: usize,
}

/// Degrees of tensor, pipeline and data parallelism.
///
/// Rank order follows Megatron's convention: tensor-parallel ranks are
/// innermost (consecutive global ids, so TP groups sit on one node's
/// NVLink), then pipeline stages, then data-parallel replicas outermost.
///
/// # Examples
///
/// ```
/// use ecc_dnn::ParallelismSpec;
///
/// // The paper's testbed: TP=4 within each node, PP=4 across 4 nodes.
/// let par = ParallelismSpec::new(4, 4, 1)?;
/// let r = par.rank_of(6);
/// assert_eq!((r.tp, r.pp, r.dp), (2, 1, 0));
/// # Ok::<(), ecc_dnn::DnnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelismSpec {
    tp: usize,
    pp: usize,
    dp: usize,
    fsdp: bool,
}

impl ParallelismSpec {
    /// Validates and creates a parallelism specification.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidParallelism`] when any degree is zero.
    pub fn new(tp: usize, pp: usize, dp: usize) -> Result<Self, DnnError> {
        if tp == 0 || pp == 0 || dp == 0 {
            return Err(DnnError::InvalidParallelism {
                detail: format!("degrees must be positive (tp={tp}, pp={pp}, dp={dp})"),
            });
        }
        Ok(Self { tp, pp, dp, fsdp: false })
    }

    /// Switches the data-parallel dimension to *fully sharded* (FSDP):
    /// instead of each replica holding a full copy of its TP/PP shard,
    /// model and optimizer states are sharded across the `dp` ranks as
    /// flattened slices. The paper lists FSDP among the parallelisms
    /// ECCheck targets (§I, §III-A) because, like TP/PP, it leaves no
    /// full replica to recover from.
    pub fn with_fsdp(mut self) -> Self {
        self.fsdp = true;
        self
    }

    /// `true` when the data-parallel dimension is fully sharded.
    pub fn is_fsdp(&self) -> bool {
        self.fsdp
    }

    /// Number of ways the model state is partitioned for checkpointing:
    /// `tp × pp`, times `dp` under FSDP (replicated DP keeps a full copy
    /// per replica).
    pub fn model_shards(&self) -> usize {
        self.tp * self.pp * if self.fsdp { self.dp } else { 1 }
    }

    /// Tensor-parallel degree.
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Pipeline-parallel degree (number of stages).
    pub fn pp(&self) -> usize {
        self.pp
    }

    /// Data-parallel degree (number of replicas).
    pub fn dp(&self) -> usize {
        self.dp
    }

    /// Total number of workers.
    pub fn world_size(&self) -> usize {
        self.tp * self.pp * self.dp
    }

    /// Grid coordinates of a global worker id.
    ///
    /// # Panics
    ///
    /// Panics when `global >= world_size()`.
    pub fn rank_of(&self, global: usize) -> WorkerRank {
        assert!(global < self.world_size(), "worker {global} out of range");
        WorkerRank {
            global,
            tp: global % self.tp,
            pp: (global / self.tp) % self.pp,
            dp: global / (self.tp * self.pp),
        }
    }

    /// Global worker id of grid coordinates.
    ///
    /// # Panics
    ///
    /// Panics when any coordinate is out of range.
    pub fn global_of(&self, tp: usize, pp: usize, dp: usize) -> usize {
        assert!(tp < self.tp && pp < self.pp && dp < self.dp, "rank out of range");
        tp + self.tp * (pp + self.pp * dp)
    }

    /// Checks that the model divides evenly across this grid.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidParallelism`] when layers are not a
    /// multiple of `pp`, or heads/hidden are not multiples of `tp`.
    pub fn validate_for(&self, model: &ModelConfig) -> Result<(), DnnError> {
        if !model.layers().is_multiple_of(self.pp) {
            return Err(DnnError::InvalidParallelism {
                detail: format!(
                    "{} layers do not divide into {} pipeline stages",
                    model.layers(),
                    self.pp
                ),
            });
        }
        if !model.heads().is_multiple_of(self.tp) || !model.hidden().is_multiple_of(self.tp) {
            return Err(DnnError::InvalidParallelism {
                detail: format!(
                    "hidden {} / heads {} do not divide by tensor parallel degree {}",
                    model.hidden(),
                    model.heads(),
                    self.tp
                ),
            });
        }
        Ok(())
    }

    /// Layers held by each pipeline stage.
    pub fn layers_per_stage(&self, model: &ModelConfig) -> usize {
        model.layers() / self.pp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsdp_divides_model_state_by_dp() {
        let rep = ParallelismSpec::new(2, 2, 4).unwrap();
        let fsdp = ParallelismSpec::new(2, 2, 4).unwrap().with_fsdp();
        assert!(!rep.is_fsdp());
        assert!(fsdp.is_fsdp());
        assert_eq!(rep.model_shards(), 4);
        assert_eq!(fsdp.model_shards(), 16);
    }

    #[test]
    fn world_size_multiplies_degrees() {
        let p = ParallelismSpec::new(4, 4, 2).unwrap();
        assert_eq!(p.world_size(), 32);
    }

    #[test]
    fn zero_degree_is_rejected() {
        assert!(ParallelismSpec::new(0, 1, 1).is_err());
        assert!(ParallelismSpec::new(1, 0, 1).is_err());
        assert!(ParallelismSpec::new(1, 1, 0).is_err());
    }

    #[test]
    fn rank_round_trips() {
        let p = ParallelismSpec::new(4, 2, 3).unwrap();
        for g in 0..p.world_size() {
            let r = p.rank_of(g);
            assert_eq!(p.global_of(r.tp, r.pp, r.dp), g);
        }
    }

    #[test]
    fn tp_ranks_are_consecutive() {
        // Megatron places TP groups on one node; consecutive ids give the
        // cluster layout that property for node size == tp.
        let p = ParallelismSpec::new(4, 4, 1).unwrap();
        for g in 0..4 {
            assert_eq!(p.rank_of(g).pp, 0);
            assert_eq!(p.rank_of(g).tp, g);
        }
        assert_eq!(p.rank_of(4).pp, 1);
    }

    #[test]
    fn validate_checks_divisibility() {
        let m = ModelConfig::gpt2(1600, 32, 48);
        assert!(ParallelismSpec::new(4, 4, 1).unwrap().validate_for(&m).is_ok());
        assert!(ParallelismSpec::new(4, 5, 1).unwrap().validate_for(&m).is_err());
        assert!(ParallelismSpec::new(3, 4, 1).unwrap().validate_for(&m).is_err());
    }

    #[test]
    fn layers_split_evenly() {
        let m = ModelConfig::gpt2(1600, 32, 48);
        let p = ParallelismSpec::new(4, 4, 1).unwrap();
        assert_eq!(p.layers_per_stage(&m), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_of_out_of_range_panics() {
        let p = ParallelismSpec::new(2, 2, 1).unwrap();
        let _ = p.rank_of(4);
    }
}
