//! Analytic training-iteration time and network busy/idle profiles.
//!
//! ECCheck schedules checkpoint communication into network idle slots
//! identified by profiling the first ~50 training iterations (paper
//! §IV-B-3). This reproduction has no real training to profile, so the
//! profile is generated analytically from the same structure the paper
//! exploits: under 1F1B pipeline parallelism each inter-node link is busy
//! for short activation/gradient transfers at microbatch boundaries and
//! idle in between; data parallelism adds a gradient all-reduce at the
//! iteration tail.
//!
//! Absolute numbers are calibration constants, but the *shape* — many
//! short busy windows separated by idle gaps whose total dwarfs the busy
//! time — is what ECCheck's scheduler depends on, and that shape is
//! faithful.

use ecc_sim::{Bandwidth, BusyWindows, SimDuration, SimTime};

use crate::{DnnError, ModelConfig, ParallelismSpec};

/// Compute/transfer characteristics of one simulated GPU.
#[derive(Debug, Clone, Copy)]
pub struct GpuSpec {
    /// Sustained mixed-precision throughput in FLOP/s (an *effective*
    /// rate: peak × typical MFU).
    pub flops: f64,
    /// Device-to-host copy bandwidth (PCIe) — governs checkpoint step 1.
    pub dtoh: Bandwidth,
    /// Device memory capacity in bytes.
    pub hbm_bytes: u64,
}

impl GpuSpec {
    /// An NVIDIA A100-40GB-like device (312 TFLOPs peak, ~40% MFU).
    pub fn a100_40g() -> Self {
        Self { flops: 125e12, dtoh: Bandwidth::from_gibps(20.0), hbm_bytes: 40 * (1 << 30) }
    }

    /// An NVIDIA V100-32GB-like device (125 TFLOPs peak, ~35% MFU).
    pub fn v100_32g() -> Self {
        Self { flops: 44e12, dtoh: Bandwidth::from_gibps(10.0), hbm_bytes: 32 * (1 << 30) }
    }
}

/// The analytic training time model.
///
/// # Examples
///
/// ```
/// use ecc_dnn::{GpuSpec, ModelConfig, ParallelismSpec, TrainingTimeModel};
/// use ecc_sim::Bandwidth;
///
/// let model = ModelConfig::gpt2(1600, 32, 48);
/// let par = ParallelismSpec::new(4, 4, 1)?;
/// let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), Bandwidth::from_gbps(100.0))?;
/// let profile = tm.profile(2);
/// assert!(profile.idle_fraction() > 0.5); // training leaves the NIC mostly idle
/// # Ok::<(), ecc_dnn::DnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TrainingTimeModel {
    model: ModelConfig,
    par: ParallelismSpec,
    gpu: GpuSpec,
    nic: Bandwidth,
    microbatch_size: usize,
    num_microbatches: usize,
}

impl TrainingTimeModel {
    /// Creates a model with the paper-like defaults of 1-sample
    /// microbatches and 8 microbatches per iteration.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidParallelism`] when the model does not
    /// divide across the grid.
    pub fn new(
        model: ModelConfig,
        par: ParallelismSpec,
        gpu: GpuSpec,
        nic: Bandwidth,
    ) -> Result<Self, DnnError> {
        par.validate_for(&model)?;
        Ok(Self { model, par, gpu, nic, microbatch_size: 1, num_microbatches: 8 })
    }

    /// Overrides the microbatch size (samples per microbatch).
    pub fn with_microbatch_size(mut self, n: usize) -> Self {
        self.microbatch_size = n.max(1);
        self
    }

    /// Overrides the number of microbatches per iteration.
    pub fn with_num_microbatches(mut self, n: usize) -> Self {
        self.num_microbatches = n.max(1);
        self
    }

    /// The modelled GPU.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Forward+backward compute time of one microbatch on one pipeline
    /// stage (per worker; tensor parallelism divides the work).
    pub fn stage_compute_time(&self) -> SimDuration {
        let params_per_worker =
            self.model.param_count() as f64 / (self.par.pp() * self.par.tp()) as f64;
        let tokens = (self.microbatch_size * self.model.seq_len()) as f64;
        // 2 FLOPs/param/token forward, 4 backward.
        let flop = 6.0 * params_per_worker * tokens;
        SimDuration::from_secs_f64(flop / self.gpu.flops)
    }

    /// Bytes of one activation (or activation-gradient) transfer between
    /// adjacent pipeline stages (fp16).
    pub fn activation_bytes(&self) -> u64 {
        (self.microbatch_size * self.model.seq_len() * self.model.hidden() * 2) as u64
    }

    /// Duration of one inter-stage P2P transfer on the NIC.
    pub fn p2p_time(&self) -> SimDuration {
        self.nic.transfer_time(self.activation_bytes())
    }

    /// Duration of the data-parallel gradient all-reduce at the iteration
    /// tail (ring all-reduce: `2·(dp-1)/dp` times the fp16 gradient bytes
    /// per worker); zero when `dp == 1`.
    pub fn allreduce_time(&self) -> SimDuration {
        let dp = self.par.dp();
        if dp == 1 {
            return SimDuration::ZERO;
        }
        let grad_bytes =
            2.0 * self.model.param_count() as f64 / (self.par.pp() * self.par.tp()) as f64;
        let volume = 2.0 * (dp as f64 - 1.0) / dp as f64 * grad_bytes;
        self.nic.transfer_time(volume.ceil() as u64)
    }

    /// Time of one 1F1B training iteration: `(M + pp - 1)` pipeline slots
    /// of forward+backward compute plus per-slot P2P, then the gradient
    /// all-reduce.
    pub fn iteration_time(&self) -> SimDuration {
        let slots = (self.num_microbatches + self.par.pp() - 1) as u64;
        let slot = self.stage_compute_time() + self.p2p_time().scaled(2);
        slot.scaled(slots) + self.allreduce_time()
    }

    /// NIC busy/idle profile for `iterations` consecutive iterations,
    /// as seen from one pipeline-interior node.
    ///
    /// Each pipeline slot contributes two short busy windows (forward
    /// activation out, backward gradient in); `dp > 1` appends the
    /// all-reduce window at the iteration tail.
    pub fn profile(&self, iterations: usize) -> IterationProfile {
        let mut windows = BusyWindows::new();
        let iter_time = self.iteration_time();
        let slots = self.num_microbatches + self.par.pp() - 1;
        let slot_time = self.stage_compute_time() + self.p2p_time().scaled(2);
        let p2p = self.p2p_time();
        let compute = self.stage_compute_time();
        for it in 0..iterations {
            let iter_start = SimTime::ZERO + iter_time.scaled(it as u64);
            for s in 0..slots {
                let slot_start = iter_start + slot_time.scaled(s as u64);
                // Forward activation send at the start of the slot,
                // backward gradient send after the compute phase.
                windows.add_busy(slot_start, slot_start + p2p);
                let bwd = slot_start + p2p + compute;
                windows.add_busy(bwd, bwd + p2p);
            }
            let ar = self.allreduce_time();
            if ar > SimDuration::ZERO {
                let tail = iter_start + iter_time - ar;
                windows.add_busy(tail, tail + ar);
            }
        }
        IterationProfile { windows, iteration_time: iter_time, iterations }
    }
}

/// The result of (simulated) online profiling: iteration length and the
/// NIC busy windows across the profiled span.
#[derive(Debug, Clone)]
pub struct IterationProfile {
    windows: BusyWindows,
    iteration_time: SimDuration,
    iterations: usize,
}

impl IterationProfile {
    /// The busy-window timeline.
    pub fn windows(&self) -> &BusyWindows {
        &self.windows
    }

    /// Length of one training iteration.
    pub fn iteration_time(&self) -> SimDuration {
        self.iteration_time
    }

    /// Number of iterations covered by the profile.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// End of the profiled span.
    pub fn span_end(&self) -> SimTime {
        SimTime::ZERO + self.iteration_time.scaled(self.iterations as u64)
    }

    /// Fraction of the profiled span during which the NIC is idle.
    pub fn idle_fraction(&self) -> f64 {
        self.windows.idle_fraction_between(SimTime::ZERO, self.span_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_4node() -> (ModelConfig, ParallelismSpec) {
        (ModelConfig::gpt2(1600, 32, 48), ParallelismSpec::new(4, 4, 1).unwrap())
    }

    #[test]
    fn bigger_models_take_longer() {
        let par = ParallelismSpec::new(4, 4, 1).unwrap();
        let small = TrainingTimeModel::new(
            ModelConfig::gpt2(1600, 32, 48),
            par,
            GpuSpec::a100_40g(),
            Bandwidth::from_gbps(100.0),
        )
        .unwrap();
        let large = TrainingTimeModel::new(
            ModelConfig::gpt2(5120, 40, 64),
            par,
            GpuSpec::a100_40g(),
            Bandwidth::from_gbps(100.0),
        )
        .unwrap();
        assert!(large.iteration_time() > small.iteration_time());
    }

    #[test]
    fn iteration_time_is_plausible_for_a100() {
        // GPT-2 1.6B on 16 A100s with 8 microbatches of 1×1024 tokens:
        // expect an iteration in the hundreds of milliseconds to seconds.
        let (m, par) = model_4node();
        let tm = TrainingTimeModel::new(m, par, GpuSpec::a100_40g(), Bandwidth::from_gbps(100.0))
            .unwrap();
        let secs = tm.iteration_time().as_secs_f64();
        assert!((0.05..10.0).contains(&secs), "iteration {secs}s");
    }

    #[test]
    fn nic_is_mostly_idle_without_dp() {
        let (m, par) = model_4node();
        let tm = TrainingTimeModel::new(m, par, GpuSpec::a100_40g(), Bandwidth::from_gbps(100.0))
            .unwrap();
        let p = tm.profile(3);
        assert!(
            p.idle_fraction() > 0.8,
            "pipeline activations should leave most of the NIC idle (got {})",
            p.idle_fraction()
        );
    }

    #[test]
    fn dp_adds_allreduce_and_reduces_idle() {
        let m = ModelConfig::gpt2(1600, 32, 48);
        let solo = TrainingTimeModel::new(
            m,
            ParallelismSpec::new(4, 4, 1).unwrap(),
            GpuSpec::a100_40g(),
            Bandwidth::from_gbps(100.0),
        )
        .unwrap();
        let dp = TrainingTimeModel::new(
            m,
            ParallelismSpec::new(4, 4, 2).unwrap(),
            GpuSpec::a100_40g(),
            Bandwidth::from_gbps(100.0),
        )
        .unwrap();
        assert_eq!(solo.allreduce_time(), SimDuration::ZERO);
        assert!(dp.allreduce_time() > SimDuration::ZERO);
        assert!(dp.profile(2).idle_fraction() < solo.profile(2).idle_fraction());
    }

    #[test]
    fn profile_repeats_per_iteration() {
        let (m, par) = model_4node();
        let tm = TrainingTimeModel::new(m, par, GpuSpec::a100_40g(), Bandwidth::from_gbps(100.0))
            .unwrap();
        let one = tm.profile(1);
        let two = tm.profile(2);
        // Busy time doubles exactly (window *counts* may differ by one
        // because back-to-back transfers merge across the iteration seam).
        let busy = |p: &IterationProfile| p.windows().busy_between(SimTime::ZERO, p.span_end());
        assert_eq!(busy(&two), busy(&one).scaled(2));
        assert_eq!(two.span_end() - SimTime::ZERO, one.iteration_time().scaled(2));
    }

    #[test]
    fn more_microbatches_mean_more_busy_windows() {
        let (m, par) = model_4node();
        let base = TrainingTimeModel::new(m, par, GpuSpec::a100_40g(), Bandwidth::from_gbps(100.0))
            .unwrap();
        let more = base.clone().with_num_microbatches(16);
        assert!(more.profile(1).windows().busy().len() > base.profile(1).windows().busy().len());
    }

    #[test]
    fn slower_nic_means_longer_p2p() {
        let (m, par) = model_4node();
        let fast = TrainingTimeModel::new(m, par, GpuSpec::a100_40g(), Bandwidth::from_gbps(100.0))
            .unwrap();
        let slow = TrainingTimeModel::new(m, par, GpuSpec::a100_40g(), Bandwidth::from_gbps(10.0))
            .unwrap();
        assert!(slow.p2p_time() > fast.p2p_time());
    }

    #[test]
    fn v100_is_slower_than_a100() {
        let (m, par) = model_4node();
        let a = TrainingTimeModel::new(m, par, GpuSpec::a100_40g(), Bandwidth::from_gbps(100.0))
            .unwrap();
        let v = TrainingTimeModel::new(m, par, GpuSpec::v100_32g(), Bandwidth::from_gbps(100.0))
            .unwrap();
        assert!(v.iteration_time() > a.iteration_time());
    }
}
