//! Transformer model configurations (paper Table I).

use std::fmt;

use crate::ParallelismSpec;

/// Vocabulary size used throughout the paper's experiments (§V-B).
pub const PAPER_VOCAB: usize = 50_257;

/// Default sequence length for the synthetic workloads.
pub const DEFAULT_SEQ_LEN: usize = 1024;

/// Checkpoint bytes per parameter under Megatron-style mixed precision:
/// fp16 model weights (2 B) plus fp32 master weights, Adam first and
/// second moments (3 × 4 B).
pub const MIXED_PRECISION_BYTES_PER_PARAM: usize = 14;

/// Model family — the three benchmarks of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Decoder-only (GPT-2).
    Gpt2,
    /// Encoder-only (BERT).
    Bert,
    /// Encoder–decoder (T5).
    T5,
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelFamily::Gpt2 => "GPT-2",
            ModelFamily::Bert => "BERT",
            ModelFamily::T5 => "T5",
        };
        f.write_str(s)
    }
}

/// A transformer configuration: the knobs Table I varies plus the
/// constants the paper fixes (vocabulary of 50,257 tokens).
///
/// # Examples
///
/// ```
/// use ecc_dnn::ModelConfig;
///
/// // Table I row 1: GPT-2, hidden 1600, 32 heads, 48 layers ≈ 1.6B.
/// let m = ModelConfig::gpt2(1600, 32, 48);
/// let b = m.param_count() as f64 / 1e9;
/// assert!((1.4..1.8).contains(&b), "got {b}B params");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    family: ModelFamily,
    hidden: usize,
    heads: usize,
    layers: usize,
    vocab: usize,
    seq_len: usize,
}

impl ModelConfig {
    /// A GPT-2 configuration with the paper's vocabulary and sequence
    /// length.
    pub fn gpt2(hidden: usize, heads: usize, layers: usize) -> Self {
        Self::new(ModelFamily::Gpt2, hidden, heads, layers)
    }

    /// A BERT configuration with the paper's vocabulary and sequence
    /// length.
    pub fn bert(hidden: usize, heads: usize, layers: usize) -> Self {
        Self::new(ModelFamily::Bert, hidden, heads, layers)
    }

    /// A T5 configuration with the paper's vocabulary and sequence
    /// length. `layers` counts encoder plus decoder layers.
    pub fn t5(hidden: usize, heads: usize, layers: usize) -> Self {
        Self::new(ModelFamily::T5, hidden, heads, layers)
    }

    /// The GPT-2 345M used for the serialization-overhead motivation
    /// experiment (paper Fig. 4).
    pub fn gpt2_345m() -> Self {
        Self::gpt2(1024, 16, 24)
    }

    fn new(family: ModelFamily, hidden: usize, heads: usize, layers: usize) -> Self {
        Self { family, hidden, heads, layers, vocab: PAPER_VOCAB, seq_len: DEFAULT_SEQ_LEN }
    }

    /// Overrides the vocabulary size.
    pub fn with_vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// Overrides the sequence length.
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Model family.
    pub fn family(&self) -> ModelFamily {
        self.family
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Transformer layers (encoder + decoder for T5).
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Parameters of one transformer layer.
    ///
    /// Standard decoder/encoder layer: QKV (3h²+3h), attention output
    /// projection (h²+h), two-layer 4h MLP (8h²+5h), and two LayerNorms
    /// (4h) — ≈ 12h² + 13h. T5 decoder layers add cross-attention
    /// (≈ 4h² + 4h more); we use the per-layer average over an equal
    /// encoder/decoder split.
    pub fn params_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let base = 12 * h * h + 13 * h;
        match self.family {
            ModelFamily::Gpt2 | ModelFamily::Bert => base,
            // Half the layers (decoder) carry cross-attention: +4h²+4h,
            // so on average +2h²+2h per layer.
            ModelFamily::T5 => base + 2 * h * h + 2 * h,
        }
    }

    /// Embedding (and head) parameters outside the transformer stack.
    pub fn embedding_params(&self) -> u64 {
        let h = self.hidden as u64;
        let word = self.vocab as u64 * h;
        let pos = self.seq_len as u64 * h;
        match self.family {
            ModelFamily::Gpt2 => word + pos + 2 * h, // final LayerNorm
            ModelFamily::Bert => word + pos + 2 * h + (h * h + h), // pooler
            ModelFamily::T5 => word + 2 * h,         // T5 uses relative positions
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> u64 {
        self.params_per_layer() * self.layers as u64 + self.embedding_params()
    }

    /// Total checkpoint size in bytes under mixed-precision Adam
    /// (fp16 weights + fp32 master/momentum/variance).
    pub fn checkpoint_bytes(&self) -> u64 {
        self.param_count() * MIXED_PRECISION_BYTES_PER_PARAM as u64
    }

    /// Checkpoint bytes held by one worker under the given parallelism.
    ///
    /// Model-parallel dimensions (TP × PP) partition the checkpoint;
    /// replicated data parallelism does not divide the shard (each DP
    /// rank holds a full copy of its TP/PP shard), while FSDP shards
    /// across the DP dimension too.
    pub fn shard_bytes(&self, par: &ParallelismSpec) -> u64 {
        self.checkpoint_bytes() / par.model_shards() as u64
    }

    /// A short human-readable label like `GPT-2 5.3B`.
    pub fn label(&self) -> String {
        format!("{} {}", self.family, format_params(self.param_count()))
    }
}

/// Formats a parameter count as the paper does (e.g. `1.6B`, `345M`).
pub fn format_params(count: u64) -> String {
    if count >= 1_000_000_000 {
        format!("{:.1}B", count as f64 / 1e9)
    } else {
        format!("{:.0}M", count as f64 / 1e6)
    }
}

/// The nine configurations of Table I, with the paper's size labels.
pub fn table_i_configs() -> Vec<(ModelConfig, &'static str)> {
    let rows = [(1600, 32, 48, "1.6B"), (2560, 40, 64, "5.3B"), (5120, 40, 64, "20B")];
    let mut out = Vec::new();
    for ctor in [
        ModelConfig::gpt2 as fn(usize, usize, usize) -> ModelConfig,
        ModelConfig::bert,
        ModelConfig::t5,
    ] {
        for &(h, a, l, label) in &rows {
            out.push((ctor(h, a, l), label));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_sizes_match_paper_labels() {
        // The paper labels the three scales 1.6B / 5.3B / 20B. Our
        // analytic counts must land within 15% for GPT-2/BERT; T5 gets
        // 20% slack because the paper's uniform size labels ignore the
        // decoder's cross-attention parameters, which we do count.
        for (config, label) in table_i_configs() {
            let target = match label {
                "1.6B" => 1.6e9,
                "5.3B" => 5.3e9,
                "20B" => 20e9,
                other => panic!("unexpected label {other}"),
            };
            let slack = if matches!(config.family(), ModelFamily::T5) { 0.20 } else { 0.15 };
            let actual = config.param_count() as f64;
            let ratio = actual / target;
            assert!(
                (1.0 - slack..1.0 + slack).contains(&ratio),
                "{}: {actual:.3e} vs target {target:.3e} (ratio {ratio:.3})",
                config.label()
            );
        }
    }

    #[test]
    fn gpt2_345m_is_roughly_345m() {
        let p = ModelConfig::gpt2_345m().param_count() as f64;
        assert!((0.8..1.2).contains(&(p / 345e6)), "got {p:.3e}");
    }

    #[test]
    fn t5_has_more_params_per_layer_than_gpt2() {
        let g = ModelConfig::gpt2(1024, 16, 24);
        let t = ModelConfig::t5(1024, 16, 24);
        assert!(t.params_per_layer() > g.params_per_layer());
    }

    #[test]
    fn checkpoint_is_14_bytes_per_param() {
        let m = ModelConfig::gpt2(256, 4, 2);
        assert_eq!(m.checkpoint_bytes(), m.param_count() * 14);
    }

    #[test]
    fn shard_divides_by_model_parallel_degree() {
        let m = ModelConfig::gpt2(1600, 32, 48);
        let par = ParallelismSpec::new(4, 4, 1).unwrap();
        assert_eq!(m.shard_bytes(&par), m.checkpoint_bytes() / 16);
        // Replicated DP does not shrink the shard; FSDP does.
        let par_dp = ParallelismSpec::new(4, 4, 2).unwrap();
        assert_eq!(m.shard_bytes(&par_dp), m.shard_bytes(&par));
        let par_fsdp = ParallelismSpec::new(4, 4, 2).unwrap().with_fsdp();
        assert_eq!(m.shard_bytes(&par_fsdp), m.shard_bytes(&par) / 2);
    }

    #[test]
    fn labels_format_nicely() {
        assert_eq!(format_params(1_600_000_000), "1.6B");
        assert_eq!(format_params(345_000_000), "345M");
        let m = ModelConfig::gpt2(2560, 40, 64);
        assert!(m.label().starts_with("GPT-2"));
    }

    #[test]
    fn builders_override_constants() {
        let m = ModelConfig::gpt2(128, 4, 2).with_vocab(1000).with_seq_len(64);
        assert_eq!(m.vocab(), 1000);
        assert_eq!(m.seq_len(), 64);
        assert!(m.param_count() < ModelConfig::gpt2(128, 4, 2).param_count());
    }
}
