//! Cross-process contract tests over a loopback checkpoint server.
//!
//! Everything the engine promises on the in-memory plane must hold
//! verbatim when the plane lives behind a socket: bit-exact restore
//! in a *different* engine (standing in for a different OS process —
//! the CI `net` job repeats the drill with real processes), recovery
//! under ≤ m crashes, clean refusal past m, survival of the previous
//! checkpoint when the server dies mid-save, and an identical chaos
//! fault log whatever the transport.

use ecc_chaos::{run_campaign, run_campaign_on_plane, CampaignConfig, ChaosConfig, ChaosPlane};
use ecc_checkpoint::{StateDict, Value};
use ecc_cluster::{Cluster, ClusterError, ClusterSpec, DataPlane};
use ecc_net::{CheckpointServer, RemotePlane, ServerConfig};
use eccheck::{keys, EcCheck, EcCheckConfig, EcCheckError};

const NODES: usize = 4;
const GPUS: usize = 2;
const K: usize = 2;
const M: usize = 2;

fn start_server() -> (CheckpointServer<Cluster>, String) {
    let cluster = Cluster::new(ClusterSpec::tiny_test(NODES, GPUS));
    let server = CheckpointServer::serve(cluster, "127.0.0.1:0", ServerConfig::default())
        .expect("loopback bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn engine() -> EcCheck {
    let spec = ClusterSpec::tiny_test(NODES, GPUS);
    let cfg = EcCheckConfig::paper_defaults()
        .with_km(K, M)
        .with_packet_size(256)
        .with_remote_flush_every(0)
        .with_fetch_retries(2)
        .with_fetch_backoff(0, 0);
    EcCheck::initialize(&spec, cfg).expect("valid engine config")
}

fn dicts(tag: &str) -> Vec<StateDict> {
    (0..NODES * GPUS)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("tag", Value::Str(format!("{tag}-{w}")));
            sd.insert("payload", Value::Bytes((0..=200u8).map(|b| b ^ (w as u8)).collect()));
            sd
        })
        .collect()
}

/// A checkpoint saved by one engine restores bit-exactly in a fresh
/// engine that discovers and adopts it over the wire — the in-process
/// version of the two-OS-process CI drill.
#[test]
fn fresh_engine_adopts_and_restores_over_tcp() {
    let (server, addr) = start_server();

    let mut saver = RemotePlane::connect(&addr).expect("connect saver");
    let mut ecc_a = engine();
    let state = dicts("xproc");
    let report = ecc_a.save(&mut saver, &state).expect("save over tcp");
    assert_eq!(report.version, 1);
    drop(saver); // "process A" exits

    let mut loader = RemotePlane::connect(&addr).expect("connect loader");
    let mut ecc_b = engine();
    let version = keys::latest_manifest_version(&loader).expect("manifest is discoverable");
    assert_eq!(version, 1);
    ecc_b.adopt_version(&loader, version).expect("adopt");
    let (restored, _) = ecc_b.load(&mut loader).expect("load over tcp");
    assert_eq!(restored, state, "cross-engine restore must be bit-exact");

    server.shutdown();
}

/// ChaosPlane wraps the socket plane exactly like the in-memory one:
/// up to `m` crashes recover bit-exactly...
#[test]
fn chaos_over_tcp_recovers_within_budget() {
    let (server, addr) = start_server();
    let remote = RemotePlane::connect(&addr).expect("connect");
    let mut chaos = ChaosPlane::new(remote, ChaosConfig::quiet(11));

    let mut ecc = engine();
    let state = dicts("budget");
    ecc.save(&mut chaos, &state).expect("save");
    for node in 0..M {
        chaos.crash_now(node);
    }
    let (restored, report) = ecc.load(&mut chaos).expect("m crashes are survivable");
    assert_eq!(restored, state);
    assert!(report.rebuilt_chunks >= M);

    server.shutdown();
}

/// ...and past `m` the engine refuses cleanly, never returns garbage.
#[test]
fn chaos_over_tcp_refuses_past_budget() {
    let (server, addr) = start_server();
    let remote = RemotePlane::connect(&addr).expect("connect");
    let mut chaos = ChaosPlane::new(remote, ChaosConfig::quiet(13));

    let mut ecc = engine();
    ecc.save(&mut chaos, &dicts("pastm")).expect("save");
    for node in 0..=M {
        chaos.crash_now(node);
    }
    match ecc.load(&mut chaos) {
        Err(EcCheckError::Unrecoverable { survivors, needed, .. }) => {
            assert!(survivors < needed);
        }
        other => panic!("expected clean Unrecoverable, got {other:?}"),
    }

    server.shutdown();
}

/// A server that dies mid-save must fail the save with a structured
/// transport error — and the *previous* checkpoint must still restore
/// bit-exactly once the server is back.
#[test]
fn old_checkpoint_survives_connection_drop_mid_save() {
    let plane = std::sync::Arc::new(std::sync::Mutex::new(Cluster::new(ClusterSpec::tiny_test(
        NODES, GPUS,
    ))));

    // Healthy server: checkpoint v1 lands.
    let server = CheckpointServer::serve_shared(
        std::sync::Arc::clone(&plane),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let mut remote = RemotePlane::connect(&addr).expect("connect");
    let mut ecc = engine();
    let v1_state = dicts("v1");
    ecc.save(&mut remote, &v1_state).expect("v1 save");
    server.shutdown();

    // Restart over the same plane, rigged to wedge almost immediately:
    // the v2 save dies mid-flight with a Transport error.
    let rigged = ServerConfig { fail_after_requests: Some(3), ..ServerConfig::default() };
    let server = CheckpointServer::serve_shared(std::sync::Arc::clone(&plane), &addr, rigged)
        .expect("rebind");
    let mut remote = RemotePlane::connect(&addr).expect("reconnect");
    let err = ecc.save(&mut remote, &dicts("v2")).expect_err("wedged server must fail the save");
    let is_transport = matches!(&err, EcCheckError::Cluster(ClusterError::Transport { .. }));
    assert!(is_transport, "expected a transport failure, got {err:?}");
    assert_eq!(ecc.version(), 1, "a failed save must not advance the version");
    server.shutdown();

    // Healthy again: v1 is still the latest manifest and restores
    // bit-exactly in a fresh engine.
    let server = CheckpointServer::serve_shared(
        std::sync::Arc::clone(&plane),
        &addr,
        ServerConfig::default(),
    )
    .expect("rebind healthy");
    let mut remote = RemotePlane::connect(&addr).expect("reconnect healthy");
    let mut fresh = engine();
    let version = keys::latest_manifest_version(&remote).expect("manifest survives");
    assert_eq!(version, 1, "the half-written v2 must not be discoverable");
    fresh.adopt_version(&remote, version).expect("adopt v1");
    let (restored, _) = fresh.load(&mut remote).expect("v1 still loads");
    assert_eq!(restored, v1_state);
    server.shutdown();
}

/// The full seeded chaos campaign, ChaosPlane-over-socket: same
/// (config, seed) must produce the identical fault log and outcome
/// sequence as the in-memory campaign — the transport is invisible.
#[test]
fn campaign_fault_log_is_transport_invariant() {
    let cfg = CampaignConfig { rounds: 3, ..CampaignConfig::standard() };
    let seed = 21;

    let (server, addr) = start_server();
    let remote = RemotePlane::connect(&addr).expect("connect");
    let socket_report = run_campaign_on_plane(&cfg, seed, None, remote);
    server.shutdown();

    assert!(socket_report.passed(), "violations: {:?}", socket_report.violations);

    let memory_report = run_campaign(&cfg, seed);
    assert_eq!(
        socket_report.fault_log, memory_report.fault_log,
        "identical seeds must inject identical faults on both transports"
    );
    assert_eq!(socket_report.outcomes, memory_report.outcomes);
}

/// Raw plane semantics over the wire: quota errors round-trip as
/// structured `ClusterError`s, absent keys are `None`, key listing
/// and liveness work, and out-of-range admin ops are refused rather
/// than panicking the server.
#[test]
fn wire_plane_preserves_data_plane_semantics() {
    let (server, addr) = start_server();
    let mut remote = RemotePlane::connect(&addr).expect("connect");

    assert_eq!(remote.nodes(), NODES);
    assert!(remote.ping());
    assert!(remote.alive(0));
    assert!(!remote.alive(NODES + 5), "out-of-range node is not alive");

    assert_eq!(remote.get_local(0, "nope"), None);
    remote.put_local(0, "a", vec![1, 2, 3]).expect("put");
    remote.put_local(0, "b", vec![4]).expect("put");
    assert_eq!(remote.get_local(0, "a"), Some(vec![1, 2, 3]));
    assert_eq!(remote.local_keys(0), vec!["a".to_string(), "b".to_string()]);
    remote.delete_local(0, "a");
    assert_eq!(remote.get_local(0, "a"), None);

    remote.put_remote("r", vec![9, 9]);
    assert_eq!(remote.get_remote("r"), Some(vec![9, 9]));

    // A structured error survives the wire as the same variant.
    remote.fail_node(1).expect("fail in range");
    let err = remote.put_local(1, "x", vec![0]).expect_err("dead node refuses writes");
    assert_eq!(err, ClusterError::NodeDown { node: 1 });
    remote.replace_node(1).expect("replace in range");
    assert!(remote.alive(1));

    // Hostile admin input is refused, not a server panic.
    assert!(remote.fail_node(10_000).is_err());
    assert!(remote.replace_node(10_000).is_err());

    server.shutdown();
}

/// The elastic-membership protocol, end to end over loopback TCP: a
/// node dies, a `Join` rebuilds its chunk and commits epoch 1, the
/// stale engine is fenced off until it applies the `GetPlacement`
/// answer, and the checkpoint restores bit-exactly throughout.
#[test]
fn membership_churn_over_tcp_commits_epochs_and_fences_stale_engines() {
    use ecc_net::MembershipPlane;

    let spec = ClusterSpec::tiny_test(NODES, GPUS);
    let cfg = EcCheckConfig::paper_defaults().with_km(K, M).with_packet_size(256);
    let plane =
        MembershipPlane::new(Cluster::new(spec), &spec, &cfg).expect("k + m covers the node count");
    let server =
        CheckpointServer::serve(plane, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();

    let mut remote = RemotePlane::connect(&addr).expect("connect");
    let mut ecc = engine();
    let state = dicts("churn");
    ecc.save(&mut remote, &state).expect("initial save");

    // A plain server refuses membership ops; this one answers.
    let (epoch0, placement0) = remote.get_placement().expect("placement is served");
    assert_eq!(epoch0, 0);
    assert_eq!(placement0.k(), K);
    assert_eq!(placement0.m(), M);

    // Joining a healthy, living slot is refused — drain it instead.
    assert!(remote.join(1).is_err(), "a live active slot cannot be usurped");

    // Kill node 1 over the wire, then admit a replacement: the server
    // rebuilds the lost chunk from survivors and commits epoch 1.
    remote.fail_node(1).expect("kill node 1");
    let (epoch1, _) = remote.join(1).expect("join rebuilds and commits");
    assert_eq!(epoch1, 1);

    // The engine still believes epoch 0: the fence must refuse it.
    match ecc.save(&mut remote, &state) {
        Err(EcCheckError::StaleEpoch { engine, committed }) => {
            assert_eq!((engine, committed), (0, 1));
        }
        other => panic!("stale engine must be fenced, got {other:?}"),
    }

    // GetPlacement → apply → everything works again, bit-exactly.
    let (epoch, placement) = remote.get_placement().expect("refresh");
    ecc.apply_placement(epoch, placement).expect("apply");
    let (restored, _) = ecc.load(&mut remote).expect("load after churn");
    assert_eq!(restored, state, "checkpoint survives wire-driven churn bit-exactly");
    ecc.save(&mut remote, &state).expect("refreshed engine saves again");

    // A graceful drain stages bytes, then the replacement copies them.
    let (leave_epoch, _) = remote.leave(2).expect("drain slot 2");
    assert_eq!(leave_epoch, 1, "a drain alone does not move the epoch");
    remote.fail_node(2).expect("drained process exits");
    let (epoch2, _) = remote.join(2).expect("replacement joins");
    assert_eq!(epoch2, 2);

    let (epoch, placement) = remote.get_placement().expect("refresh again");
    ecc.apply_placement(epoch, placement).expect("apply again");
    let (restored, _) = ecc.load(&mut remote).expect("load after drain");
    assert_eq!(restored, state);

    server.shutdown();
}

/// A plane without a controller refuses the membership ops with a
/// readable transport error instead of a panic or a bogus answer.
#[test]
fn plain_server_refuses_membership_ops() {
    let (server, addr) = start_server();
    let remote = RemotePlane::connect(&addr).expect("connect");
    for result in [remote.get_placement(), remote.join(0), remote.leave(0)] {
        match result {
            Err(ClusterError::Transport { detail }) => {
                assert!(detail.contains("membership"), "unhelpful refusal: {detail}");
            }
            other => panic!("expected a structured refusal, got {other:?}"),
        }
    }
    server.shutdown();
}
