//! Hostile-input property suite for the wire codec.
//!
//! The decode path faces bytes from an arbitrary peer, so the
//! properties are absolute: **no panic, no unbounded allocation** on
//! any input — garbage decodes to a structured [`WireError`] — and
//! every legitimately encoded frame round-trips to an equal value.

use std::io::Cursor;

use ecc_net::codec::{
    decode_request, decode_response, encode_request, encode_response, read_frame, Request,
    Response, WireError,
};
use ecc_net::MAX_FRAME;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary payload bytes never panic the request decoder; they
    /// either parse (the fuzzer stumbled onto a valid encoding) or
    /// yield a structured error.
    #[test]
    fn garbage_never_panics_request_decode(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_request(&payload);
    }

    /// Same for the response decoder.
    #[test]
    fn garbage_never_panics_response_decode(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_response(&payload);
    }

    /// Arbitrary *streams* never panic the framer, and a hostile
    /// length prefix can never make it allocate past the cap: either
    /// the stream happens to contain a full in-cap frame, or the
    /// framer reports Truncated/Oversized.
    #[test]
    fn garbage_streams_never_panic_read_frame(
        stream in proptest::collection::vec(any::<u8>(), 0..256),
        cap in 0usize..64,
    ) {
        match read_frame(&mut Cursor::new(&stream), cap) {
            Ok(frame) => prop_assert!(frame.len() <= cap),
            Err(WireError::Truncated | WireError::Oversized { .. } | WireError::Io(_)) => {}
            Err(other) => prop_assert!(false, "unexpected framer error {other:?}"),
        }
    }

    /// Every encodable request survives encode → decode unchanged.
    #[test]
    fn requests_round_trip(
        op in 0usize..6,
        node in any::<u32>(),
        key in proptest::collection::vec(any::<u8>(), 0..40),
        blob in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let key: String = key.into_iter().map(|b| char::from(b'a' + b % 26)).collect();
        let req = match op {
            0 => Request::PutLocal { node, key, blob },
            1 => Request::GetLocal { node, key },
            2 => Request::DeleteLocal { node, key },
            3 => Request::PutRemote { key, blob },
            4 => Request::GetRemote { key },
            _ => Request::ListKeys { node },
        };
        prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
    }

    /// Every encodable response survives encode → decode unchanged,
    /// including structured cluster errors.
    #[test]
    fn responses_round_trip(
        kind in 0usize..5,
        blob in proptest::collection::vec(any::<u8>(), 0..200),
        n in any::<u32>(),
    ) {
        let resp = match kind {
            0 => Response::Ok,
            1 => Response::Blob(blob),
            2 => Response::NotFound,
            3 => Response::Count(n),
            _ => Response::Err(ecc_cluster::ClusterError::NodeDown { node: n as usize }),
        };
        prop_assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    /// A blob with any single bit flipped anywhere in its CRC-framed
    /// body must decode to CrcMismatch — never to a different blob.
    #[test]
    fn bit_flips_cannot_forge_blobs(
        blob in proptest::collection::vec(any::<u8>(), 1..64),
        flip_pos in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let mut encoded = encode_response(&Response::Blob(blob.clone()));
        // Flip within the blob body + CRC trailer (skip the status tag:
        // flipping that legitimately changes the response kind).
        let pos = 1 + (flip_pos as usize) % (encoded.len() - 1);
        encoded[pos] ^= 1 << flip_bit;
        match decode_response(&encoded) {
            Ok(Response::Blob(decoded)) => prop_assert_eq!(decoded, blob),
            Ok(other) => prop_assert!(false, "forged {other:?}"),
            Err(WireError::CrcMismatch | WireError::Truncated) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// The framer caps allocation strictly: a prefix advertising more
    /// than the cap is rejected even when the cap is MAX_FRAME.
    #[test]
    fn oversized_prefixes_rejected_at_full_cap(extra in 1u64..1_000_000) {
        let len = (MAX_FRAME as u64 + extra).min(u32::MAX as u64) as u32;
        let bytes = len.to_le_bytes();
        match read_frame(&mut Cursor::new(&bytes[..]), MAX_FRAME) {
            Err(WireError::Oversized { len: l, max }) => {
                prop_assert_eq!(l, u64::from(len));
                prop_assert_eq!(max, MAX_FRAME);
            }
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }
}
