//! The checkpoint wire protocol: length-prefixed frames carrying the
//! [`DataPlane`](ecc_cluster::DataPlane) operations.
//!
//! Every message is one frame: a `u32` little-endian payload length,
//! then the payload. The first payload byte is an op tag (requests) or
//! a status tag (responses); blob-carrying messages end in a 4-byte
//! CRC-32 trailer over the blob bytes — the same
//! [`ecc_checkpoint::checksum_frame`] the checkpoint store persists —
//! so in-flight corruption is caught at the codec, before a damaged
//! blob can masquerade as stored state.
//!
//! Decoding is hardened against hostile input: a length prefix above
//! the frame cap is rejected *before* any allocation, truncated frames
//! and short payloads surface as [`WireError::Truncated`], unknown
//! tags and malformed keys as their own structured errors, and no
//! input byte sequence can panic the decoder (`tests/codec_prop.rs`
//! drives it with garbage streams).

use std::fmt;
use std::io::{Read, Write};

use ecc_checkpoint::{checksum_frame, verify_checksum};
use ecc_cluster::ClusterError;

/// Default cap on a single frame's payload, comfortably above the
/// largest chunk the paper's 64 MB packets produce.
pub const MAX_FRAME: usize = 256 << 20;

/// Cap on key length: engine keys are tens of bytes, so anything
/// kilobytes long is garbage or an attack.
pub const MAX_KEY: usize = 4096;

/// A request frame, client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Store a blob in a node's host memory.
    PutLocal {
        /// Target node.
        node: u32,
        /// Blob key.
        key: String,
        /// Blob bytes.
        blob: Vec<u8>,
    },
    /// Read a blob from a node's host memory.
    GetLocal {
        /// Target node.
        node: u32,
        /// Blob key.
        key: String,
    },
    /// Delete a blob if present.
    DeleteLocal {
        /// Target node.
        node: u32,
        /// Blob key.
        key: String,
    },
    /// Store a blob in persistent remote storage.
    PutRemote {
        /// Blob key.
        key: String,
        /// Blob bytes.
        blob: Vec<u8>,
    },
    /// Read a blob from remote storage.
    GetRemote {
        /// Blob key.
        key: String,
    },
    /// Is the node alive?
    Alive {
        /// Target node.
        node: u32,
    },
    /// How many nodes does the plane expose?
    Nodes,
    /// Sorted keys stored on a node.
    ListKeys {
        /// Target node.
        node: u32,
    },
    /// Admin: fail a node (volatile memory lost).
    FailNode {
        /// Target node.
        node: u32,
    },
    /// Admin: bring a replacement node online (alive, empty).
    ReplaceNode {
        /// Target node.
        node: u32,
    },
    /// Membership: admit a replacement process into a vacated slot and
    /// rebalance. Answered with [`Response::Placement`] on success.
    Join {
        /// Target slot.
        node: u32,
    },
    /// Membership: announce a graceful drain of a slot (its bytes are
    /// staged before the replacement wipes them). Answered with
    /// [`Response::Placement`].
    Leave {
        /// Target slot.
        node: u32,
    },
    /// Membership: the current placement and epoch, for engines that
    /// were refused with a stale epoch and need to refresh.
    GetPlacement,
    /// Liveness probe of the server itself.
    Ping,
}

impl Request {
    /// The node id this request addresses, if any — wire input, so
    /// servers bounds-check it before indexing a plane with it.
    pub fn node(&self) -> Option<u32> {
        match self {
            Request::PutLocal { node, .. }
            | Request::GetLocal { node, .. }
            | Request::DeleteLocal { node, .. }
            | Request::Alive { node }
            | Request::ListKeys { node }
            | Request::FailNode { node }
            | Request::ReplaceNode { node }
            | Request::Join { node }
            | Request::Leave { node } => Some(*node),
            Request::PutRemote { .. }
            | Request::GetRemote { .. }
            | Request::Nodes
            | Request::GetPlacement
            | Request::Ping => None,
        }
    }
}

/// A response frame, server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The operation succeeded with nothing to return.
    Ok,
    /// A blob (CRC-framed on the wire).
    Blob(Vec<u8>),
    /// The addressed blob does not exist (distinct from an error).
    NotFound,
    /// A boolean answer (`Alive`).
    Bool(bool),
    /// A count (`Nodes`).
    Count(u32),
    /// A key listing (`ListKeys`).
    Keys(Vec<String>),
    /// The committed placement at an epoch (`Join`/`Leave`/
    /// `GetPlacement`). Node ids are slots; `group_size` is the GPUs
    /// per node the sweep-line placement grouped over.
    Placement {
        /// The placement epoch this layout was committed at.
        epoch: u64,
        /// Slots holding data chunks, in chunk order.
        data_nodes: Vec<u32>,
        /// Slots holding parity chunks, in chunk order.
        parity_nodes: Vec<u32>,
        /// GPUs per node.
        group_size: u32,
    },
    /// A structured data-plane error, round-tripped losslessly.
    Err(ClusterError),
}

/// Why a frame could not be read or decoded. Every hostile input maps
/// to one of these — never a panic, never an unbounded allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended mid-frame, or the payload is shorter than its
    /// fields demand.
    Truncated,
    /// The length prefix exceeds the frame cap (rejected before any
    /// allocation).
    Oversized {
        /// The advertised payload length.
        len: u64,
        /// The configured cap.
        max: usize,
    },
    /// An unknown request op tag.
    UnknownOp(u8),
    /// An unknown response status tag.
    UnknownStatus(u8),
    /// A blob's CRC trailer does not match its bytes.
    CrcMismatch,
    /// A key is longer than [`MAX_KEY`] or not valid UTF-8.
    BadKey,
    /// The underlying transport failed mid-frame.
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap of {max}")
            }
            WireError::UnknownOp(op) => write!(f, "unknown op tag {op:#04x}"),
            WireError::UnknownStatus(s) => write!(f, "unknown status tag {s:#04x}"),
            WireError::CrcMismatch => write!(f, "blob failed its CRC trailer"),
            WireError::BadKey => write!(f, "malformed key (too long or invalid UTF-8)"),
            WireError::Io(detail) => write!(f, "transport failed: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.to_string())
        }
    }
}

// Request op tags.
const OP_PUT_LOCAL: u8 = 0x01;
const OP_GET_LOCAL: u8 = 0x02;
const OP_DELETE_LOCAL: u8 = 0x03;
const OP_PUT_REMOTE: u8 = 0x04;
const OP_GET_REMOTE: u8 = 0x05;
const OP_ALIVE: u8 = 0x06;
const OP_NODES: u8 = 0x07;
const OP_LIST_KEYS: u8 = 0x08;
const OP_FAIL_NODE: u8 = 0x09;
const OP_REPLACE_NODE: u8 = 0x0A;
const OP_PING: u8 = 0x0B;
const OP_JOIN: u8 = 0x0C;
const OP_LEAVE: u8 = 0x0D;
const OP_GET_PLACEMENT: u8 = 0x0E;

// Response status tags.
const ST_OK: u8 = 0x80;
const ST_BLOB: u8 = 0x81;
const ST_NOT_FOUND: u8 = 0x82;
const ST_BOOL: u8 = 0x83;
const ST_COUNT: u8 = 0x84;
const ST_KEYS: u8 = 0x85;
const ST_PLACEMENT: u8 = 0x86;
const ST_ERR: u8 = 0x8F;

// ClusterError variant tags inside an ST_ERR payload.
const ERR_NODE_DOWN: u8 = 0;
const ERR_NO_SUCH_NODE: u8 = 1;
const ERR_NO_SUCH_BLOB: u8 = 2;
const ERR_OUT_OF_MEMORY: u8 = 3;
const ERR_TRANSPORT: u8 = 4;

/// Reads one frame: the length prefix, cap check, then the payload.
///
/// # Errors
///
/// [`WireError::Oversized`] for prefixes above `max_frame` (before any
/// allocation), [`WireError::Truncated`] for a stream that ends
/// mid-frame, [`WireError::Io`] for other transport failures.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(WireError::Oversized { len: len as u64, max: max_frame });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes one frame: length prefix then payload.
///
/// # Errors
///
/// Transport failures as [`WireError::Io`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| WireError::Oversized { len: payload.len() as u64, max: u32::MAX as usize })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// A bounds-checked payload reader; every accessor fails with
/// [`WireError::Truncated`] instead of slicing out of range.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// A length-prefixed UTF-8 key, capped at [`MAX_KEY`].
    fn key(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        if len > MAX_KEY {
            return Err(WireError::BadKey);
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadKey)
    }

    /// All remaining bytes as a CRC-framed blob: the last 4 bytes are
    /// the [`checksum_frame`] of everything before them.
    fn crc_blob(&mut self) -> Result<Vec<u8>, WireError> {
        let rest = &self.buf[self.pos..];
        if rest.len() < 4 {
            return Err(WireError::Truncated);
        }
        let (blob, crc) = rest.split_at(rest.len() - 4);
        if !verify_checksum(blob, crc) {
            return Err(WireError::CrcMismatch);
        }
        self.pos = self.buf.len();
        Ok(blob.to_vec())
    }

    /// The payload must be fully consumed; trailing garbage means the
    /// frame does not say what its op tag claims.
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Truncated)
        }
    }
}

fn push_key(out: &mut Vec<u8>, key: &str) {
    debug_assert!(key.len() <= MAX_KEY, "callers build keys, not attackers");
    let len = key.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&key.as_bytes()[..len as usize]);
}

fn push_crc_blob(out: &mut Vec<u8>, blob: &[u8]) {
    out.extend_from_slice(blob);
    out.extend_from_slice(&checksum_frame(blob));
}

/// Encodes a request payload (no length prefix; pair with
/// [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::PutLocal { node, key, blob } => {
            out.push(OP_PUT_LOCAL);
            out.extend_from_slice(&node.to_le_bytes());
            push_key(&mut out, key);
            push_crc_blob(&mut out, blob);
        }
        Request::GetLocal { node, key } => {
            out.push(OP_GET_LOCAL);
            out.extend_from_slice(&node.to_le_bytes());
            push_key(&mut out, key);
        }
        Request::DeleteLocal { node, key } => {
            out.push(OP_DELETE_LOCAL);
            out.extend_from_slice(&node.to_le_bytes());
            push_key(&mut out, key);
        }
        Request::PutRemote { key, blob } => {
            out.push(OP_PUT_REMOTE);
            push_key(&mut out, key);
            push_crc_blob(&mut out, blob);
        }
        Request::GetRemote { key } => {
            out.push(OP_GET_REMOTE);
            push_key(&mut out, key);
        }
        Request::Alive { node } => {
            out.push(OP_ALIVE);
            out.extend_from_slice(&node.to_le_bytes());
        }
        Request::Nodes => out.push(OP_NODES),
        Request::ListKeys { node } => {
            out.push(OP_LIST_KEYS);
            out.extend_from_slice(&node.to_le_bytes());
        }
        Request::FailNode { node } => {
            out.push(OP_FAIL_NODE);
            out.extend_from_slice(&node.to_le_bytes());
        }
        Request::ReplaceNode { node } => {
            out.push(OP_REPLACE_NODE);
            out.extend_from_slice(&node.to_le_bytes());
        }
        Request::Join { node } => {
            out.push(OP_JOIN);
            out.extend_from_slice(&node.to_le_bytes());
        }
        Request::Leave { node } => {
            out.push(OP_LEAVE);
            out.extend_from_slice(&node.to_le_bytes());
        }
        Request::GetPlacement => out.push(OP_GET_PLACEMENT),
        Request::Ping => out.push(OP_PING),
    }
    out
}

/// Decodes a request payload.
///
/// # Errors
///
/// Structured [`WireError`]s for every malformed input; never panics.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let req = match op {
        OP_PUT_LOCAL => {
            let node = c.u32()?;
            let key = c.key()?;
            let blob = c.crc_blob()?;
            Request::PutLocal { node, key, blob }
        }
        OP_GET_LOCAL => Request::GetLocal { node: c.u32()?, key: c.key()? },
        OP_DELETE_LOCAL => Request::DeleteLocal { node: c.u32()?, key: c.key()? },
        OP_PUT_REMOTE => {
            let key = c.key()?;
            let blob = c.crc_blob()?;
            Request::PutRemote { key, blob }
        }
        OP_GET_REMOTE => Request::GetRemote { key: c.key()? },
        OP_ALIVE => Request::Alive { node: c.u32()? },
        OP_NODES => Request::Nodes,
        OP_LIST_KEYS => Request::ListKeys { node: c.u32()? },
        OP_FAIL_NODE => Request::FailNode { node: c.u32()? },
        OP_REPLACE_NODE => Request::ReplaceNode { node: c.u32()? },
        OP_JOIN => Request::Join { node: c.u32()? },
        OP_LEAVE => Request::Leave { node: c.u32()? },
        OP_GET_PLACEMENT => Request::GetPlacement,
        OP_PING => Request::Ping,
        other => return Err(WireError::UnknownOp(other)),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a response payload (no length prefix; pair with
/// [`write_frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Ok => out.push(ST_OK),
        Response::Blob(blob) => {
            out.push(ST_BLOB);
            push_crc_blob(&mut out, blob);
        }
        Response::NotFound => out.push(ST_NOT_FOUND),
        Response::Bool(b) => {
            out.push(ST_BOOL);
            out.push(u8::from(*b));
        }
        Response::Count(n) => {
            out.push(ST_COUNT);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Response::Keys(keys) => {
            out.push(ST_KEYS);
            out.extend_from_slice(&(keys.len().min(u32::MAX as usize) as u32).to_le_bytes());
            for key in keys {
                push_key(&mut out, key);
            }
        }
        Response::Placement { epoch, data_nodes, parity_nodes, group_size } => {
            out.push(ST_PLACEMENT);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&group_size.to_le_bytes());
            push_nodes(&mut out, data_nodes);
            push_nodes(&mut out, parity_nodes);
        }
        Response::Err(e) => {
            out.push(ST_ERR);
            encode_cluster_error(&mut out, e);
        }
    }
    out
}

fn push_nodes(out: &mut Vec<u8>, nodes: &[u32]) {
    out.extend_from_slice(&(nodes.len().min(u32::MAX as usize) as u32).to_le_bytes());
    for node in nodes {
        out.extend_from_slice(&node.to_le_bytes());
    }
}

fn encode_cluster_error(out: &mut Vec<u8>, e: &ClusterError) {
    match e {
        ClusterError::NodeDown { node } => {
            out.push(ERR_NODE_DOWN);
            out.extend_from_slice(&(*node as u32).to_le_bytes());
        }
        ClusterError::NoSuchNode { node } => {
            out.push(ERR_NO_SUCH_NODE);
            out.extend_from_slice(&(*node as u32).to_le_bytes());
        }
        ClusterError::NoSuchBlob { key } => {
            out.push(ERR_NO_SUCH_BLOB);
            push_key(out, key);
        }
        ClusterError::OutOfMemory { node, requested, available } => {
            out.push(ERR_OUT_OF_MEMORY);
            out.extend_from_slice(&(*node as u32).to_le_bytes());
            out.extend_from_slice(&requested.to_le_bytes());
            out.extend_from_slice(&available.to_le_bytes());
        }
        ClusterError::Transport { detail } => {
            out.push(ERR_TRANSPORT);
            push_key(out, &detail.chars().take(512).collect::<String>());
        }
        // `ClusterError` is non_exhaustive: degrade unknown future
        // variants to a transport error carrying their Display text.
        other => {
            out.push(ERR_TRANSPORT);
            push_key(out, &other.to_string().chars().take(512).collect::<String>());
        }
    }
}

fn decode_cluster_error(c: &mut Cursor<'_>) -> Result<ClusterError, WireError> {
    let tag = c.u8()?;
    Ok(match tag {
        ERR_NODE_DOWN => ClusterError::NodeDown { node: c.u32()? as usize },
        ERR_NO_SUCH_NODE => ClusterError::NoSuchNode { node: c.u32()? as usize },
        ERR_NO_SUCH_BLOB => ClusterError::NoSuchBlob { key: c.key()? },
        ERR_OUT_OF_MEMORY => ClusterError::OutOfMemory {
            node: c.u32()? as usize,
            requested: c.u64()?,
            available: c.u64()?,
        },
        ERR_TRANSPORT => ClusterError::Transport { detail: c.key()? },
        other => return Err(WireError::UnknownStatus(other)),
    })
}

/// A length-prefixed `u32` slot list. Like `Keys`, a hostile count
/// cannot force an allocation beyond what the cap-checked payload can
/// actually hold.
fn take_nodes(c: &mut Cursor<'_>, payload_len: usize) -> Result<Vec<u32>, WireError> {
    let count = c.u32()? as usize;
    let mut nodes = Vec::with_capacity(count.min(payload_len / 4 + 1));
    for _ in 0..count {
        nodes.push(c.u32()?);
    }
    Ok(nodes)
}

/// Decodes a response payload.
///
/// # Errors
///
/// Structured [`WireError`]s for every malformed input; never panics.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cursor::new(payload);
    let status = c.u8()?;
    let resp = match status {
        ST_OK => Response::Ok,
        ST_BLOB => Response::Blob(c.crc_blob()?),
        ST_NOT_FOUND => Response::NotFound,
        ST_BOOL => Response::Bool(c.u8()? != 0),
        ST_COUNT => Response::Count(c.u32()?),
        ST_KEYS => {
            let count = c.u32()? as usize;
            // A hostile count cannot force an allocation beyond what
            // the (already cap-checked) payload can actually hold.
            let mut keys = Vec::with_capacity(count.min(payload.len() / 2 + 1));
            for _ in 0..count {
                keys.push(c.key()?);
            }
            Response::Keys(keys)
        }
        ST_PLACEMENT => {
            let epoch = c.u64()?;
            let group_size = c.u32()?;
            let data_nodes = take_nodes(&mut c, payload.len())?;
            let parity_nodes = take_nodes(&mut c, payload.len())?;
            Response::Placement { epoch, data_nodes, parity_nodes, group_size }
        }
        ST_ERR => Response::Err(decode_cluster_error(&mut c)?),
        other => return Err(WireError::UnknownStatus(other)),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = encode_request(&req);
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let payload = encode_response(&resp);
        assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    #[test]
    fn all_requests_round_trip() {
        round_trip_request(Request::PutLocal {
            node: 3,
            key: "ecc/v1/chunk".into(),
            blob: vec![7; 1024],
        });
        round_trip_request(Request::GetLocal { node: 0, key: "k".into() });
        round_trip_request(Request::DeleteLocal { node: 1, key: String::new() });
        round_trip_request(Request::PutRemote { key: "remote/x".into(), blob: Vec::new() });
        round_trip_request(Request::GetRemote { key: "remote/x".into() });
        round_trip_request(Request::Alive { node: 9 });
        round_trip_request(Request::Nodes);
        round_trip_request(Request::ListKeys { node: 2 });
        round_trip_request(Request::FailNode { node: 2 });
        round_trip_request(Request::ReplaceNode { node: 2 });
        round_trip_request(Request::Join { node: 3 });
        round_trip_request(Request::Leave { node: 0 });
        round_trip_request(Request::GetPlacement);
        round_trip_request(Request::Ping);
    }

    #[test]
    fn all_responses_round_trip() {
        round_trip_response(Response::Ok);
        round_trip_response(Response::Blob(vec![0xAB; 64]));
        round_trip_response(Response::Blob(Vec::new()));
        round_trip_response(Response::NotFound);
        round_trip_response(Response::Bool(true));
        round_trip_response(Response::Bool(false));
        round_trip_response(Response::Count(4));
        round_trip_response(Response::Keys(vec!["a".into(), "b/c".into(), String::new()]));
        round_trip_response(Response::Placement {
            epoch: 7,
            data_nodes: vec![0, 1],
            parity_nodes: vec![3, 2],
            group_size: 2,
        });
        round_trip_response(Response::Placement {
            epoch: 0,
            data_nodes: Vec::new(),
            parity_nodes: Vec::new(),
            group_size: 1,
        });
        round_trip_response(Response::Err(ClusterError::NodeDown { node: 2 }));
        round_trip_response(Response::Err(ClusterError::NoSuchNode { node: 7 }));
        round_trip_response(Response::Err(ClusterError::NoSuchBlob { key: "gone".into() }));
        round_trip_response(Response::Err(ClusterError::OutOfMemory {
            node: 1,
            requested: 1 << 40,
            available: 3,
        }));
        round_trip_response(Response::Err(ClusterError::Transport { detail: "refused".into() }));
    }

    #[test]
    fn frame_io_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap(), b"hello");
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r, 1024), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn truncated_frames_are_truncated_errors() {
        let mut full = Vec::new();
        write_frame(&mut full, &encode_request(&Request::Ping)).unwrap();
        for cut in 0..full.len() {
            let mut r = &full[..cut];
            assert!(
                matches!(read_frame(&mut r, MAX_FRAME), Err(WireError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn corrupted_blob_is_a_crc_mismatch() {
        let mut payload =
            encode_request(&Request::PutLocal { node: 0, key: "k".into(), blob: vec![1, 2, 3, 4] });
        let blob_byte = payload.len() - 6; // inside the blob, before the CRC
        payload[blob_byte] ^= 0xFF;
        assert_eq!(decode_request(&payload), Err(WireError::CrcMismatch));
    }

    #[test]
    fn unknown_tags_are_structured_errors() {
        assert_eq!(decode_request(&[0x55]), Err(WireError::UnknownOp(0x55)));
        assert_eq!(decode_response(&[0x01]), Err(WireError::UnknownStatus(0x01)));
        assert_eq!(decode_request(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = encode_request(&Request::Ping);
        payload.push(0);
        assert_eq!(decode_request(&payload), Err(WireError::Truncated));
    }

    #[test]
    fn hostile_placement_counts_cannot_over_allocate() {
        // Claims 2^32 - 1 slots but carries none: must fail with
        // Truncated, not OOM or panic.
        let mut payload = vec![ST_PLACEMENT];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_response(&payload), Err(WireError::Truncated));
    }

    #[test]
    fn oversized_key_is_bad_key() {
        let mut payload = vec![OP_GET_REMOTE];
        payload.extend_from_slice(&(MAX_KEY as u16 + 1).to_le_bytes());
        payload.extend(std::iter::repeat_n(b'x', MAX_KEY + 1));
        assert_eq!(decode_request(&payload), Err(WireError::BadKey));
    }
}
