//! `net-roundtrip`: drives the ECCheck engine against a live
//! checkpoint server, one leg per process, so CI can prove the
//! cross-process contract:
//!
//! ```text
//! net-roundtrip save  ADDR [--seed S] [--gpus G] [--k K] [--m M]
//! net-roundtrip load  ADDR [--seed S] [--gpus G] [--k K] [--m M] [--fail-node N]
//! net-roundtrip chaos ADDR [--seed S] [--rounds R] [--out FILE]
//! net-roundtrip churn ADDR [--seed S] [--gpus G] [--k K] [--m M] [--rounds R] [--out FILE]
//! ```
//!
//! * `save` checkpoints a deterministic, seed-derived state through a
//!   [`RemotePlane`] and exits.
//! * `load` — run as a *different OS process* — discovers the latest
//!   checkpoint version on the server, adopts it into a fresh engine,
//!   optionally crashes a node first (`--fail-node`), restores, and
//!   verifies the state is **bit-exactly** what `save` wrote (it
//!   regenerates the expected state from the same seed).
//! * `chaos` runs the seeded chaos campaign with a `ChaosPlane`
//!   wrapping the socket plane, then re-runs the identical campaign
//!   in-memory and asserts the two fault logs and outcome sequences
//!   match — the cross-plane differential. `--out` writes the socket
//!   run's fault log as a JSON artifact.
//! * `churn` drives the elastic-membership protocol end to end
//!   against a server started with `--membership`: each round kills a
//!   node over the wire, `Join`s a replacement (the server rebuilds
//!   the lost chunk and commits a new placement epoch), proves the
//!   engine's epoch fence refuses the now-stale engine, refreshes it
//!   with `GetPlacement`, and restores bit-exactly. `--out` writes a
//!   per-round epoch log as a JSON artifact.
//!
//! Exit status: 0 on success, 1 on any contract violation or
//! transport failure, 2 on usage errors.

use ecc_chaos::{run_campaign, run_campaign_on_plane, CampaignConfig};
use ecc_checkpoint::{StateDict, Value};
use ecc_cluster::ClusterSpec;
use ecc_net::RemotePlane;
use eccheck::{keys, EcCheck, EcCheckConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn usage() -> ! {
    eprintln!(
        "usage: net-roundtrip save  ADDR [--seed S] [--gpus G] [--k K] [--m M]\n\
         \u{20}      net-roundtrip load  ADDR [--seed S] [--gpus G] [--k K] [--m M] [--fail-node N]\n\
         \u{20}      net-roundtrip chaos ADDR [--seed S] [--rounds R] [--out FILE]\n\
         \u{20}      net-roundtrip churn ADDR [--seed S] [--gpus G] [--k K] [--m M] [--rounds R] [--out FILE]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("net-roundtrip: {msg}");
    std::process::exit(1);
}

/// The deterministic state both `save` and `load` derive from the
/// seed: same generator as the chaos campaign's per-round dicts, so
/// "bit-exact" means every tensor byte, not just the metadata.
fn expected_dicts(world: usize, seed: u64) -> Vec<StateDict> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0DDB_A115);
    (0..world)
        .map(|w| {
            let mut sd = StateDict::new();
            sd.insert("iteration", Value::Int(7));
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("tag", Value::Str(format!("net-s{seed}-w{w}")));
            let len = 64 + rng.gen_range(0..256usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u8)).collect();
            sd.insert("payload", Value::Bytes(payload));
            sd
        })
        .collect()
}

struct Opts {
    addr: String,
    seed: u64,
    gpus: usize,
    k: usize,
    m: usize,
    fail_node: Option<usize>,
    rounds: usize,
    out: Option<String>,
}

fn parse_opts(mut args: std::env::Args) -> Opts {
    let addr = args.next().unwrap_or_else(|| usage());
    let mut opts =
        Opts { addr, seed: 42, gpus: 2, k: 2, m: 2, fail_node: None, rounds: 3, out: None };
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--seed" => opts.seed = value().parse().unwrap_or_else(|_| usage()),
            "--gpus" => opts.gpus = value().parse().unwrap_or_else(|_| usage()),
            "--k" => opts.k = value().parse().unwrap_or_else(|_| usage()),
            "--m" => opts.m = value().parse().unwrap_or_else(|_| usage()),
            "--fail-node" => opts.fail_node = Some(value().parse().unwrap_or_else(|_| usage())),
            "--rounds" => opts.rounds = value().parse().unwrap_or_else(|_| usage()),
            "--out" => opts.out = Some(value()),
            _ => usage(),
        }
    }
    opts
}

fn connect(addr: &str) -> RemotePlane {
    match RemotePlane::connect(addr) {
        Ok(p) => p,
        Err(e) => fail(&format!("cannot reach checkpoint server at {addr}: {e}")),
    }
}

fn engine_for(plane: &RemotePlane, opts: &Opts) -> (EcCheck, ClusterSpec, usize) {
    use ecc_cluster::DataPlane;
    let nodes = plane.nodes();
    if nodes != opts.k + opts.m {
        fail(&format!("server has {nodes} nodes but k + m = {}", opts.k + opts.m));
    }
    let spec = ClusterSpec::tiny_test(nodes, opts.gpus);
    let cfg = EcCheckConfig::paper_defaults()
        .with_km(opts.k, opts.m)
        .with_packet_size(256)
        .with_remote_flush_every(0)
        .with_fetch_retries(2);
    let ecc = EcCheck::initialize(&spec, cfg)
        .unwrap_or_else(|e| fail(&format!("bad engine config: {e}")));
    let world = nodes * opts.gpus;
    (ecc, spec, world)
}

fn cmd_save(opts: &Opts) {
    let mut plane = connect(&opts.addr);
    let (mut ecc, _spec, world) = engine_for(&plane, opts);
    let dicts = expected_dicts(world, opts.seed);
    match ecc.save(&mut plane, &dicts) {
        Ok(report) => {
            println!(
                "saved v{} ({} bytes encoded) over {}",
                report.version, report.encoded_bytes, opts.addr
            );
        }
        Err(e) => fail(&format!("save over {} failed: {e}", opts.addr)),
    }
}

fn cmd_load(opts: &Opts) {
    let mut plane = connect(&opts.addr);
    let (mut ecc, _spec, world) = engine_for(&plane, opts);

    let version = keys::latest_manifest_version(&plane)
        .unwrap_or_else(|| fail("no checkpoint manifest found on the server"));
    ecc.adopt_version(&plane, version)
        .unwrap_or_else(|e| fail(&format!("cannot adopt v{version}: {e}")));

    if let Some(node) = opts.fail_node {
        plane.fail_node(node).unwrap_or_else(|e| fail(&format!("cannot fail node {node}: {e}")));
        eprintln!("net-roundtrip: failed node {node} before restore");
    }

    let (restored, report) = match ecc.load(&mut plane) {
        Ok(r) => r,
        Err(e) => fail(&format!("load of v{version} failed: {e}")),
    };
    let expected = expected_dicts(world, opts.seed);
    if restored != expected {
        fail(&format!("restored state of v{version} is NOT bit-exact (seed {})", opts.seed));
    }
    println!(
        "restored v{version} bit-exactly in a fresh process ({} chunks rebuilt)",
        report.rebuilt_chunks
    );
}

fn cmd_chaos(opts: &Opts) {
    let plane = connect(&opts.addr);
    let cfg = CampaignConfig { rounds: opts.rounds, ..CampaignConfig::standard() };

    let socket_report = run_campaign_on_plane(&cfg, opts.seed, None, plane);
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, socket_report.fault_log_json()) {
            fail(&format!("cannot write fault log to {path}: {e}"));
        }
    }
    if !socket_report.passed() {
        fail(&format!(
            "socket campaign violated the recovery contract: {:?}",
            socket_report.violations
        ));
    }

    // The differential: the same (config, seed) in-memory must inject
    // the identical fault sequence and reach the identical verdicts.
    let memory_report = run_campaign(&cfg, opts.seed);
    if socket_report.fault_log != memory_report.fault_log {
        fail(&format!(
            "fault logs diverge between transports: socket injected {} faults, memory {}",
            socket_report.fault_log.len(),
            memory_report.fault_log.len()
        ));
    }
    if socket_report.outcomes != memory_report.outcomes {
        fail("campaign outcomes diverge between socket and in-memory planes");
    }
    println!(
        "chaos campaign over {}: {} rounds, {} faults, outcomes identical to in-memory run",
        opts.addr,
        socket_report.outcomes.len(),
        socket_report.fault_log.len()
    );
}

/// Drives the full membership protocol over the wire: kill → Join →
/// epoch fence trips → GetPlacement refresh → bit-exact restore, once
/// per round, each round retiring a different slot.
fn cmd_churn(opts: &Opts) {
    use eccheck::EcCheckError;

    let mut plane = connect(&opts.addr);
    let (mut ecc, _spec, world) = engine_for(&plane, opts);
    let nodes = opts.k + opts.m;
    let dicts = expected_dicts(world, opts.seed);
    ecc.save(&mut plane, &dicts).unwrap_or_else(|e| fail(&format!("initial save failed: {e}")));

    let mut rounds_json = Vec::new();
    for round in 1..=opts.rounds {
        let victim = (round - 1) % nodes;
        plane
            .fail_node(victim)
            .unwrap_or_else(|e| fail(&format!("round {round}: cannot kill node {victim}: {e}")));
        let (epoch, _) = plane.join(victim).unwrap_or_else(|e| {
            fail(&format!("round {round}: join of slot {victim} refused: {e}"))
        });
        if epoch != round as u64 {
            fail(&format!("round {round}: epoch is {epoch}, not strictly monotone"));
        }

        // The engine has not heard about the new epoch: the fence must
        // refuse its save rather than write under a retired layout.
        match ecc.save(&mut plane, &dicts) {
            Err(EcCheckError::StaleEpoch { .. }) => {}
            Ok(_) => fail(&format!("round {round}: stale engine saved anyway — fence broken")),
            Err(e) => fail(&format!("round {round}: expected a stale-epoch refusal, got: {e}")),
        }
        let (fresh_epoch, placement) = plane
            .get_placement()
            .unwrap_or_else(|e| fail(&format!("round {round}: GetPlacement failed: {e}")));
        ecc.apply_placement(fresh_epoch, placement)
            .unwrap_or_else(|e| fail(&format!("round {round}: cannot apply placement: {e}")));

        let (restored, _) = ecc
            .load(&mut plane)
            .unwrap_or_else(|e| fail(&format!("round {round}: load after churn failed: {e}")));
        if restored != dicts {
            fail(&format!("round {round}: restore after churn is NOT bit-exact"));
        }
        ecc.save(&mut plane, &dicts)
            .unwrap_or_else(|e| fail(&format!("round {round}: refreshed save failed: {e}")));
        rounds_json.push(format!("{{\"round\":{round},\"victim\":{victim},\"epoch\":{epoch}}}"));
        eprintln!("net-roundtrip: round {round}: slot {victim} churned, epoch {epoch}");
    }

    if let Some(path) = &opts.out {
        let json = format!(
            "{{\"seed\":{},\"rounds\":[{}],\"final_epoch\":{}}}\n",
            opts.seed,
            rounds_json.join(","),
            opts.rounds
        );
        if let Err(e) = std::fs::write(path, json) {
            fail(&format!("cannot write epoch log to {path}: {e}"));
        }
    }
    println!(
        "churned {} rounds over {}: every join committed a monotone epoch, \
         every stale save was fenced, every restore was bit-exact",
        opts.rounds, opts.addr
    );
}

fn main() {
    let mut args = std::env::args();
    let _argv0 = args.next();
    let cmd = args.next().unwrap_or_else(|| usage());
    let opts = parse_opts(args);
    match cmd.as_str() {
        "save" => cmd_save(&opts),
        "load" => cmd_load(&opts),
        "chaos" => cmd_chaos(&opts),
        "churn" => cmd_churn(&opts),
        _ => usage(),
    }
}
