//! `eccheck-server`: hosts an in-memory cluster data plane over TCP.
//!
//! ```text
//! eccheck-server [--addr HOST:PORT] [--nodes N] [--gpus G]
//!                [--fail-after-requests R] [--membership] [--k K] [--m M]
//! ```
//!
//! Prints the bound address on stdout (one line, flushed) so scripts
//! using port 0 can discover the ephemeral port, then serves until
//! killed. `--fail-after-requests` wedges the server after serving
//! that many requests — the fault-injection mode the CI connection-
//! drop drill uses. `--membership` serves the cluster behind a
//! placement controller so the `Join`/`Leave`/`GetPlacement` wire ops
//! work (`--k`/`--m` set its erasure split; they must sum to
//! `--nodes`).

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_net::{CheckpointServer, MembershipPlane, ServerConfig};
use eccheck::EcCheckConfig;

fn usage() -> ! {
    eprintln!(
        "usage: eccheck-server [--addr HOST:PORT] [--nodes N] [--gpus G] \
         [--fail-after-requests R] [--membership] [--k K] [--m M]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut nodes = 4usize;
    let mut gpus = 2usize;
    let mut membership = false;
    let mut k = 2usize;
    let mut m = 2usize;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--nodes" => nodes = value().parse().unwrap_or_else(|_| usage()),
            "--gpus" => gpus = value().parse().unwrap_or_else(|_| usage()),
            "--membership" => membership = true,
            "--k" => k = value().parse().unwrap_or_else(|_| usage()),
            "--m" => m = value().parse().unwrap_or_else(|_| usage()),
            "--fail-after-requests" => {
                cfg.fail_after_requests = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }

    let spec = ClusterSpec::tiny_test(nodes, gpus);
    let cluster = Cluster::new(spec);
    if membership {
        let ecc_cfg = EcCheckConfig::paper_defaults().with_km(k, m).with_packet_size(256);
        let plane = match MembershipPlane::new(cluster, &spec, &ecc_cfg) {
            Ok(p) => p,
            Err(e) => {
                eprintln!(
                    "eccheck-server: bad membership split (k={k}, m={m}, nodes={nodes}): {e}"
                );
                std::process::exit(1);
            }
        };
        run(CheckpointServer::serve(plane, &addr, cfg), &addr, nodes, gpus, "with membership");
    } else {
        run(CheckpointServer::serve(cluster, &addr, cfg), &addr, nodes, gpus, "");
    }
}

fn run<P: ecc_net::ServePlane + Send + 'static>(
    server: std::io::Result<CheckpointServer<P>>,
    addr: &str,
    nodes: usize,
    gpus: usize,
    mode: &str,
) -> ! {
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            eprintln!("eccheck-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!(
        "eccheck-server: serving {nodes} nodes x {gpus} GPUs on {} {mode}",
        server.local_addr()
    );

    loop {
        std::thread::park();
    }
}
