//! `eccheck-server`: hosts an in-memory cluster data plane over TCP.
//!
//! ```text
//! eccheck-server [--addr HOST:PORT] [--nodes N] [--gpus G]
//!                [--fail-after-requests R]
//! ```
//!
//! Prints the bound address on stdout (one line, flushed) so scripts
//! using port 0 can discover the ephemeral port, then serves until
//! killed. `--fail-after-requests` wedges the server after serving
//! that many requests — the fault-injection mode the CI connection-
//! drop drill uses.

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_net::{CheckpointServer, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: eccheck-server [--addr HOST:PORT] [--nodes N] [--gpus G] \
         [--fail-after-requests R]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7070".to_string();
    let mut nodes = 4usize;
    let mut gpus = 2usize;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = value(),
            "--nodes" => nodes = value().parse().unwrap_or_else(|_| usage()),
            "--gpus" => gpus = value().parse().unwrap_or_else(|_| usage()),
            "--fail-after-requests" => {
                cfg.fail_after_requests = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }

    let cluster = Cluster::new(ClusterSpec::tiny_test(nodes, gpus));
    let server = match CheckpointServer::serve(cluster, &addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("eccheck-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    eprintln!("eccheck-server: serving {nodes} nodes x {gpus} GPUs on {}", server.local_addr());

    loop {
        std::thread::park();
    }
}
