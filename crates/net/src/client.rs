//! [`RemotePlane`]: a [`DataPlane`] backed by a live checkpoint server.
//!
//! This is the payoff of the owned-bytes `DataPlane` fix: because
//! `get_local`/`get_remote` return `Option<Vec<u8>>` instead of
//! borrowed slices, a plane whose bytes arrive over a socket can
//! implement the trait verbatim, and the ECCheck engine saves and
//! loads across real process boundaries with zero changes.
//!
//! Connections are pooled (a small stack of long-lived streams) and
//! each RPC retries once on a fresh connection after an I/O failure —
//! every wire op is idempotent, so the retry is safe. Failures that
//! survive the retry degrade the way the trait contract demands:
//! reads report "absent" (`None`), liveness reports `false`, and
//! writes surface [`ClusterError::Transport`].

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use ecc_cluster::{ClusterError, DataPlane, NodeId};
use eccheck::Placement;

use crate::codec::{
    decode_response, encode_request, read_frame, write_frame, Request, Response, WireError,
    MAX_FRAME,
};

/// Client tunables.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Max idle connections kept in the pool.
    pub pool_size: usize,
    /// Per-frame payload cap applied to responses.
    pub max_frame: usize,
    /// Socket read/write timeout.
    pub socket_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self { pool_size: 2, max_frame: MAX_FRAME, socket_timeout: Duration::from_secs(10) }
    }
}

/// A `DataPlane` whose storage lives in another process, reached over
/// TCP. See the module docs for the error-degradation contract.
pub struct RemotePlane {
    addr: String,
    cfg: ClientConfig,
    nodes: usize,
    pool: Mutex<Vec<TcpStream>>,
}

impl RemotePlane {
    /// Connects to a checkpoint server and snapshots its node count
    /// (cluster membership size is fixed for a server's lifetime, so
    /// one query at connect time suffices).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Transport`] when the server is unreachable or
    /// answers the `Nodes` query with anything but a count.
    pub fn connect(addr: &str) -> Result<Self, ClusterError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// [`RemotePlane::connect`] with explicit tunables.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Transport`] when the server is unreachable or
    /// answers the `Nodes` query with anything but a count.
    pub fn connect_with(addr: &str, cfg: ClientConfig) -> Result<Self, ClusterError> {
        let mut plane =
            Self { addr: addr.to_string(), cfg, nodes: 0, pool: Mutex::new(Vec::new()) };
        match plane.rpc(&Request::Nodes)? {
            Response::Count(n) => plane.nodes = n as usize,
            other => return Err(transport(format!("Nodes query answered with {other:?}"))),
        }
        Ok(plane)
    }

    /// The server address this plane talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Round-trips a `Ping`; `true` means the server is up and speaks
    /// the protocol.
    pub fn ping(&self) -> bool {
        matches!(self.rpc(&Request::Ping), Ok(Response::Ok))
    }

    /// Asks the server to fail a node (a cross-process crash drill).
    ///
    /// # Errors
    ///
    /// [`ClusterError::Transport`] when unreachable; the server's own
    /// refusal (e.g. node out of range) is passed through.
    pub fn fail_node(&self, node: NodeId) -> Result<(), ClusterError> {
        self.expect_ok(Request::FailNode { node: wire_node(node) })
    }

    /// Asks the server to bring a replacement node online.
    ///
    /// # Errors
    ///
    /// Same contract as [`RemotePlane::fail_node`].
    pub fn replace_node(&self, node: NodeId) -> Result<(), ClusterError> {
        self.expect_ok(Request::ReplaceNode { node: wire_node(node) })
    }

    /// Asks the server to admit a replacement into `node`'s slot,
    /// migrate its chunk, and commit a new placement epoch. Returns
    /// the committed epoch and placement.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Transport`] when unreachable or when the server
    /// refuses (slot still active, guarantee not restorable yet,
    /// membership not enabled).
    pub fn join(&self, node: NodeId) -> Result<(u64, Placement), ClusterError> {
        self.expect_placement(Request::Join { node: wire_node(node) })
    }

    /// Announces a graceful drain of `node`'s slot: the server stages
    /// its bytes before a replacement wipes them. Returns the (still
    /// unchanged) epoch and placement.
    ///
    /// # Errors
    ///
    /// Same contract as [`RemotePlane::join`].
    pub fn leave(&self, node: NodeId) -> Result<(u64, Placement), ClusterError> {
        self.expect_placement(Request::Leave { node: wire_node(node) })
    }

    /// The server's committed placement and epoch — what a stale
    /// engine applies (`EcCheck::apply_placement`) after an epoch
    /// fence refused its save or load.
    ///
    /// # Errors
    ///
    /// Same contract as [`RemotePlane::join`].
    pub fn get_placement(&self) -> Result<(u64, Placement), ClusterError> {
        self.expect_placement(Request::GetPlacement)
    }

    fn expect_placement(&self, req: Request) -> Result<(u64, Placement), ClusterError> {
        match self.rpc(&req)? {
            Response::Placement { epoch, data_nodes, parity_nodes, group_size } => {
                let placement = Placement::new(
                    data_nodes.into_iter().map(|n| n as usize).collect(),
                    parity_nodes.into_iter().map(|n| n as usize).collect(),
                    group_size as usize,
                )
                .map_err(|e| transport(format!("server sent an invalid placement: {e}")))?;
                Ok((epoch, placement))
            }
            Response::Err(e) => Err(e),
            other => Err(transport(format!("unexpected response {other:?}"))),
        }
    }

    fn expect_ok(&self, req: Request) -> Result<(), ClusterError> {
        match self.rpc(&req)? {
            Response::Ok => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(transport(format!("unexpected response {other:?}"))),
        }
    }

    fn dial(&self) -> Result<TcpStream, WireError> {
        let addrs = self.addr.to_socket_addrs()?;
        let mut last = None;
        for a in addrs {
            match TcpStream::connect_timeout(&a, self.cfg.socket_timeout) {
                Ok(s) => {
                    s.set_read_timeout(Some(self.cfg.socket_timeout))?;
                    s.set_write_timeout(Some(self.cfg.socket_timeout))?;
                    s.set_nodelay(true)?;
                    return Ok(s);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.map_or(WireError::Io("address resolved to nothing".into()), WireError::from))
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.pool.lock().ok()?.pop()
    }

    fn checkin(&self, stream: TcpStream) {
        if let Ok(mut pool) = self.pool.lock() {
            if pool.len() < self.cfg.pool_size {
                pool.push(stream);
            }
        }
    }

    fn rpc_once(&self, stream: &mut TcpStream, req: &Request) -> Result<Response, WireError> {
        write_frame(stream, &encode_request(req))?;
        // No buffered reader here: a throwaway buffer could strand
        // read-ahead bytes between RPCs on the pooled connection.
        let payload = read_frame(stream, self.cfg.max_frame)?;
        decode_response(&payload)
    }

    /// One RPC with at most one retry. A pooled connection may have
    /// died while idle (server restart, timeout), so an I/O failure on
    /// it is retried once on a freshly dialed stream; every request in
    /// the protocol is idempotent, which makes the retry safe even if
    /// the first attempt executed before the connection dropped.
    fn rpc(&self, req: &Request) -> Result<Response, ClusterError> {
        let pooled = self.checkout();
        let fresh = pooled.is_none();
        let mut stream = match pooled.map_or_else(|| self.dial(), Ok) {
            Ok(s) => s,
            Err(e) => return Err(transport(e.to_string())),
        };
        match self.rpc_once(&mut stream, req) {
            Ok(resp) => {
                self.checkin(stream);
                return Ok(resp);
            }
            Err(e) if fresh => return Err(transport(e.to_string())),
            Err(_) => drop(stream),
        }
        let mut stream = self.dial().map_err(|e| transport(e.to_string()))?;
        match self.rpc_once(&mut stream, req) {
            Ok(resp) => {
                self.checkin(stream);
                Ok(resp)
            }
            Err(e) => Err(transport(e.to_string())),
        }
    }

    fn fetch(&self, req: Request) -> Option<Vec<u8>> {
        match self.rpc(&req) {
            Ok(Response::Blob(blob)) => Some(blob),
            _ => None,
        }
    }
}

impl DataPlane for RemotePlane {
    fn nodes(&self) -> usize {
        self.nodes
    }

    fn alive(&self, node: NodeId) -> bool {
        matches!(self.rpc(&Request::Alive { node: wire_node(node) }), Ok(Response::Bool(true)))
    }

    fn put_local(&mut self, node: NodeId, key: &str, bytes: Vec<u8>) -> Result<(), ClusterError> {
        let req = Request::PutLocal { node: wire_node(node), key: key.to_string(), blob: bytes };
        match self.rpc(&req)? {
            Response::Ok => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(transport(format!("PutLocal answered with {other:?}"))),
        }
    }

    fn get_local(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        self.fetch(Request::GetLocal { node: wire_node(node), key: key.to_string() })
    }

    fn delete_local(&mut self, node: NodeId, key: &str) {
        let _ = self.rpc(&Request::DeleteLocal { node: wire_node(node), key: key.to_string() });
    }

    fn put_remote(&mut self, key: &str, bytes: Vec<u8>) {
        // The trait treats remote CPFS writes as infallible (the
        // in-memory plane cannot fail them); a transport failure here
        // is droppable because the engine re-flushes on a later save.
        let _ = self.rpc(&Request::PutRemote { key: key.to_string(), blob: bytes });
    }

    fn get_remote(&self, key: &str) -> Option<Vec<u8>> {
        self.fetch(Request::GetRemote { key: key.to_string() })
    }

    fn local_keys(&self, node: NodeId) -> Vec<String> {
        match self.rpc(&Request::ListKeys { node: wire_node(node) }) {
            Ok(Response::Keys(keys)) => keys,
            _ => Vec::new(),
        }
    }
}

impl std::fmt::Debug for RemotePlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemotePlane")
            .field("addr", &self.addr)
            .field("nodes", &self.nodes)
            .finish_non_exhaustive()
    }
}

/// Node ids ride the wire as `u32`; ids past `u32::MAX` cannot exist
/// on any real cluster, so they saturate to an id the server rejects.
fn wire_node(node: NodeId) -> u32 {
    node.min(u32::MAX as usize) as u32
}

fn transport(detail: String) -> ClusterError {
    ClusterError::Transport { detail }
}
