//! [`MembershipPlane`]: a served plane with an elastic control plane.
//!
//! Wraps any [`ServePlane`] together with an
//! [`ecc_membership::PlacementController`], turning the `Join`/
//! `Leave`/`GetPlacement` wire ops into real membership changes: a
//! `Leave` stages the slot's bytes while they are still readable, a
//! `Join` brings a fresh process into the slot (via the inner plane's
//! `admin_replace_node`), migrates exactly the churned chunk, verifies
//! the m-fault guarantee, and commits a new placement epoch — which
//! every engine then observes through the epoch fence on its next
//! save/load and refreshes with `GetPlacement`.
//!
//! Crash drills stay coherent: a `FailNode` wire op both kills the
//! inner node *and* writes the slot off in the registry, so a later
//! `Join` knows the bytes are gone and rebuilds instead of copying.

use ecc_cluster::{ClusterError, ClusterSpec, DataPlane, NodeId};
use ecc_membership::{MemberState, MembershipError, PlacementController, RebalanceReport};
use eccheck::EcCheckConfig;

use crate::server::{PlacementInfo, ServePlane};

/// A [`ServePlane`] that accepts the membership wire ops. See the
/// module docs.
pub struct MembershipPlane<P: ServePlane> {
    inner: P,
    ctl: PlacementController,
    last_report: Option<RebalanceReport>,
}

impl<P: ServePlane> MembershipPlane<P> {
    /// Wraps `inner` with a placement controller for `spec` and
    /// `config`'s (k, m) split.
    ///
    /// # Errors
    ///
    /// [`MembershipError`] when the split does not cover the spec's
    /// node count or the code parameters are invalid.
    pub fn new(
        inner: P,
        spec: &ClusterSpec,
        config: &EcCheckConfig,
    ) -> Result<Self, MembershipError> {
        let ctl = PlacementController::new(spec, config)?;
        Ok(Self { inner, ctl, last_report: None })
    }

    /// The placement controller, for inspection.
    pub fn controller(&self) -> &PlacementController {
        &self.ctl
    }

    /// The report of the last committed rebalance, if any — the
    /// migration-traffic evidence the churn drills export.
    pub fn last_report(&self) -> Option<&RebalanceReport> {
        self.last_report.as_ref()
    }

    /// The wrapped plane.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps the plane, dropping the controller.
    pub fn into_inner(self) -> P {
        self.inner
    }

    fn placement_info(&self) -> PlacementInfo {
        let p = self.ctl.placement();
        PlacementInfo {
            epoch: self.ctl.epoch(),
            data_nodes: p.data_nodes().iter().map(|&n| n as u32).collect(),
            parity_nodes: p.parity_nodes().iter().map(|&n| n as u32).collect(),
            group_size: p.group_size().min(u32::MAX as usize) as u32,
        }
    }
}

impl<P: ServePlane> DataPlane for MembershipPlane<P> {
    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn alive(&self, node: NodeId) -> bool {
        self.inner.alive(node)
    }

    fn put_local(&mut self, node: NodeId, key: &str, bytes: Vec<u8>) -> Result<(), ClusterError> {
        self.inner.put_local(node, key, bytes)
    }

    fn get_local(&self, node: NodeId, key: &str) -> Option<Vec<u8>> {
        self.inner.get_local(node, key)
    }

    fn delete_local(&mut self, node: NodeId, key: &str) {
        self.inner.delete_local(node, key);
    }

    fn put_remote(&mut self, key: &str, bytes: Vec<u8>) {
        self.inner.put_remote(key, bytes);
    }

    fn get_remote(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.get_remote(key)
    }

    fn local_keys(&self, node: NodeId) -> Vec<String> {
        self.inner.local_keys(node)
    }
}

impl<P: ServePlane> ServePlane for MembershipPlane<P> {
    /// Kills the node *and* writes its slot off in the registry, so a
    /// later `Join` rebuilds instead of trusting vanished bytes.
    fn admin_fail_node(&mut self, node: NodeId) -> bool {
        let ok = self.inner.admin_fail_node(node);
        if ok {
            self.ctl.force_dead(node);
        }
        ok
    }

    /// Raw physical replacement, registry-blind — chunkless until a
    /// `Join` migrates and certifies. Prefer the `Join` wire op.
    fn admin_replace_node(&mut self, node: NodeId) -> bool {
        self.inner.admin_replace_node(node)
    }

    fn admin_join(&mut self, node: NodeId) -> Result<PlacementInfo, String> {
        // An active slot whose process is gone (killed out-of-band)
        // is written off first; an active *living* slot must drain
        // through Leave.
        if self.ctl.table().state(node) == MemberState::Active {
            if self.inner.alive(node) {
                return Err(format!("slot {node} is active and alive; Leave it first"));
            }
            self.ctl.force_dead(node);
        }
        // A Joining slot means an earlier rebalance was refused (e.g.
        // too many dead slots at once): retry it without re-admitting.
        if self.ctl.table().state(node) != MemberState::Joining {
            if !self.inner.admin_replace_node(node) {
                return Err(format!("plane cannot bring a replacement online for slot {node}"));
            }
            self.ctl.join(node).map_err(|e| e.to_string())?;
        }
        let report = self.ctl.rebalance(&mut self.inner).map_err(|e| e.to_string())?;
        self.last_report = Some(report);
        Ok(self.placement_info())
    }

    fn admin_leave(&mut self, node: NodeId) -> Result<PlacementInfo, String> {
        self.ctl.leave(&self.inner, node).map_err(|e| e.to_string())?;
        Ok(self.placement_info())
    }

    fn admin_placement(&self) -> Result<PlacementInfo, String> {
        Ok(self.placement_info())
    }
}

impl<P: ServePlane> std::fmt::Debug for MembershipPlane<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MembershipPlane")
            .field("epoch", &self.ctl.epoch())
            .field("degraded", &self.ctl.table().degraded_slots())
            .finish_non_exhaustive()
    }
}
