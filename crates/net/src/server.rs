//! The checkpoint server: a [`DataPlane`] served over TCP.
//!
//! Built like `ecc-obs`'s exporter — `std::net::TcpListener`, one
//! accept thread, a fixed worker pool — but with a *bounded* handoff
//! queue and long-lived, pipelined connections speaking the
//! [`crate::codec`] frame protocol.
//!
//! # Backpressure and deadlock-freedom
//!
//! The accept thread hands sockets to workers over a
//! [`std::sync::mpsc::sync_channel`] of configurable depth. When every
//! worker is busy and the queue is full, `send` blocks the accept
//! thread, which in turn leaves new clients waiting in the kernel's
//! listen backlog — load sheds at the edge instead of growing an
//! unbounded buffer. The wait graph is a DAG (clients → accept thread →
//! workers → the plane mutex, which is only ever held for one request
//! with no I/O under it), so no cycle — and therefore no deadlock — is
//! possible. Shutdown drops the queue's sender and pokes the listener,
//! unblocking both ends.

use std::io::BufWriter;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ecc_cluster::{Cluster, DataPlane, NodeId};

use crate::codec::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, WireError,
    MAX_FRAME,
};

/// The placement view the membership wire ops carry: a mirror of
/// [`Response::Placement`]'s fields, so planes can answer them without
/// the codec (or the engine crates) in their signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementInfo {
    /// The committed placement epoch.
    pub epoch: u64,
    /// Slots holding data chunks, in chunk order.
    pub data_nodes: Vec<u32>,
    /// Slots holding parity chunks, in chunk order.
    pub parity_nodes: Vec<u32>,
    /// GPUs per node.
    pub group_size: u32,
}

/// A [`DataPlane`] the server can host. The admin hooks back the
/// `FailNode`/`ReplaceNode` wire ops (used by cross-process recovery
/// drills); planes without real machines to kill keep the defaults,
/// which refuse. The membership hooks back the `Join`/`Leave`/
/// `GetPlacement` ops; planes without a placement controller keep the
/// defaults, which refuse with a readable reason (see
/// [`crate::MembershipPlane`] for a plane that accepts them).
pub trait ServePlane: DataPlane {
    /// Fails a node, destroying its volatile blobs. Returns `false`
    /// when unsupported or out of range.
    fn admin_fail_node(&mut self, node: NodeId) -> bool {
        let _ = node;
        false
    }

    /// Brings a replacement node online (alive, empty). Returns
    /// `false` when unsupported or out of range.
    fn admin_replace_node(&mut self, node: NodeId) -> bool {
        let _ = node;
        false
    }

    /// Admits a replacement process into `node`'s slot, migrates its
    /// chunk, and commits a new placement epoch. `Err` carries the
    /// refusal reason (unsupported, slot still active, guarantee not
    /// restorable yet, ...).
    fn admin_join(&mut self, node: NodeId) -> Result<PlacementInfo, String> {
        let _ = node;
        Err("membership is not enabled on this plane".into())
    }

    /// Announces a graceful drain of `node`'s slot, staging its bytes
    /// before a replacement wipes them.
    fn admin_leave(&mut self, node: NodeId) -> Result<PlacementInfo, String> {
        let _ = node;
        Err("membership is not enabled on this plane".into())
    }

    /// The committed placement and epoch.
    fn admin_placement(&self) -> Result<PlacementInfo, String> {
        Err("membership is not enabled on this plane".into())
    }
}

impl ServePlane for Cluster {
    fn admin_fail_node(&mut self, node: NodeId) -> bool {
        if node >= self.spec().nodes() {
            return false;
        }
        self.fail_node(node);
        true
    }

    fn admin_replace_node(&mut self, node: NodeId) -> bool {
        if node >= self.spec().nodes() {
            return false;
        }
        self.replace_node(node);
        true
    }
}

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads; each owns one connection at a time.
    pub workers: usize,
    /// Bounded accept→worker queue depth (the backpressure valve).
    pub queue_depth: usize,
    /// Per-frame payload cap; oversized prefixes are rejected before
    /// allocation.
    pub max_frame: usize,
    /// Per-connection socket timeout so a stuck peer cannot pin a
    /// worker forever.
    pub socket_timeout: Duration,
    /// Fault-injection knob: after serving this many requests the
    /// server wedges — every connection drops and no response is ever
    /// written again — simulating a server crash mid-save. `None`
    /// (default) never wedges.
    pub fail_after_requests: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 8,
            queue_depth: 64,
            max_frame: MAX_FRAME,
            socket_timeout: Duration::from_secs(10),
            fail_after_requests: None,
        }
    }
}

/// A running checkpoint server. Dropping it (or calling
/// [`CheckpointServer::shutdown`]) stops the accept loop and joins
/// every thread; the served plane survives and can be re-served.
pub struct CheckpointServer<P: ServePlane + Send + 'static> {
    addr: SocketAddr,
    plane: Arc<Mutex<P>>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<std::collections::HashMap<u64, TcpStream>>>,
    threads: Vec<JoinHandle<()>>,
}

impl<P: ServePlane + Send + 'static> CheckpointServer<P> {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serves `plane`.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn serve(plane: P, addr: &str, cfg: ServerConfig) -> std::io::Result<Self> {
        Self::serve_shared(Arc::new(Mutex::new(plane)), addr, cfg)
    }

    /// [`CheckpointServer::serve`] over an externally owned plane, so a
    /// restarted server can pick up exactly where a crashed one left
    /// off — the property the connection-drop recovery tests exercise.
    ///
    /// # Errors
    ///
    /// Returns the bind error when the address is unavailable.
    pub fn serve_shared(
        plane: Arc<Mutex<P>>,
        addr: &str,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let wedged = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(cfg.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        // Clones of every in-flight connection, so shutdown can cut
        // blocked reads short instead of waiting out socket timeouts.
        // Keyed by a serial so each worker drops its entry (and the
        // cloned fd) when the connection finishes.
        let conns = Arc::new(Mutex::new(std::collections::HashMap::<u64, TcpStream>::new()));
        let conn_serial = Arc::new(AtomicU64::new(0));

        let workers = cfg.workers.max(1);
        let mut threads = Vec::with_capacity(workers + 1);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let plane = Arc::clone(&plane);
            let wedged = Arc::clone(&wedged);
            let served = Arc::clone(&served);
            let conns = Arc::clone(&conns);
            let conn_serial = Arc::clone(&conn_serial);
            threads.push(std::thread::spawn(move || loop {
                let stream = match rx.lock().expect("net worker queue poisoned").recv() {
                    Ok(s) => s,
                    Err(_) => return, // accept loop gone: drain and exit
                };
                let id = conn_serial.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().expect("net conn registry poisoned").insert(id, clone);
                }
                let _ = serve_connection(stream, &plane, &cfg, &wedged, &served);
                conns.lock().expect("net conn registry poisoned").remove(&id);
            }));
        }

        {
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        return; // dropping `tx` shuts the workers down
                    }
                    if let Ok(stream) = stream {
                        // Blocks when the queue is full: backpressure
                        // propagates to the listen backlog.
                        if tx.send(stream).is_err() {
                            return;
                        }
                    }
                }
            }));
        }

        Ok(Self { addr: local, plane, stop, conns, threads })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served plane, for inspection or re-serving after shutdown.
    pub fn plane(&self) -> Arc<Mutex<P>> {
        Arc::clone(&self.plane)
    }

    /// Stops accepting, wakes the accept loop, and joins all threads.
    /// In-flight requests finish; idle connections drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in `incoming()`; poke it with a
        // connection so it observes the stop flag. Workers blocked
        // reading idle connections get them cut out from under them.
        let _ = TcpStream::connect(self.addr);
        if let Ok(conns) = self.conns.lock() {
            for c in conns.values() {
                let _ = c.shutdown(Shutdown::Both);
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl<P: ServePlane + Send + 'static> Drop for CheckpointServer<P> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl<P: ServePlane + Send + 'static> std::fmt::Debug for CheckpointServer<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

/// Serves one connection until EOF, a codec error, or the wedge fires.
/// Requests are handled in arrival order, so a pipelining client reads
/// responses in the order it sent requests.
fn serve_connection<P: ServePlane>(
    stream: TcpStream,
    plane: &Mutex<P>,
    cfg: &ServerConfig,
    wedged: &AtomicBool,
    served: &AtomicU64,
) -> Result<(), WireError> {
    stream.set_read_timeout(Some(cfg.socket_timeout))?;
    stream.set_write_timeout(Some(cfg.socket_timeout))?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    loop {
        if wedged.load(Ordering::SeqCst) {
            return Ok(()); // drop the connection without a response
        }
        let payload = read_frame(&mut reader, cfg.max_frame)?;
        if let Some(limit) = cfg.fail_after_requests {
            if served.fetch_add(1, Ordering::SeqCst) + 1 > limit {
                wedged.store(true, Ordering::SeqCst);
                return Ok(());
            }
        }
        let response = match decode_request(&payload) {
            Ok(req) => handle(plane, req),
            Err(err @ (WireError::Truncated | WireError::Oversized { .. })) => {
                // Framing is broken; nothing after this byte can be
                // trusted. Report and hang up.
                let resp =
                    Response::Err(ecc_cluster::ClusterError::Transport { detail: err.to_string() });
                let _ = write_frame(&mut writer, &encode_response(&resp));
                return Err(err);
            }
            Err(err) => {
                // The frame boundary is intact (bad op, bad key, bad
                // CRC): answer with a structured error and keep the
                // connection.
                Response::Err(ecc_cluster::ClusterError::Transport { detail: err.to_string() })
            }
        };
        write_frame(&mut writer, &encode_response(&response))?;
    }
}

/// Executes one request against the plane. The mutex is held for the
/// duration of the plane call only — no I/O happens under it.
///
/// Node ids come off the wire, so they are bounds-checked *before*
/// the plane sees them: some plane impls (e.g. `Cluster::alive`)
/// index directly and would panic, and a panic under the mutex would
/// poison it and wedge every connection.
fn handle<P: ServePlane>(plane: &Mutex<P>, req: Request) -> Response {
    let mut p = plane.lock().expect("served plane poisoned");
    let nodes = p.nodes();
    if let Some(node) = req.node() {
        if node as usize >= nodes {
            return match req {
                Request::GetLocal { .. } => Response::NotFound,
                Request::Alive { .. } => Response::Bool(false),
                Request::ListKeys { .. } => Response::Keys(Vec::new()),
                // Deletes are idempotent no-ops, like the in-memory
                // plane on a missing key; writes and admin ops refuse.
                Request::DeleteLocal { .. } => Response::Ok,
                _ => Response::Err(ecc_cluster::ClusterError::NoSuchNode { node: node as usize }),
            };
        }
    }
    match req {
        Request::PutLocal { node, key, blob } => match p.put_local(node as usize, &key, blob) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Err(e),
        },
        Request::GetLocal { node, key } => match p.get_local(node as usize, &key) {
            Some(blob) => Response::Blob(blob),
            None => Response::NotFound,
        },
        Request::DeleteLocal { node, key } => {
            p.delete_local(node as usize, &key);
            Response::Ok
        }
        Request::PutRemote { key, blob } => {
            p.put_remote(&key, blob);
            Response::Ok
        }
        Request::GetRemote { key } => match p.get_remote(&key) {
            Some(blob) => Response::Blob(blob),
            None => Response::NotFound,
        },
        Request::Alive { node } => Response::Bool(p.alive(node as usize)),
        Request::Nodes => Response::Count(p.nodes().min(u32::MAX as usize) as u32),
        Request::ListKeys { node } => Response::Keys(p.local_keys(node as usize)),
        Request::FailNode { node } => {
            if p.admin_fail_node(node as usize) {
                Response::Ok
            } else {
                Response::Err(ecc_cluster::ClusterError::NoSuchNode { node: node as usize })
            }
        }
        Request::ReplaceNode { node } => {
            if p.admin_replace_node(node as usize) {
                Response::Ok
            } else {
                Response::Err(ecc_cluster::ClusterError::NoSuchNode { node: node as usize })
            }
        }
        Request::Join { node } => membership_response(p.admin_join(node as usize)),
        Request::Leave { node } => membership_response(p.admin_leave(node as usize)),
        Request::GetPlacement => membership_response(p.admin_placement()),
        Request::Ping => Response::Ok,
    }
}

fn membership_response(result: Result<PlacementInfo, String>) -> Response {
    match result {
        Ok(info) => Response::Placement {
            epoch: info.epoch,
            data_nodes: info.data_nodes,
            parity_nodes: info.parity_nodes,
            group_size: info.group_size,
        },
        Err(detail) => Response::Err(ecc_cluster::ClusterError::Transport { detail }),
    }
}
