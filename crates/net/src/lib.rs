//! Real TCP transport for the ECCheck data plane.
//!
//! Everything else in this workspace simulates a cluster inside one
//! process. This crate makes the data plane *real*: a checkpoint
//! server ([`CheckpointServer`]) hosts any [`ecc_cluster::DataPlane`]
//! behind a socket, and a client ([`RemotePlane`]) implements that
//! same trait over the wire — so the ECCheck engine saves in one OS
//! process and restores bit-exactly in another with zero engine
//! changes. That is only possible because `DataPlane::get_local` /
//! `get_remote` return owned bytes: a borrowed `&[u8]` cannot
//! outlive a socket read.
//!
//! The wire protocol ([`codec`]) is a length-prefixed binary framing
//! with per-blob CRC trailers (reusing `ecc_checkpoint`'s checksum
//! frames), hardened against hostile input: oversized length prefixes
//! are rejected before allocation, truncated or trailing-garbage
//! frames and unknown tags decode to structured [`WireError`]s, and
//! nothing in the decode path panics.
//!
//! The protocol also carries the elastic-membership control plane:
//! `Join`, `Leave`, and `GetPlacement` ops let processes enter and
//! drain cluster slots at runtime. Serve a [`MembershipPlane`] to
//! accept them — it drives an `ecc_membership::PlacementController`
//! that migrates only the churned chunks, re-verifies the m-fault
//! guarantee, and commits monotone placement epochs that engines pick
//! up through [`RemotePlane::get_placement`].
//!
//! Like `ecc-obs`, the crate is dependency-free (`std::net` +
//! threads): the crates.io registry is unreachable in this
//! environment, so no async runtime, serde, or protobuf.
//!
//! # Examples
//!
//! ```
//! use ecc_cluster::{Cluster, ClusterSpec, DataPlane};
//! use ecc_net::{CheckpointServer, RemotePlane, ServerConfig};
//!
//! let cluster = Cluster::new(ClusterSpec::tiny_test(2, 1));
//! let server = CheckpointServer::serve(cluster, "127.0.0.1:0", ServerConfig::default())?;
//! let addr = server.local_addr().to_string();
//!
//! let mut plane = RemotePlane::connect(&addr).map_err(|e| std::io::Error::other(e.to_string()))?;
//! plane.put_local(0, "demo", vec![1, 2, 3]).map_err(|e| std::io::Error::other(e.to_string()))?;
//! assert_eq!(plane.get_local(0, "demo"), Some(vec![1, 2, 3]));
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod codec;
mod member;
mod server;

pub use client::{ClientConfig, RemotePlane};
pub use codec::{Request, Response, WireError, MAX_FRAME, MAX_KEY};
pub use member::MembershipPlane;
pub use server::{CheckpointServer, PlacementInfo, ServePlane, ServerConfig};
