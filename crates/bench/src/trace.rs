//! `--trace <path>` support for the figure binaries.
//!
//! Every figure binary accepts `--trace <path>` (or `--trace=<path>`)
//! and, when given, writes a Chrome Trace Event JSON file of the toy
//! real-byte engine run — loadable in Perfetto or `chrome://tracing`,
//! with the save pipeline, pipelined-executor coding workers and P2P
//! flow arrows on one timeline. [`sim_save_trace_json`] renders the *timing model's*
//! save prediction instead, with explicit simulated timestamps, so its
//! output is byte-identical across runs.

use std::error::Error;
use std::path::PathBuf;

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_dnn::{
    build_worker_state_dict, GpuSpec, ModelConfig, ParallelismSpec, StateDictSpec,
    TrainingTimeModel,
};
use ecc_telemetry::Recorder;
use ecc_trace::Tracer;
use eccheck::timing::{trace_save_timing, TimingConstants};
use eccheck::{EcCheck, EcCheckConfig};

/// The value following `flag` (or glued on with `=`) in the process
/// arguments, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    arg_value_in(flag, std::env::args().skip(1))
}

fn arg_value_in(flag: &str, args: impl IntoIterator<Item = String>) -> Option<String> {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == flag {
            return args.next();
        }
        if let Some(value) = arg.strip_prefix(flag) {
            if let Some(value) = value.strip_prefix('=') {
                return Some(value.to_string());
            }
        }
    }
    None
}

/// The path given with `--trace`, if the binary was invoked with one.
pub fn trace_path_from_args() -> Option<PathBuf> {
    arg_value("--trace").map(PathBuf::from)
}

/// Runs the same toy real-byte workload as the live-telemetry appendix
/// (one save, a two-node failure burst, one recovery) with a span
/// tracer attached, and returns the Chrome Trace Event JSON. The
/// tracer shares the recorder's clock epoch, so trace timestamps line
/// up with the recorder's event log; drive `recorder` from a
/// [`ecc_telemetry::ManualClock`] to make the output byte-identical
/// across runs.
pub fn engine_trace_json(recorder: Recorder) -> Result<String, Box<dyn Error>> {
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut cluster = Cluster::new(spec);
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
    let par = ParallelismSpec::new(2, 2, 2)?;
    let sd_spec = StateDictSpec { iteration: 100, ..StateDictSpec::new(model, par) };
    let dicts: Vec<_> = (0..spec.world_size())
        .map(|w| build_worker_state_dict(&sd_spec, w))
        .collect::<Result<_, _>>()?;

    let config = EcCheckConfig::paper_defaults().with_packet_size(4096);
    let mut ecc = EcCheck::initialize(&spec, config)?;
    ecc.set_recorder(recorder);
    let tracer = ecc.attach_tracer();
    ecc.save(&mut cluster, &dicts)?;
    cluster.fail_node(1);
    cluster.fail_node(3);
    cluster.replace_node(1);
    cluster.replace_node(3);
    ecc.load(&mut cluster)?;
    Ok(tracer.chrome_trace_json())
}

/// Renders the timing model's prediction of one paper-testbed save
/// (GPT-2 2.5B, idle-slot gating on) as Chrome Trace Event JSON. Every
/// timestamp is an explicit simulated instant, so the output is
/// byte-identical across runs by construction.
pub fn sim_save_trace_json() -> String {
    let spec = ClusterSpec::paper_testbed();
    let cfg = EcCheckConfig::paper_defaults();
    let consts = TimingConstants::default();
    let model = ModelConfig::gpt2(2560, 40, 64);
    let par = ParallelismSpec::new(4, 4, 1).expect("paper parallelism");
    let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), spec.nic())
        .expect("paper training model");
    let profile = tm.profile(200);
    let shard = model.shard_bytes(&par);
    let (tracer, _clock) = Tracer::with_manual_clock();
    trace_save_timing(&tracer, &spec, &cfg, shard, Some(&profile), &consts);
    tracer.chrome_trace_json()
}

/// Writes the toy engine-run trace when the binary was invoked with
/// `--trace <path>`. Figure binaries call this after printing their
/// tables; it is silent when the flag is absent.
pub fn write_trace_if_requested() {
    let Some(path) = trace_path_from_args() else { return };
    match engine_trace_json(Recorder::new()) {
        Ok(json) => match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "\nspan trace written to {} (load in Perfetto or chrome://tracing)",
                path.display()
            ),
            Err(err) => eprintln!("could not write trace to {}: {err}", path.display()),
        },
        Err(err) => eprintln!("trace workload failed: {err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use ecc_telemetry::ManualClock;
    use ecc_trace::validate_chrome_trace;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_value_finds_both_spellings() {
        assert_eq!(
            arg_value_in("--trace", args(&["--trace", "out.json"])),
            Some("out.json".into())
        );
        assert_eq!(arg_value_in("--trace", args(&["--trace=out.json"])), Some("out.json".into()));
        assert_eq!(arg_value_in("--trace", args(&["--out", "x"])), None);
        // A flag with no value yields nothing rather than panicking.
        assert_eq!(arg_value_in("--trace", args(&["--trace"])), None);
        // Prefix collisions do not count: --tracefile is not --trace.
        assert_eq!(arg_value_in("--trace", args(&["--tracefile", "x"])), None);
    }

    #[test]
    fn engine_trace_is_valid_and_deterministic_under_manual_clock() {
        let render = || {
            let recorder = Recorder::with_clock(Arc::new(ManualClock::new()));
            engine_trace_json(recorder).expect("toy workload runs")
        };
        let a = render();
        let stats = validate_chrome_trace(&a).expect("valid trace");
        assert!(stats.spans > 0);
        assert!(stats.flows > 0, "P2P transfers should draw arrows");
        for needle in [
            "ecc.save",
            "checkpoint.pack",
            "save.encode",
            "encode.stripe",
            "reduce.stripe",
            "p2p.store",
        ] {
            assert!(a.contains(needle), "trace should mention {needle}");
        }
        assert_eq!(a, render(), "manual clock must make the export byte-identical");
    }

    #[test]
    fn sim_save_trace_is_valid_and_deterministic() {
        let a = sim_save_trace_json();
        let stats = validate_chrome_trace(&a).expect("valid trace");
        assert!(stats.spans > 0);
        assert!(stats.flows > 0);
        assert_eq!(a, sim_save_trace_json());
    }
}
