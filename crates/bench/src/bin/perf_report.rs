//! `perf-report`: the machine-readable perf-regression reporter.
//!
//! Measures the standard `(k, m, w, model)` shape ladder (see
//! `ecc_bench::PerfReport`) and writes the result as JSON — CI archives
//! it as `BENCH_PR2.json` and diffs consecutive runs. Exits non-zero
//! when any shape's accounted checkpoint traffic exceeds the paper's
//! `m·s·W` bound (§V-F).
//!
//! Flags: `--out <path>` (default `BENCH_PR2.json`) for the JSON
//! report, `--trace <path>` to also write the deterministic simulated
//! save timeline (Chrome Trace Event JSON, Perfetto-loadable),
//! `--obs HOST:PORT` to serve live `/metrics` with the ladder's traffic
//! accounting (`--obs-hold-ms N` holds the exporter after the run).

use std::process::ExitCode;

use ecc_bench::{
    arg_value, obs_session_from_args, print_table, sim_save_trace_json, trace_path_from_args,
    PerfReport,
};
use ecc_telemetry::Recorder;

fn main() -> ExitCode {
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let recorder = Recorder::new();
    let obs = obs_session_from_args(&recorder);
    println!("# perf-report: standard shape ladder\n");
    let report = PerfReport::collect();
    for s in &report.shapes {
        recorder.counter("ecc.save.traffic_bytes").add(s.traffic_bytes);
        recorder.counter("perf.report.traffic_bound_bytes").add(s.traffic_bound_bytes);
        if !s.within_bound() {
            recorder.event(
                "perf.report.bound_exceeded",
                format!("({},{},{}) {}: traffic over m·s·W bound", s.k, s.m, s.w, s.model),
            );
        }
    }
    recorder.counter("perf.report.shapes").add(report.shapes.len() as u64);

    let rows: Vec<Vec<String>> = report
        .shapes
        .iter()
        .map(|s| {
            vec![
                format!("({},{},{})", s.k, s.m, s.w),
                s.model.clone(),
                format!("{:.2}", s.encode_gbps),
                format!("{:.2}", s.decode_gbps),
                format!("{:.3} s", s.save_total_s),
                format!("{:.3} s", s.recovery_total_s),
                format!("{}", s.traffic_bytes),
                format!("{}", s.traffic_bound_bytes),
                if s.within_bound() { "ok" } else { "EXCEEDED" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "(k,m,w)",
            "model",
            "enc GB/s",
            "dec GB/s",
            "save",
            "recovery",
            "traffic B",
            "m·s·W bound B",
            "bound",
        ],
        &rows,
    );

    if let Err(err) = std::fs::write(&out, report.to_json()) {
        eprintln!("could not write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("\nreport written to {out}");

    if let Some(path) = trace_path_from_args() {
        match std::fs::write(&path, sim_save_trace_json()) {
            Ok(()) => println!("simulated save trace written to {}", path.display()),
            Err(err) => {
                eprintln!("could not write trace to {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(obs) = obs {
        obs.finish();
    }

    if !report.within_traffic_bound() {
        eprintln!("\nFAIL: checkpoint traffic exceeds the m·s·W bound (see table above)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
