//! Fig. 3: recovery rate of a 2000-node cluster (500 groups of 4) —
//! replication vs erasure coding, as node failure probability grows.

use ecc_bench::print_table;
use ecc_reliability::{cluster_recovery, ec_recovery, replication_pairs_recovery};

fn main() {
    println!("# Fig. 3: cluster recovery rate, 2000 nodes = 500 groups of 4\n");
    let mut rows = Vec::new();
    for p in [0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05] {
        let rep = cluster_recovery(replication_pairs_recovery(4, p), 500);
        let era = cluster_recovery(ec_recovery(4, 2, p), 500);
        rows.push(vec![
            format!("{p}"),
            format!("{rep:.4}"),
            format!("{era:.4}"),
            format!("{:+.4}", era - rep),
        ]);
    }
    print_table(&["p (node failure)", "replication", "erasure coding", "advantage"], &rows);
    println!("\nShape check: the erasure-coding advantage grows with p (paper Fig. 3).");
}
