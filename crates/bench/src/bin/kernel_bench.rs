//! `kernel-bench`: the coding-kernel sweep behind `BENCH_PR4.json`.
//!
//! Measures every available coding kernel (scalar, and whichever SIMD
//! paths the host CPU supports) over `xor`/`mul`/`mul_xor` at the
//! standard region sizes, plus the pooled systematic encode on the
//! standard `(k, m, w)` shapes, and reports GB/s and each kernel's
//! speedup over scalar. See `DESIGN.md` §11 and the README "Performance"
//! section for how to read the numbers.
//!
//! Flags: `--out <path>` (default `BENCH_PR4.json`) for the JSON
//! report, `--summary <path>` to also write a GitHub-flavoured-markdown
//! summary (CI appends it to the job summary), `--threads <n>` for the
//! coding-pool worker count (default: host parallelism capped at 4),
//! `--obs HOST:PORT` to serve live `/metrics` (gate outcomes surface as
//! `bench_pool_gate_*` counters and `/events` entries) with
//! `--obs-hold-ms N` keeping the exporter up after the sweep.
//! Exits non-zero when the dispatched kernel measurably loses to scalar
//! anywhere in the sweep, or when the pooled encode falls past the
//! kernel→pool gap gate (enforced with ≥ 2 pool threads on a host with
//! ≥ 2 hardware threads; advisory otherwise, with a loud warning).

use std::process::ExitCode;

use ecc_bench::{
    arg_value, default_threads, fmt_bytes, obs_session_from_args, print_table, KernelBenchReport,
};
use ecc_telemetry::Recorder;

fn main() -> ExitCode {
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let threads = arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or_else(default_threads);
    let recorder = Recorder::new();
    let obs = obs_session_from_args(&recorder);
    println!("# kernel-bench: coding-kernel sweep\n");
    let report = KernelBenchReport::collect_with_threads(threads);
    report.record_gate_telemetry(&recorder);
    println!(
        "arch {}, selected kernel {}, available [{}], {} pool threads\n",
        report.arch,
        report.selected,
        report.kernels.join(", "),
        report.threads,
    );

    let rows: Vec<Vec<String>> = report
        .regions
        .iter()
        .map(|r| {
            vec![
                r.op.clone(),
                fmt_bytes(r.region_bytes as u64),
                r.kernel.clone(),
                format!("{:.2}", r.gbps),
                format!("{:.2}x", r.speedup_vs_scalar),
            ]
        })
        .collect();
    print_table(&["op", "region", "kernel", "GB/s", "vs scalar"], &rows);
    println!();

    let rows: Vec<Vec<String>> = report
        .encodes
        .iter()
        .map(|e| {
            vec![
                format!("({},{},{})", e.k, e.m, e.w),
                fmt_bytes(e.chunk_bytes as u64),
                e.kernel.clone(),
                format!("{:.2}", e.gbps),
                format!("{:.2}x", e.speedup_vs_scalar),
            ]
        })
        .collect();
    print_table(&["encode shape", "chunk", "kernel", "GB/s", "vs scalar"], &rows);
    println!("\nbest dispatched speedup vs scalar: {:.2}x", report.best_dispatch_speedup());
    match report.min_pool_ratio() {
        Some(r) => println!(
            "kernel→pool gap: pooled encode at {:.2}x of raw mul_xor ({})",
            r,
            if report.pool_gate_enforced() { "gate enforced" } else { "advisory" },
        ),
        None => println!("kernel→pool gap: not measured at these sizes"),
    }
    if let Some(w) = report.pool_gate_warning() {
        eprintln!("{w}");
    }

    if let Err(err) = std::fs::write(&out, report.to_json()) {
        eprintln!("could not write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("report written to {out}");

    if let Some(path) = arg_value("--summary") {
        if let Err(err) = std::fs::write(&path, report.summary_markdown()) {
            eprintln!("could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("markdown summary written to {path}");
    }

    if let Some(obs) = obs {
        obs.finish();
    }

    let regressions = report.dispatch_regressions();
    if !regressions.is_empty() {
        eprintln!("\nFAIL: dispatched kernel slower than scalar:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
