//! `kernel-bench`: the coding-kernel sweep behind `BENCH_PR4.json`.
//!
//! Measures every available coding kernel (scalar, and whichever SIMD
//! paths the host CPU supports) over `xor`/`mul`/`mul_xor` at the
//! standard region sizes, plus the pooled systematic encode on the
//! standard `(k, m, w)` shapes, and reports GB/s and each kernel's
//! speedup over scalar. See `DESIGN.md` §11 and the README "Performance"
//! section for how to read the numbers.
//!
//! Flags: `--out <path>` (default `BENCH_PR4.json`) for the JSON
//! report, `--summary <path>` to also write a GitHub-flavoured-markdown
//! summary (CI appends it to the job summary). Exits non-zero when the
//! dispatched kernel measurably loses to scalar anywhere in the sweep.

use std::process::ExitCode;

use ecc_bench::{arg_value, fmt_bytes, print_table, KernelBenchReport};

fn main() -> ExitCode {
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_PR4.json".to_string());
    println!("# kernel-bench: coding-kernel sweep\n");
    let report = KernelBenchReport::collect();
    println!(
        "arch {}, selected kernel {}, available [{}]\n",
        report.arch,
        report.selected,
        report.kernels.join(", ")
    );

    let rows: Vec<Vec<String>> = report
        .regions
        .iter()
        .map(|r| {
            vec![
                r.op.clone(),
                fmt_bytes(r.region_bytes as u64),
                r.kernel.clone(),
                format!("{:.2}", r.gbps),
                format!("{:.2}x", r.speedup_vs_scalar),
            ]
        })
        .collect();
    print_table(&["op", "region", "kernel", "GB/s", "vs scalar"], &rows);
    println!();

    let rows: Vec<Vec<String>> = report
        .encodes
        .iter()
        .map(|e| {
            vec![
                format!("({},{},{})", e.k, e.m, e.w),
                fmt_bytes(e.chunk_bytes as u64),
                e.kernel.clone(),
                format!("{:.2}", e.gbps),
                format!("{:.2}x", e.speedup_vs_scalar),
            ]
        })
        .collect();
    print_table(&["encode shape", "chunk", "kernel", "GB/s", "vs scalar"], &rows);
    println!("\nbest dispatched speedup vs scalar: {:.2}x", report.best_dispatch_speedup());

    if let Err(err) = std::fs::write(&out, report.to_json()) {
        eprintln!("could not write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("report written to {out}");

    if let Some(path) = arg_value("--summary") {
        if let Err(err) = std::fs::write(&path, report.summary_markdown()) {
            eprintln!("could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("markdown summary written to {path}");
    }

    let regressions = report.dispatch_regressions();
    if !regressions.is_empty() {
        eprintln!("\nFAIL: dispatched kernel slower than scalar:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
