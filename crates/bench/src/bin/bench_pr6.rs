//! `bench-pr6`: the combined perf baseline behind `BENCH_PR6.json`.
//!
//! Runs the kernel sweep (`kernel-bench`) and the save-pipeline
//! comparison (`pipeline-bench`) at one explicit thread count and
//! writes a single JSON document nesting both reports plus a `gates`
//! section that turns the ROADMAP targets into enforceable numbers:
//!
//! - `min_pool_ratio` — pooled encode GB/s over raw `mul_xor` GB/s at
//!   the matching region size, gated at `1/1.5` (ROADMAP: pooled encode
//!   within 1.5× of raw kernel speed) when `--threads >= 2`;
//! - `speedup_target_2x` — whether the pipelined save reached ≥ 2× the
//!   sequential oracle, evaluated at 4+ threads on a capable host;
//! - `gate_enforced` — whether the regression gates ran for real; a
//!   loud warning (and a non-empty `warnings` array) appears whenever
//!   multi-threaded numbers were requested on a host that cannot
//!   overlap stages, so CI can assert on it instead of silently
//!   passing.
//!
//! Flags: `--out <path>` (default `BENCH_PR6.json`), `--summary <path>`
//! for a GitHub-flavoured-markdown job summary, `--threads <n>`
//! (default: host parallelism capped at 4), `--obs HOST:PORT` to serve
//! live `/metrics` (gate downgrades surface as `bench_gate_*` /
//! `bench_pool_gate_*` counters and `/events` entries) with
//! `--obs-hold-ms N` holding the exporter after the run. Exits non-zero
//! on any enforced gate failure.

use std::process::ExitCode;

use ecc_bench::{
    arg_value, default_threads, obs_session_from_args, KernelBenchReport, PipelineBenchReport,
};
use ecc_telemetry::Recorder;

/// Indents every line of a serialized JSON document so it nests inside
/// the combined report.
fn indent(json: &str, by: &str) -> String {
    json.trim_end()
        .lines()
        .enumerate()
        .map(|(i, l)| if i == 0 { l.to_string() } else { format!("{by}{l}") })
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() -> ExitCode {
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_PR6.json".to_string());
    let threads = arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or_else(default_threads);
    let recorder = Recorder::new();
    let obs = obs_session_from_args(&recorder);
    println!("# bench-pr6: combined kernel + pipeline baseline ({threads} threads)\n");

    let kernel = KernelBenchReport::collect_with_threads(threads);
    let pipeline = PipelineBenchReport::collect_with_threads(threads);
    kernel.record_gate_telemetry(&recorder);
    pipeline.record_gate_telemetry(&recorder);

    let mut warnings = Vec::new();
    if let Some(w) = pipeline.gate_warning() {
        warnings.push(w);
    }
    if let Some(w) = kernel.pool_gate_warning() {
        warnings.push(w);
    }

    let mut doc = String::from("{\n  \"schema\": \"eccheck-bench-pr6/1\",\n");
    doc.push_str(&format!("  \"threads\": {threads},\n"));
    doc.push_str("  \"gates\": {\n");
    doc.push_str(&format!("    \"pool_gate_enforced\": {},\n", kernel.pool_gate_enforced()));
    match kernel.min_pool_ratio() {
        Some(r) => doc.push_str(&format!("    \"min_pool_ratio\": {r:.3},\n")),
        None => doc.push_str("    \"min_pool_ratio\": null,\n"),
    }
    doc.push_str(&format!("    \"pipeline_gate_enforced\": {},\n", pipeline.gate_enforced()));
    match pipeline.speedup_target_met() {
        Some(met) => doc.push_str(&format!("    \"speedup_target_2x\": {met},\n")),
        None => doc.push_str("    \"speedup_target_2x\": null,\n"),
    }
    let quoted: Vec<String> = warnings.iter().map(|w| format!("\"{w}\"")).collect();
    doc.push_str(&format!("    \"warnings\": [{}]\n", quoted.join(", ")));
    doc.push_str("  },\n");
    doc.push_str(&format!("  \"kernel\": {},\n", indent(&kernel.to_json(), "  ")));
    doc.push_str(&format!("  \"pipeline\": {}\n", indent(&pipeline.to_json(), "  ")));
    doc.push_str("}\n");

    if let Err(err) = std::fs::write(&out, &doc) {
        eprintln!("could not write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("combined report written to {out}");

    if let Some(path) = arg_value("--summary") {
        let mut md = String::from("## bench-pr6 (BENCH_PR6.json)\n\n");
        md.push_str(&kernel.summary_markdown());
        md.push('\n');
        md.push_str(&pipeline.summary_markdown());
        if let Err(err) = std::fs::write(&path, md) {
            eprintln!("could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("markdown summary written to {path}");
    }

    for w in &warnings {
        eprintln!("{w}");
    }

    if let Some(obs) = obs {
        obs.finish();
    }

    let mut failed = false;
    let kernel_regressions = kernel.dispatch_regressions();
    if !kernel_regressions.is_empty() {
        eprintln!("\nFAIL: kernel sweep regressed past its gates:");
        for r in &kernel_regressions {
            eprintln!("  {r}");
        }
        failed = true;
    }
    let pipeline_regressions = pipeline.regressions();
    if !pipeline_regressions.is_empty() {
        if pipeline.gate_enforced() {
            eprintln!("\nFAIL: pipelined save regressed past the gate:");
            for r in &pipeline_regressions {
                eprintln!("  {r}");
            }
            failed = true;
        } else {
            println!("\nADVISORY (gate not enforced on this host):");
            for r in &pipeline_regressions {
                println!("  {r}");
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
