//! Fig. 12: average training iteration time vs checkpoint frequency for
//! GPT-2 5.3B.

use ecc_baselines::timing::{
    average_iteration_time, base1_save, base2_save, base3_save, BaselineConstants, SaveCost,
};
use ecc_bench::{fmt_secs, print_table};
use ecc_cluster::ClusterSpec;
use ecc_dnn::{GpuSpec, ModelConfig, ParallelismSpec, TrainingTimeModel};
use eccheck::timing::{save_timing, TimingConstants};
use eccheck::EcCheckConfig;

fn main() {
    println!("# Fig. 12: checkpointing overhead for GPT-2 5.3B training\n");
    let spec = ClusterSpec::paper_testbed();
    let model = ModelConfig::gpt2(2560, 40, 64);
    let par = ParallelismSpec::new(4, 4, 1).unwrap();
    let shard = model.shard_bytes(&par);
    let bc = BaselineConstants::default();
    let tc = TimingConstants::default();
    let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), spec.nic()).unwrap();
    let iteration = tm.iteration_time();
    let profile = tm.profile(400);
    let ecc_t = save_timing(&spec, &EcCheckConfig::paper_defaults(), shard, Some(&profile), &tc);
    let ecc_cost = SaveCost { stall: ecc_t.stall(), total: ecc_t.total };

    println!("iteration time (no checkpointing): {}\n", fmt_secs(iteration));
    let mut rows = Vec::new();
    for interval in [1u64, 2, 5, 10, 20, 50, 100] {
        let b1 = average_iteration_time(iteration, interval, base1_save(&spec, shard, &bc));
        let b2 = average_iteration_time(iteration, interval, base2_save(&spec, shard, &bc));
        let b3 = average_iteration_time(iteration, interval, base3_save(&spec, shard));
        let ec = average_iteration_time(iteration, interval, ecc_cost);
        rows.push(vec![
            format!("1/{interval}"),
            fmt_secs(b1),
            fmt_secs(b2),
            fmt_secs(b3),
            fmt_secs(ec),
        ]);
    }
    print_table(&["Frequency (per iter)", "base1", "base2", "base3", "ECCheck"], &rows);
    println!("\nShape check: base1's overhead is massive at every frequency; base2");
    println!("degrades as frequency rises (its async persist backpressures); base3 and");
    println!("ECCheck stay near the bare iteration time (paper Fig. 12).");

    ecc_bench::print_live_telemetry();
    ecc_bench::write_trace_if_requested();
}
