//! Fig. 13: recovery time under the two failure scenarios of the paper,
//! for GPT-2/BERT/T5 5.3B-class models.

use ecc_baselines::timing::{base3_recovery, remote_recovery, BaselineConstants};
use ecc_bench::{fmt_ratio, fmt_secs, print_table};
use ecc_cluster::{ClusterSpec, FailureScenario};
use ecc_dnn::{ModelConfig, ParallelismSpec};
use eccheck::timing::{recovery_timing, TimingConstants};
use eccheck::EcCheckConfig;

fn main() {
    let spec = ClusterSpec::paper_testbed();
    let cfg = EcCheckConfig::paper_defaults();
    let bc = BaselineConstants::default();
    let tc = TimingConstants::default();
    let par = ParallelismSpec::new(4, 4, 1).unwrap();
    let models = [
        ("GPT-2 5.3B", ModelConfig::gpt2(2560, 40, 64)),
        ("BERT 5.3B", ModelConfig::bert(2560, 40, 64)),
        ("T5 5.3B", ModelConfig::t5(2560, 40, 64)),
    ];

    for (scenario, title, base3_works) in [
        (FailureScenario::fig13a(), "(a) nodes 1 and 3 fail — all data nodes survive", true),
        (FailureScenario::fig13b(), "(b) nodes 2 and 3 fail — a data node is lost", false),
    ] {
        println!("# Fig. 13{title}\n");
        let mut rows = Vec::new();
        for (name, model) in models {
            let shard = model.shard_bytes(&par);
            let remote = remote_recovery(&spec, shard, &bc);
            let b3 = if base3_works {
                fmt_secs(base3_recovery(&spec, shard, scenario.count()))
            } else {
                "FAILS (group lost)".to_string()
            };
            let ecc = recovery_timing(&spec, &cfg, shard, &scenario, &tc);
            rows.push(vec![
                name.to_string(),
                fmt_secs(remote),
                fmt_secs(remote),
                b3,
                fmt_secs(ecc.total),
                fmt_ratio(remote, ecc.total),
            ]);
        }
        print_table(&["Model", "base1", "base2", "base3", "ECCheck", "speedup vs remote"], &rows);
        println!();
    }
    println!("Shape check: ECCheck recovers over the fast fabric in both scenarios");
    println!("(slower in (b) due to decoding), while base3 cannot recover in (b) at all");
    println!("and the remote baselines pay the 5 Gbps reload (paper: up to 13.9x slower).");

    ecc_bench::print_live_telemetry();
    ecc_bench::write_trace_if_requested();
}
