//! `explore` — predict ECCheck behaviour for a configuration given on
//! the command line.
//!
//! Usage:
//!
//! ```text
//! explore [nodes] [gpus_per_node] [hidden] [layers] [interval_iters]
//! ```
//!
//! Defaults reproduce the paper testbed with GPT-2 5.3B. Prints the
//! placement, traffic accounting, predicted save/recovery times for
//! ECCheck and the baselines, and the training overhead at the chosen
//! checkpoint interval.

use ecc_baselines::timing::{
    average_iteration_time, base1_save, base2_save, base3_save, remote_recovery, BaselineConstants,
    SaveCost,
};
use ecc_bench::{fmt_bytes, fmt_secs, print_table};
use ecc_cluster::{ClusterSpec, FailureScenario};
use ecc_dnn::{GpuSpec, ModelConfig, ParallelismSpec, TrainingTimeModel};
use eccheck::timing::{recovery_timing, save_timing, TimingConstants};
use eccheck::{select_data_parity_nodes, EcCheckConfig, ReductionPlan};

fn arg(n: usize, default: usize) -> usize {
    std::env::args().nth(n).and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = arg(1, 4);
    let gpus = arg(2, 4);
    let hidden = arg(3, 2560);
    let layers = arg(4, 64);
    let interval = arg(5, 10) as u64;

    let heads = (hidden / 64).max(1);
    let model = ModelConfig::gpt2(hidden, heads, layers);
    let spec = ClusterSpec::v100_scalability(nodes, gpus);
    let tp = gpus;
    let pp = nodes;
    let par = ParallelismSpec::new(tp, pp, 1)?;
    par.validate_for(&model)?;
    let shard = model.shard_bytes(&par);
    let cfg = EcCheckConfig::paper_defaults().with_km(nodes / 2, nodes - nodes / 2);
    let bc = BaselineConstants::default();
    let tc = TimingConstants::default();

    println!(
        "# {} on {nodes}x{gpus} GPUs (TP={tp}, PP={pp}), shard {} / worker\n",
        model.label(),
        fmt_bytes(shard)
    );

    let placement = select_data_parity_nodes(&spec.origin_group(), cfg.k())?;
    let plan = ReductionPlan::build(&spec, &placement, cfg.m())?;
    println!("placement: data {:?}, parity {:?}", placement.data_nodes(), placement.parity_nodes());
    let t = plan.traffic(shard);
    println!(
        "checkpoint traffic: xor {} + data {} + parity {} = {}\n",
        fmt_bytes(t.xor_reduction),
        fmt_bytes(t.data_p2p),
        fmt_bytes(t.parity_p2p),
        fmt_bytes(t.total())
    );

    let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), spec.nic())?;
    let iteration = tm.iteration_time();
    let profile = tm.profile(400);
    let ecc = save_timing(&spec, &cfg, shard, Some(&profile), &tc);
    let systems: Vec<(&str, SaveCost)> = vec![
        ("base1", base1_save(&spec, shard, &bc)),
        ("base2", base2_save(&spec, shard, &bc)),
        ("base3", base3_save(&spec, shard)),
        ("ECCheck", SaveCost { stall: ecc.stall(), total: ecc.total }),
    ];
    let rows: Vec<Vec<String>> = systems
        .iter()
        .map(|(name, cost)| {
            let avg = average_iteration_time(iteration, interval, *cost);
            vec![name.to_string(), fmt_secs(cost.stall), fmt_secs(cost.total), fmt_secs(avg)]
        })
        .collect();
    println!("iteration (no ckpt): {}; checkpoint every {interval} iters\n", fmt_secs(iteration));
    print_table(&["system", "stall", "ckpt total", "avg iteration"], &rows);

    println!("\nrecovery predictions:");
    let worst = FailureScenario::new(placement.data_nodes()[..1].to_vec());
    let ecc_rec = recovery_timing(&spec, &cfg, shard, &worst, &tc);
    println!(
        "  ECCheck ({:?} after losing data node {}): {}",
        ecc_rec.workflow,
        placement.data_nodes()[0],
        fmt_secs(ecc_rec.total)
    );
    println!("  remote reload (base1/base2): {}", fmt_secs(remote_recovery(&spec, shard, &bc)));
    Ok(())
}
