//! Fig. 15: fault-tolerance capacity of base3 vs ECCheck at identical
//! redundancy (k = m = n/2) as the node count grows.

use ecc_bench::print_table;
use ecc_reliability::{ec_recovery, replication_pairs_recovery};

fn main() {
    println!("# Fig. 15: recovery rate at identical redundancy (k = m = n/2)\n");
    for p in [0.05, 0.1, 0.2] {
        println!("## node failure probability p = {p}\n");
        let mut rows = Vec::new();
        for n in [4usize, 8, 16, 32, 64] {
            let rep = replication_pairs_recovery(n, p);
            let era = ec_recovery(n, n / 2, p);
            rows.push(vec![
                n.to_string(),
                format!("{rep:.4}"),
                format!("{era:.4}"),
                format!("{:+.4}", era - rep),
            ]);
        }
        print_table(&["nodes n", "base3 (replication)", "ECCheck (EC)", "advantage"], &rows);
        println!();
    }
    println!("Shape check: ECCheck dominates at every n, and the advantage widens as");
    println!("the cluster grows (paper Fig. 15).");

    ecc_bench::print_live_telemetry();
    ecc_bench::write_trace_if_requested();
}
