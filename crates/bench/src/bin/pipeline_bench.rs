//! `pipeline-bench`: the save-pipeline comparison behind `BENCH_PR5.json`.
//!
//! Times `EcCheck::save` in both `SaveMode`s over the standard shard
//! ladder on the toy real-byte cluster and reports wall time, the
//! pipelined/sequential speedup, and the executor's per-stage
//! occupancy. See `DESIGN.md` §12 and `EXPERIMENTS.md` for how to read
//! the numbers.
//!
//! Flags: `--out <path>` (default `BENCH_PR5.json`) for the JSON
//! report, `--summary <path>` to also write a GitHub-flavoured-markdown
//! summary (CI appends it to the job summary), `--threads <n>` for the
//! coding thread count (default: host parallelism capped at 4). Exits
//! non-zero when the pipelined executor loses to the sequential oracle
//! by more than 10% on any shape — enforced only on hosts with at least
//! two threads, where stage overlap is physically possible; single-core
//! hosts get an advisory report instead, plus a loud warning whenever
//! `--threads >= 2` was requested so CI can assert `gate_enforced`.
//! `--obs HOST:PORT` serves live `/metrics` (gate outcomes surface as
//! `bench_gate_*` counters and `/events` entries); `--obs-hold-ms N`
//! keeps the exporter up after the run.

use std::process::ExitCode;

use ecc_bench::{
    arg_value, default_threads, fmt_bytes, obs_session_from_args, print_table, PipelineBenchReport,
};
use ecc_telemetry::Recorder;

fn main() -> ExitCode {
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let threads = arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or_else(default_threads);
    let recorder = Recorder::new();
    let obs = obs_session_from_args(&recorder);
    println!("# pipeline-bench: pipelined vs sequential save\n");
    let report = PipelineBenchReport::collect_with_threads(threads);
    report.record_gate_telemetry(&recorder);
    println!(
        "arch {}, {} host threads, {} requested\n",
        report.arch, report.host_threads, report.requested_threads
    );

    let rows: Vec<Vec<String>> = report
        .shapes
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                fmt_bytes(s.shard_bytes as u64),
                format!("{:.2}", s.sequential_ms),
                format!("{:.2}", s.pipelined_ms),
                format!("{:.2}x", s.speedup),
                s.stats.stripes.to_string(),
                format!("{:.0}%", s.stats.encode_occupancy() * 100.0),
                format!("{:.0}%", s.stats.transfer_occupancy() * 100.0),
            ]
        })
        .collect();
    print_table(
        &["shape", "shard", "seq ms", "pipe ms", "speedup", "stripes", "enc occ", "xfer occ"],
        &rows,
    );
    println!("\nbest pipelined speedup: {:.2}x", report.best_speedup());
    if let Some(warning) = report.gate_warning() {
        eprintln!("\n{warning}");
    }
    if let Some(met) = report.speedup_target_met() {
        println!(
            "ROADMAP target (>= 2x pipelined speedup at 4+ threads): {}",
            if met { "met" } else { "NOT met" }
        );
    }

    if let Err(err) = std::fs::write(&out, report.to_json()) {
        eprintln!("could not write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("report written to {out}");

    if let Some(path) = arg_value("--summary") {
        if let Err(err) = std::fs::write(&path, report.summary_markdown()) {
            eprintln!("could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("markdown summary written to {path}");
    }

    if let Some(obs) = obs {
        obs.finish();
    }

    let regressions = report.regressions();
    if !regressions.is_empty() {
        if report.gate_enforced() {
            eprintln!("\nFAIL: pipelined save regressed past the gate:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            return ExitCode::FAILURE;
        }
        println!("\nADVISORY (single-core host, stages cannot overlap — gate not enforced):");
        for r in &regressions {
            println!("  {r}");
        }
    }
    ExitCode::SUCCESS
}
