//! `delta-bench`: the delta-vs-full save comparison behind `BENCH_PR10.json`.
//!
//! Times `EcCheck::save_delta` against a full `EcCheck::save` of the
//! same mutated state over a ladder of dirty-set densities and reports
//! wall time, the delta/full speedup, and the data-plane traffic of
//! each path against the full-save `m·s·W` parity bound. See
//! `DESIGN.md` §18 and `EXPERIMENTS.md` for how to read the numbers.
//!
//! Flags: `--out <path>` (default `BENCH_PR10.json`) for the JSON
//! report, `--summary <path>` to also write a GitHub-flavoured-markdown
//! summary (CI appends it to the job summary), `--threads <n>` for the
//! coding thread count (default: host parallelism capped at 4). Exits
//! non-zero when delta traffic reaches the full-save bound on any
//! sparse shape (enforced on every host — byte accounting is
//! deterministic) or, on hosts with at least two threads, when the
//! delta path is more than 10% slower than the full save on a sparse
//! shape; single-core hosts get an advisory latency report instead.
//! `--obs HOST:PORT` serves live `/metrics`; `--obs-hold-ms N` keeps
//! the exporter up after the run.

use std::process::ExitCode;

use ecc_bench::{
    arg_value, default_threads, fmt_bytes, obs_session_from_args, print_table, DeltaBenchReport,
};
use ecc_telemetry::Recorder;

fn main() -> ExitCode {
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let threads = arg_value("--threads")
        .map(|v| v.parse().expect("--threads takes a positive integer"))
        .unwrap_or_else(default_threads);
    let recorder = Recorder::new();
    let obs = obs_session_from_args(&recorder);
    println!("# delta-bench: GF-linear delta save vs full save\n");
    let report = DeltaBenchReport::collect_with_threads(threads);
    report.record_gate_telemetry(&recorder);
    println!(
        "arch {}, {} host threads, {} requested\n",
        report.arch, report.host_threads, report.requested_threads
    );

    let rows: Vec<Vec<String>> = report
        .shapes
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                format!("{}/{}", s.dirty_workers, s.world),
                format!("{:.2}", s.full_ms),
                format!("{:.2}", s.delta_ms),
                format!("{:.2}x", s.speedup),
                fmt_bytes(s.delta_traffic_bytes),
                fmt_bytes(s.full_traffic_bytes),
                format!("{:.2}{}", s.traffic_ratio, if s.sparse { "" } else { " (dense)" }),
            ]
        })
        .collect();
    print_table(
        &["shape", "dirty", "full ms", "delta ms", "speedup", "delta traffic", "bound", "ratio"],
        &rows,
    );
    if let Some(saving) = report.best_traffic_saving() {
        println!("\nbest sparse traffic saving: {saving:.1}x under the m·s·W bound");
    }
    if let Some(warning) = report.gate_warning() {
        eprintln!("\n{warning}");
    }

    if let Err(err) = std::fs::write(&out, report.to_json()) {
        eprintln!("could not write {out}: {err}");
        return ExitCode::FAILURE;
    }
    println!("report written to {out}");

    if let Some(path) = arg_value("--summary") {
        if let Err(err) = std::fs::write(&path, report.summary_markdown()) {
            eprintln!("could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("markdown summary written to {path}");
    }

    if let Some(obs) = obs {
        obs.finish();
    }

    let traffic = report.traffic_regressions();
    if !traffic.is_empty() {
        eprintln!("\nFAIL: delta traffic reached the full-save bound (enforced on every host):");
        for r in &traffic {
            eprintln!("  {r}");
        }
        return ExitCode::FAILURE;
    }
    let latency = report.latency_regressions();
    if !latency.is_empty() {
        if report.gate_enforced() {
            eprintln!("\nFAIL: delta save regressed past the latency gate:");
            for r in &latency {
                eprintln!("  {r}");
            }
            return ExitCode::FAILURE;
        }
        println!("\nADVISORY (single-core host — latency gate not enforced):");
        for r in &latency {
            println!("  {r}");
        }
    }
    ExitCode::SUCCESS
}
