//! Fig. 10: checkpointing time of base1/base2/base3/ECCheck across the
//! nine Table I model configurations on the 4×4-GPU testbed.

use ecc_baselines::timing::{base1_save, base2_save, base3_save, BaselineConstants};
use ecc_bench::{fmt_ratio, fmt_secs, print_table};
use ecc_cluster::ClusterSpec;
use ecc_dnn::{table_i_configs, ParallelismSpec};
use eccheck::timing::{save_timing, TimingConstants};
use eccheck::EcCheckConfig;

fn main() {
    println!("# Fig. 10: checkpointing time (save call to completion)\n");
    let spec = ClusterSpec::paper_testbed();
    let cfg = EcCheckConfig::paper_defaults();
    let bc = BaselineConstants::default();
    let tc = TimingConstants::default();
    let par = ParallelismSpec::new(4, 4, 1).unwrap();

    let mut rows = Vec::new();
    let mut max_speedup: f64 = 0.0;
    for (model, label) in table_i_configs() {
        let shard = model.shard_bytes(&par);
        let b1 = base1_save(&spec, shard, &bc);
        let b2 = base2_save(&spec, shard, &bc);
        let b3 = base3_save(&spec, shard);
        let ecc = save_timing(&spec, &cfg, shard, None, &tc);
        max_speedup = max_speedup.max(b1.total.as_secs_f64() / ecc.total.as_secs_f64());
        rows.push(vec![
            format!("{} {label}", model.family()),
            fmt_secs(b1.total),
            fmt_secs(b2.total),
            fmt_secs(b3.total),
            fmt_secs(ecc.total),
            fmt_ratio(b1.total, ecc.total),
            fmt_ratio(ecc.total, b3.total),
        ]);
    }
    print_table(&["Model", "base1", "base2", "base3", "ECCheck", "vs base1", "vs base3"], &rows);
    println!("\nShape check: in-memory checkpointing (base3, ECCheck) is far below the");
    println!("remote-storage baselines; ECCheck costs a modest factor over base3 (paper:");
    println!("~1.6x) in exchange for tolerating any 2 concurrent node failures.");
    println!("Max ECCheck speedup over remote-storage baselines here: {max_speedup:.1}x");

    ecc_bench::print_live_telemetry();
    ecc_bench::write_trace_if_requested();
}
