//! Table I: model configurations and derived sizes.

use ecc_bench::{fmt_bytes, print_table};
use ecc_dnn::table_i_configs;

fn main() {
    println!("# Table I: model configurations\n");
    let rows: Vec<Vec<String>> = table_i_configs()
        .into_iter()
        .map(|(m, label)| {
            vec![
                m.family().to_string(),
                m.hidden().to_string(),
                m.heads().to_string(),
                m.layers().to_string(),
                label.to_string(),
                format!("{:.2}B", m.param_count() as f64 / 1e9),
                fmt_bytes(m.checkpoint_bytes()),
            ]
        })
        .collect();
    print_table(
        &["Model", "Hidden size", "#AH", "#Layers", "Paper size", "Our count", "Checkpoint"],
        &rows,
    );

    ecc_bench::print_live_telemetry();
    ecc_bench::write_trace_if_requested();
}
