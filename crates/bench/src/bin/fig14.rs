//! Fig. 14: checkpointing-time scalability from 4 to 32 V100 GPUs with
//! per-GPU model size held constant (n = 4 nodes, k = m = 2).

use ecc_baselines::timing::{base1_save, base2_save, base3_save, BaselineConstants};
use ecc_bench::{fmt_secs, print_table};
use ecc_cluster::ClusterSpec;
use ecc_dnn::{ModelConfig, ParallelismSpec};
use eccheck::timing::{save_timing, TimingConstants};
use eccheck::EcCheckConfig;

fn main() {
    println!("# Fig. 14: scalability of checkpointing time, 4 -> 32 V100 GPUs\n");
    let bc = BaselineConstants::default();
    let tc = TimingConstants::default();
    let cfg = EcCheckConfig::paper_defaults();
    // GPT-2, hidden 1024, 16 layers per 4 GPUs: the per-GPU shard from
    // the base configuration is held constant while GPUs scale.
    let base_model = ModelConfig::gpt2(1024, 16, 16);
    let base_par = ParallelismSpec::new(4, 1, 1).unwrap();
    let shard = base_model.shard_bytes(&base_par);

    let mut rows = Vec::new();
    for g in [1usize, 2, 4, 8] {
        let gpus = 4 * g;
        let spec = ClusterSpec::v100_scalability(4, g);
        let b1 = base1_save(&spec, shard, &bc);
        let b2 = base2_save(&spec, shard, &bc);
        let b3 = base3_save(&spec, shard);
        let ecc = save_timing(&spec, &cfg, shard, None, &tc);
        rows.push(vec![
            gpus.to_string(),
            fmt_secs(b1.total),
            fmt_secs(b2.total),
            fmt_secs(b3.total),
            fmt_secs(ecc.total),
        ]);
    }
    print_table(&["GPUs", "base1", "base2", "base3", "ECCheck"], &rows);
    println!("\nShape check: base1/base2 scale linearly with GPU count (total bytes grow,");
    println!("the 5 Gbps storage uplink does not), while base3 and ECCheck stay flat —");
    println!("per-device checkpoint traffic is m*s, independent of cluster size (§V-F).");

    ecc_bench::print_live_telemetry();
    ecc_bench::write_trace_if_requested();
}
