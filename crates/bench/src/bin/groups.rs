//! Extension (paper §VI future work): optimal checkpointing group size.
//!
//! Sweeps candidate group sizes for a larger cluster and reports each
//! size's per-device communication time, cluster loss probability, and
//! the expected-cost objective; then shows how the optimum shifts with
//! the node failure probability.

use ecc_baselines::{base3_grouped_save, timing::base3_save};
use ecc_bench::{fmt_secs, print_table};
use ecc_cluster::ClusterSpec;
use ecc_reliability::ec_recovery;
use eccheck::optimal_group_size;

fn main() {
    println!("# Extension: optimal ECCheck group size (paper §VI future work)\n");
    let spec = ClusterSpec::v100_scalability(16, 4); // 64 GPUs
    let shard = 1u64 << 30; // 1 GiB per worker

    for p in [0.001, 0.01, 0.05, 0.2] {
        println!("## per-node failure probability p = {p}\n");
        let (costs, best) = optimal_group_size(&spec, shard, p);
        let rows: Vec<Vec<String>> = costs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                vec![
                    format!("{}{}", c.group_nodes, if i == best { "  <- optimal" } else { "" }),
                    fmt_secs(c.comm_time),
                    format!("{:.6}", c.loss_probability),
                    format!("{:.3} s", c.expected_cost),
                ]
            })
            .collect();
        print_table(
            &["group size (nodes)", "comm / device", "P(cluster loss)", "expected cost"],
            &rows,
        );
        println!();
    }
    println!("Shape check: reliable clusters favour small groups (communication");
    println!("dominates); flaky clusters favour large groups (tolerance dominates) —");
    println!("the trade-off the paper's conclusion describes.\n");

    // §II-A made concrete: matching a tolerance target with replication
    // groups vs erasure coding on an 8-node cluster.
    println!("## Matched-tolerance comparison, 8 nodes (paper §II-A)\n");
    let spec8 = ClusterSpec::v100_scalability(8, 4);
    let shard = 1u64 << 30;
    let mut rows = Vec::new();
    for tolerance in [1usize, 2, 3] {
        let rep_group = tolerance + 1; // G-1 failures tolerated
        let rep_cost = if tolerance == 1 {
            base3_save(&spec8, shard)
        } else {
            base3_grouped_save(&spec8, shard, rep_group)
        };
        let k = 8 - tolerance;
        let ec_memory = 8.0 / k as f64;
        let ec_rate = ec_recovery(8, tolerance, 0.1);
        rows.push(vec![
            tolerance.to_string(),
            format!("{rep_group}x mem, {}", fmt_secs(rep_cost.total)),
            format!("{ec_memory:.2}x mem, m={tolerance}"),
            format!("{ec_rate:.4}"),
        ]);
    }
    print_table(
        &["tolerance (failures)", "replication (group)", "erasure coding", "EC recovery @ p=0.1"],
        &rows,
    );
    println!("\nReplication buys each extra failure with a whole extra copy of the");
    println!("checkpoint in memory; erasure coding buys it with one parity volume.");
}
