//! Fig. 4: serialization share of checkpointing time for GPT-2 models
//! saved to remote storage, as the aggregated storage bandwidth grows.

use ecc_baselines::timing::BaselineConstants;
use ecc_bench::{fmt_secs, print_table};
use ecc_cluster::ClusterSpec;
use ecc_dnn::{ModelConfig, ParallelismSpec};
use ecc_sim::{Bandwidth, SimDuration};

fn main() {
    println!("# Fig. 4: serialization overhead vs remote-storage bandwidth\n");
    let constants = BaselineConstants::default();
    let par = ParallelismSpec::new(4, 1, 1).unwrap(); // 4 GPUs as in the paper's Fig. 4 testbed
    let models =
        [("GPT-2 345M", ModelConfig::gpt2_345m()), ("GPT-2 1.6B", ModelConfig::gpt2(1600, 32, 48))];
    let mut rows = Vec::new();
    for (name, model) in models {
        let shard = model.shard_bytes(&par);
        for gbps in [5.0, 10.0, 20.0] {
            let spec = ClusterSpec::new(
                4,
                1,
                Bandwidth::from_gbps(100.0),
                Bandwidth::from_gibps(300.0),
                Bandwidth::from_gibps(20.0),
                Bandwidth::from_gbps(gbps),
                512 << 30,
            );
            let serialize = SimDuration::from_secs_f64(shard as f64 / constants.serialize_rate);
            let transfer = spec.remote().transfer_time(shard * 4);
            let share = serialize.as_secs_f64() / (serialize + transfer).as_secs_f64();
            rows.push(vec![
                name.to_string(),
                format!("{gbps} Gbps"),
                fmt_secs(serialize),
                fmt_secs(transfer),
                format!("{:.1}%", share * 100.0),
            ]);
        }
    }
    print_table(
        &["Model", "Storage BW", "Serialization", "Transfer", "Serialization share"],
        &rows,
    );
    println!("\nShape check: the serialization share grows as storage bandwidth grows");
    println!("(transfer shrinks, serialization stays) — the paper's motivation for the");
    println!("serialization-free protocol.");
}
