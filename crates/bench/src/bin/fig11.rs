//! Fig. 11: time breakdown of ECCheck checkpointing (steps 1/2/3) for
//! GPT-2 models of increasing size.

use ecc_bench::{fmt_secs, print_table};
use ecc_cluster::ClusterSpec;
use ecc_dnn::{GpuSpec, ModelConfig, ParallelismSpec, TrainingTimeModel};
use eccheck::timing::{save_timing, TimingConstants};
use eccheck::EcCheckConfig;

fn main() {
    println!("# Fig. 11: ECCheck checkpointing time breakdown\n");
    let spec = ClusterSpec::paper_testbed();
    let cfg = EcCheckConfig::paper_defaults();
    let tc = TimingConstants::default();
    let par = ParallelismSpec::new(4, 4, 1).unwrap();
    let models = [
        ("GPT-2 1.6B", ModelConfig::gpt2(1600, 32, 48)),
        ("GPT-2 5.3B", ModelConfig::gpt2(2560, 40, 64)),
        ("GPT-2 20B", ModelConfig::gpt2(5120, 40, 64)),
    ];
    let mut rows = Vec::new();
    for (name, model) in models {
        let shard = model.shard_bytes(&par);
        let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), spec.nic()).unwrap();
        let profile = tm.profile(400);
        let t = save_timing(&spec, &cfg, shard, Some(&profile), &tc);
        let blocking_share = t.stall().as_secs_f64() / t.total.as_secs_f64() * 100.0;
        rows.push(vec![
            name.to_string(),
            fmt_secs(t.step1_offload),
            fmt_secs(t.step2_broadcast),
            fmt_secs(t.step3_pipeline),
            fmt_secs(t.total),
            format!("{blocking_share:.1}%"),
        ]);
    }
    print_table(
        &["Model", "Step 1 (DtoH)", "Step 2 (bcast)", "Step 3 (pipeline)", "Total", "Blocking"],
        &rows,
    );
    println!("\nShape check: step 1 blocks training only briefly, step 2 is negligible,");
    println!("and the asynchronous step 3 pipeline dominates (paper Fig. 11).");

    ecc_bench::print_live_telemetry();
    ecc_bench::write_trace_if_requested();
}
