//! The live-telemetry appendix every figure binary prints.
//!
//! The figures themselves come from the analytic timing model; this
//! section complements them with measurements from a *real-byte* engine
//! run on the toy cluster — encode throughput, per-phase save latency
//! and XOR-op counts straight from the `ecc-telemetry` recorder — so a
//! reader can line the model up against an actual execution.

use ecc_cluster::{Cluster, ClusterSpec};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};
use ecc_erasure::{CodeParams, ErasureCode, ScheduleKind};
use ecc_telemetry::{fmt_ns, fmt_rate, Snapshot};
use eccheck::{EcCheck, EcCheckConfig};

use crate::print_table;

/// Runs a small real-byte checkpoint workload (three saves, a failure
/// burst, one recovery) and prints its telemetry report: encode
/// throughput, per-phase save latencies, XOR-op counts and the
/// smart-vs-dumb schedule comparison.
///
/// Prints a diagnostic line instead of panicking if the toy workload
/// cannot be built (it always can on supported configurations).
pub fn print_live_telemetry() {
    match run_workload() {
        Ok(snapshot) => print_report(&snapshot),
        Err(err) => println!("\n(telemetry workload unavailable: {err})"),
    }
}

fn run_workload() -> Result<Snapshot, Box<dyn std::error::Error>> {
    let spec = ClusterSpec::tiny_test(4, 2);
    let mut cluster = Cluster::new(spec);
    let model = ModelConfig::gpt2(64, 4, 4).with_vocab(512).with_seq_len(32);
    let par = ParallelismSpec::new(2, 2, 2)?;
    let sd_spec = StateDictSpec { iteration: 100, ..StateDictSpec::new(model, par) };
    let dicts: Vec<_> = (0..spec.world_size())
        .map(|w| build_worker_state_dict(&sd_spec, w))
        .collect::<Result<_, _>>()?;

    let config = EcCheckConfig::paper_defaults().with_packet_size(4096);
    let mut ecc = EcCheck::initialize(&spec, config)?;
    for _ in 0..3 {
        ecc.save(&mut cluster, &dicts)?;
    }
    cluster.fail_node(1);
    cluster.fail_node(3);
    cluster.replace_node(1);
    cluster.replace_node(3);
    ecc.load(&mut cluster)?;
    Ok(ecc.recorder().snapshot())
}

fn print_report(snap: &Snapshot) {
    println!("\n== live telemetry (real-byte engine run, 4-node toy cluster) ==");

    if let Some(rate) = snap.rate_per_sec("erasure.encode.bytes", "erasure.encode.ns") {
        println!(
            "encode throughput: {} over {} encode calls",
            fmt_rate(rate),
            snap.counter("erasure.encode.calls"),
        );
    }

    let phases = [
        ("decompose", "ecc.save.decompose_ns"),
        ("pack", "ecc.save.pack_ns"),
        ("build chunks", "ecc.save.build_chunks_ns"),
        ("encode", "ecc.save.encode_ns"),
        ("place (P2P)", "ecc.save.place_ns"),
        ("total save", "ecc.save.ns"),
    ];
    let rows: Vec<Vec<String>> = phases
        .iter()
        .filter_map(|(label, metric)| {
            snap.histogram(metric).map(|h| {
                vec![
                    (*label).to_string(),
                    h.count.to_string(),
                    fmt_ns(h.mean()),
                    fmt_ns(h.min as f64),
                    fmt_ns(h.max as f64),
                ]
            })
        })
        .collect();
    println!("\nper-phase save latency:");
    print_table(&["phase", "n", "mean", "min", "max"], &rows);

    println!(
        "\nXOR ops executed: encode {} / decode {}  (recoveries: resend {}, decode {}, remote {})",
        snap.counter("erasure.encode.xor_ops"),
        snap.counter("erasure.decode.xor_ops"),
        snap.counter("ecc.load.workflow.resend"),
        snap.counter("ecc.load.workflow.decode"),
        snap.counter("ecc.load.workflow.remote"),
    );

    print_schedule_comparison();
}

/// Prints smart-vs-dumb XOR schedule sizes across representative
/// `(k, m, w)` shapes — the paper's smart-scheduling saving (§IV-A).
pub fn print_schedule_comparison() {
    let shapes = [(2usize, 2usize, 8u8), (4, 2, 8), (6, 3, 8), (8, 4, 8)];
    let mut rows = Vec::new();
    for (k, m, w) in shapes {
        let Ok(params) = CodeParams::new(k, m, w) else { continue };
        let Ok(code) = ErasureCode::cauchy_good(params) else { continue };
        let smart = code.schedule(ScheduleKind::Smart).xor_count();
        let dumb = code.schedule(ScheduleKind::Dumb).xor_count();
        rows.push(vec![
            format!("({k},{m},{w})"),
            smart.to_string(),
            dumb.to_string(),
            format!("{:.1}%", 100.0 * (1.0 - smart as f64 / dumb as f64)),
        ]);
    }
    println!("\nXOR schedule size, smart vs dumb:");
    print_table(&["(k,m,w)", "smart", "dumb", "saving"], &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_produces_expected_counters() {
        let snap = run_workload().expect("toy workload runs");
        assert_eq!(snap.counter("ecc.save.calls"), 3);
        assert_eq!(snap.counter("ecc.load.calls"), 1);
        assert!(snap.counter("erasure.encode.bytes") > 0);
        assert!(snap.histogram("ecc.save.ns").is_some());
        assert!(
            snap.rate_per_sec("erasure.encode.bytes", "erasure.encode.ns").is_some(),
            "encode throughput must be derivable"
        );
    }

    #[test]
    fn smart_schedule_beats_dumb_for_some_shape() {
        let mut beaten = false;
        for (k, m, w) in [(2usize, 2usize, 8u8), (4, 2, 8), (6, 3, 8), (8, 4, 8)] {
            let code = ErasureCode::cauchy_good(CodeParams::new(k, m, w).unwrap()).unwrap();
            let smart = code.schedule(ScheduleKind::Smart).xor_count();
            let dumb = code.schedule(ScheduleKind::Dumb).xor_count();
            assert!(smart <= dumb, "smart must never be worse ({k},{m},{w})");
            beaten |= smart < dumb;
        }
        assert!(beaten, "smart should strictly beat dumb for at least one shape");
    }
}
