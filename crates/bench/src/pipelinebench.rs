//! The save-pipeline bench harness behind the `pipeline-bench` binary.
//!
//! Times [`eccheck::EcCheck::save`] in both [`SaveMode`]s over a ladder
//! of shard sizes on the toy real-byte cluster, reporting wall time per
//! mode, the pipelined/sequential speedup, and the executor's per-stage
//! occupancy from [`eccheck::PipelineStats`]. The result serializes to
//! a stable JSON document (`BENCH_PR5.json` in CI) and
//! [`PipelineBenchReport::regressions`] gates the CI job: the pipelined
//! executor losing to the sequential oracle by more than the documented
//! tolerance on any shape fails the build.

use std::time::Instant;

use ecc_checkpoint::{StateDict, Value};
use ecc_cluster::{Cluster, ClusterSpec};
use eccheck::{EcCheck, EcCheckConfig, PipelineStats, SaveMode};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Timing repetitions per (shape, mode); the fastest wins.
const MEASURE_ITERS: usize = 5;

/// The regression gate: pipelined wall time must stay within this
/// factor of sequential on every shape (1.10 = "may lose by 10%").
/// Stage overlap usually makes the pipelined path win outright on a
/// multi-core host; the slack absorbs scheduler jitter. The gate is
/// only *enforced* when the host can actually overlap stages — see
/// [`PipelineBenchReport::gate_enforced`].
const REGRESSION_GATE: f64 = 1.10;

/// One benchmarked save shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineShapePerf {
    /// Human label (also the JSON key consumers group by).
    pub name: String,
    /// Engine packet size in bytes.
    pub packet_size: usize,
    /// Tensor payload per worker in bytes.
    pub shard_bytes: usize,
    /// Pipeline stripe-buffer size in bytes.
    pub pipeline_buffer: usize,
    /// Coding worker threads.
    pub threads: usize,
    /// Best-of-N sequential save wall time, milliseconds.
    pub sequential_ms: f64,
    /// Best-of-N pipelined save wall time, milliseconds.
    pub pipelined_ms: f64,
    /// `sequential_ms / pipelined_ms` (> 1 means pipelined is faster).
    pub speedup: f64,
    /// Stage accounting from the fastest pipelined run.
    pub stats: PipelineStats,
}

/// The full save-pipeline bench report (`BENCH_PR5.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineBenchReport {
    /// Target architecture the binary was built for.
    pub arch: String,
    /// Parallelism the host advertises to `std::thread`.
    pub host_threads: usize,
    /// Coding threads the caller asked for (`--threads`). When this is
    /// ≥ 2 but the host is single-core, the regression gate silently
    /// downgrading to advisory is exactly the CI blind spot this field
    /// exists to surface — see [`PipelineBenchReport::gate_warning`].
    pub requested_threads: usize,
    /// Per-shape results, small to large.
    pub shapes: Vec<PipelineShapePerf>,
}

/// Deterministic shard payloads sized `shard_bytes` per worker.
fn bench_dicts(world: usize, shard_bytes: usize) -> Vec<StateDict> {
    (0..world)
        .map(|w| {
            let mut rng = StdRng::seed_from_u64(0xBE7C_u64 ^ (w as u64) << 8);
            let mut payload = vec![0u8; shard_bytes];
            rng.fill_bytes(&mut payload);
            let mut sd = StateDict::new();
            sd.insert("rank", Value::Int(w as i64));
            sd.insert("payload", Value::Bytes(payload));
            sd
        })
        .collect()
}

/// Best-of-N wall time for one save under `cfg`, plus the stage stats
/// of the fastest run. A fresh cluster and engine per repetition keeps
/// every run a first save of version 1.
fn best_save(
    spec: &ClusterSpec,
    cfg: EcCheckConfig,
    dicts: &[StateDict],
) -> (f64, Option<PipelineStats>) {
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..MEASURE_ITERS {
        let mut cluster = Cluster::new(*spec);
        let mut ecc = EcCheck::initialize(spec, cfg).expect("bench config valid");
        let t = Instant::now();
        let report = ecc.save(&mut cluster, dicts).expect("bench save succeeds");
        let secs = t.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            stats = report.pipeline;
        }
    }
    (best * 1e3, stats)
}

impl PipelineBenchReport {
    /// Runs the default ladder: 256 KiB, 1 MiB and 4 MiB shards on the
    /// 4-node toy cluster, stripe buffers sized half a packet. Smaller
    /// saves are deliberately absent: below ~100 µs of coding work the
    /// executor's fixed thread-spawn cost dominates and `Sequential` is
    /// the right mode (see `DESIGN.md` §12).
    pub fn collect() -> Self {
        Self::collect_with_threads(
            std::thread::available_parallelism().map_or(1, |n| n.get()).min(4),
        )
    }

    /// [`PipelineBenchReport::collect`] with an explicit coding thread
    /// count (the binary's `--threads` flag).
    pub fn collect_with_threads(threads: usize) -> Self {
        Self::collect_custom(
            &[
                ("256KiB-shards", 16 << 10, 256 << 10),
                ("1MiB-shards", 64 << 10, 1 << 20),
                ("4MiB-shards", 256 << 10, 4 << 20),
            ],
            threads,
        )
    }

    /// [`PipelineBenchReport::collect`] with an explicit
    /// `(name, packet_size, shard_bytes)` ladder and thread count
    /// (tests use tiny values to stay fast).
    ///
    /// # Panics
    ///
    /// Panics when `ladder` is empty or a shape fails to save — harness
    /// defects worth failing loudly on.
    pub fn collect_custom(ladder: &[(&str, usize, usize)], threads: usize) -> Self {
        assert!(!ladder.is_empty(), "pipeline bench needs at least one shape");
        let spec = ClusterSpec::tiny_test(4, 1);
        let mut shapes = Vec::new();
        for &(name, packet_size, shard_bytes) in ladder {
            let pipeline_buffer = (packet_size / 2).max(64);
            let dicts = bench_dicts(spec.world_size(), shard_bytes);
            let base = EcCheckConfig::paper_defaults()
                .with_packet_size(packet_size)
                .with_coding_threads(threads)
                .with_pipeline_buffer(pipeline_buffer)
                .with_remote_flush_every(0);
            let (sequential_ms, _) =
                best_save(&spec, base.with_save_mode(SaveMode::Sequential), &dicts);
            let (pipelined_ms, stats) =
                best_save(&spec, base.with_save_mode(SaveMode::Pipelined), &dicts);
            shapes.push(PipelineShapePerf {
                name: name.to_string(),
                packet_size,
                shard_bytes,
                pipeline_buffer,
                threads,
                sequential_ms,
                pipelined_ms,
                speedup: sequential_ms / pipelined_ms,
                stats: stats.expect("pipelined saves carry stage stats"),
            });
        }
        Self {
            arch: std::env::consts::ARCH.to_string(),
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            requested_threads: threads,
            shapes,
        }
    }

    /// Whether [`PipelineBenchReport::regressions`] should fail the
    /// build. Stage overlap needs at least two host threads; on a
    /// single-core host the stages merely time-slice, so the comparison
    /// measures scheduler overhead rather than the pipeline and the
    /// gate downgrades to an advisory report.
    pub fn gate_enforced(&self) -> bool {
        self.host_threads >= 2
    }

    /// A loud, CI-visible warning when multi-threaded numbers were
    /// *requested* but the gate cannot be enforced: the run measured
    /// time-slicing, not the pipeline, and the regression gate silently
    /// passed. `None` on healthy hosts (or honest single-thread runs).
    pub fn gate_warning(&self) -> Option<String> {
        (self.requested_threads >= 2 && !self.gate_enforced()).then(|| {
            format!(
                "WARNING: --threads {} requested but the host advertises {} thread(s); \
                 stages cannot overlap, so the {REGRESSION_GATE} regression gate and the \
                 ROADMAP 2x speedup target were NOT enforced in this run",
                self.requested_threads, self.host_threads
            )
        })
    }

    /// Reports the gate's disposition into a telemetry recorder, so an
    /// attached exporter surfaces advisory downgrades: an enforced gate
    /// bumps `bench.gate.enforced`, a downgrade bumps
    /// `bench.gate.advisory` and appends a `gate.warning` event (which
    /// the observability plane classifies as a warning on `/events`).
    pub fn record_gate_telemetry(&self, recorder: &ecc_telemetry::Recorder) {
        match self.gate_warning() {
            Some(warning) => {
                recorder.counter("bench.gate.advisory").incr();
                recorder.event("gate.warning", format!("pipeline-bench: {warning}"));
            }
            None => {
                recorder.counter("bench.gate.enforced").incr();
            }
        }
    }

    /// The ROADMAP pipeline target — ≥ 2× pipelined-vs-sequential —
    /// evaluated only where it applies: 4+ coding threads on a host
    /// that can actually overlap them. `None` when not applicable.
    pub fn speedup_target_met(&self) -> Option<bool> {
        (self.requested_threads >= 4 && self.host_threads >= 4).then(|| self.best_speedup() >= 2.0)
    }

    /// Shapes where the pipelined executor loses to the sequential
    /// oracle by more than the documented tolerance; empty on a healthy
    /// host. CI fails when this is non-empty and
    /// [`PipelineBenchReport::gate_enforced`] holds.
    pub fn regressions(&self) -> Vec<String> {
        self.shapes
            .iter()
            .filter(|s| s.pipelined_ms > s.sequential_ms * REGRESSION_GATE)
            .map(|s| {
                format!(
                    "{}: pipelined {:.2} ms vs sequential {:.2} ms ({:.2}x, gate {REGRESSION_GATE})",
                    s.name, s.pipelined_ms, s.sequential_ms, s.speedup
                )
            })
            .collect()
    }

    /// The best pipelined speedup across the ladder — the headline.
    pub fn best_speedup(&self) -> f64 {
        self.shapes.iter().map(|s| s.speedup).fold(0.0, f64::max)
    }

    /// Serializes the report as a stable, diffable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"eccheck-pipeline-bench/1\",\n");
        out.push_str(&format!("  \"arch\": \"{}\",\n", self.arch));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str(&format!("  \"requested_threads\": {},\n", self.requested_threads));
        out.push_str(&format!("  \"gate_enforced\": {},\n", self.gate_enforced()));
        match self.speedup_target_met() {
            Some(met) => out.push_str(&format!("  \"speedup_target_2x\": {met},\n")),
            None => out.push_str("  \"speedup_target_2x\": null,\n"),
        }
        out.push_str("  \"shapes\": [\n");
        for (i, s) in self.shapes.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"name\": \"{}\", \"packet_size\": {}, \"shard_bytes\": {}, ",
                    "\"pipeline_buffer\": {}, \"threads\": {}, \"sequential_ms\": {:.3}, ",
                    "\"pipelined_ms\": {:.3}, \"speedup\": {:.3}, \"stripes\": {}, ",
                    "\"encode_occupancy\": {:.3}, \"reduce_occupancy\": {:.3}, ",
                    "\"transfer_occupancy\": {:.3}}}{}\n"
                ),
                s.name,
                s.packet_size,
                s.shard_bytes,
                s.pipeline_buffer,
                s.threads,
                s.sequential_ms,
                s.pipelined_ms,
                s.speedup,
                s.stats.stripes,
                s.stats.encode_occupancy(),
                s.stats.reduce_occupancy(),
                s.stats.transfer_occupancy(),
                if i + 1 == self.shapes.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A compact GitHub-flavoured-markdown summary (for
    /// `$GITHUB_STEP_SUMMARY`): per-shape wall times, speedups and
    /// stage occupancies.
    pub fn summary_markdown(&self) -> String {
        let mut out = String::from("### pipeline-bench\n\n");
        out.push_str(&format!(
            "pipelined vs sequential save on `{}` ({} host threads, {} requested); best \
             speedup: **{:.2}x**; gate {}\n\n",
            self.arch,
            self.host_threads,
            self.requested_threads,
            self.best_speedup(),
            if self.gate_enforced() { "enforced" } else { "advisory (single-core host)" },
        ));
        if let Some(warning) = self.gate_warning() {
            out.push_str(&format!("⚠️ **{warning}**\n\n"));
        }
        if let Some(met) = self.speedup_target_met() {
            out.push_str(&format!(
                "ROADMAP target (≥ 2x pipelined speedup at 4+ threads): **{}**\n\n",
                if met { "met" } else { "NOT met" },
            ));
        }
        out.push_str(
            "| shape | seq ms | pipe ms | speedup | stripes | enc occ | red occ | xfer occ |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for s in &self.shapes {
            out.push_str(&format!(
                "| {} | {:.2} | {:.2} | {:.2}x | {} | {:.0}% | {:.0}% | {:.0}% |\n",
                s.name,
                s.sequential_ms,
                s.pipelined_ms,
                s.speedup,
                s.stats.stripes,
                s.stats.encode_occupancy() * 100.0,
                s.stats.reduce_occupancy() * 100.0,
                s.stats.transfer_occupancy() * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_report_is_complete_and_parseable() {
        let report = PipelineBenchReport::collect_custom(&[("tiny", 1 << 10, 1 << 12)], 2);
        assert_eq!(report.shapes.len(), 1);
        let s = &report.shapes[0];
        assert!(s.sequential_ms > 0.0 && s.pipelined_ms > 0.0);
        assert!(s.speedup > 0.0);
        assert!(s.stats.stripes > 0);

        assert_eq!(report.requested_threads, 2);
        // The warning fires exactly when multi-threaded numbers were
        // requested on a host that cannot enforce the gate.
        assert_eq!(report.gate_warning().is_some(), !report.gate_enforced());

        let json = report.to_json();
        let doc = ecc_trace::json::parse(&json).expect("report JSON parses");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("eccheck-pipeline-bench/1"));
        assert_eq!(doc.get("requested_threads").and_then(|v| v.as_f64()), Some(2.0));
        assert!(doc.get("speedup_target_2x").is_some());
        let shapes = doc.get("shapes").and_then(|v| v.as_arr()).expect("shapes array");
        assert_eq!(shapes.len(), 1);

        let md = report.summary_markdown();
        assert!(md.contains("pipeline-bench"));
        assert!(md.contains("| shape |"));

        // An honest single-thread run carries no warning.
        let solo = PipelineBenchReport::collect_custom(&[("tiny", 1 << 10, 1 << 12)], 1);
        assert!(solo.gate_warning().is_none());
    }

    #[test]
    fn gate_telemetry_mirrors_the_warning_state() {
        let report = PipelineBenchReport::collect_custom(&[("tiny", 1 << 10, 1 << 12)], 2);
        let recorder = ecc_telemetry::Recorder::new();
        report.record_gate_telemetry(&recorder);
        let snap = recorder.snapshot();
        if report.gate_warning().is_some() {
            assert_eq!(snap.counter("bench.gate.advisory"), 1);
            assert!(snap.events.iter().any(|e| e.name == "gate.warning"));
        } else {
            assert_eq!(snap.counter("bench.gate.enforced"), 1);
            assert!(snap.events.is_empty());
        }
    }
}
