//! The machine-readable perf-regression report behind the
//! `perf-report` binary.
//!
//! One run measures, for a ladder of standard `(k, m, w, model)`
//! shapes: measured encode/decode throughput of the real coding
//! substrate, the timing model's save/recovery latency at paper scale,
//! and the checkpoint's communication traffic against the paper's
//! `m·s·W` bound (§V-F). The result serializes to a stable JSON
//! document (`BENCH_PR2.json` in CI) so consecutive runs can be
//! diffed mechanically, and [`PerfReport::within_traffic_bound`] gates
//! the CI job: traffic above the bound fails the build.

use std::time::Instant;

use ecc_cluster::{ClusterSpec, FailureScenario};
use ecc_dnn::{ModelConfig, ParallelismSpec};
use ecc_erasure::{CodeParams, CodingPool, ErasureCode};
use eccheck::timing::{recovery_timing, save_timing, TimingConstants};
use eccheck::{select_data_parity_nodes, EcCheckConfig, ReductionPlan};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Chunk length used for the throughput measurements: big enough to
/// amortize per-call overhead, small enough to keep the report fast.
const MEASURE_CHUNK: usize = 1 << 20;
/// Measurement repetitions; the best (fastest) run is reported.
const MEASURE_ITERS: usize = 3;

/// Performance facts for one `(k, m, w, model)` shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapePerf {
    /// Data-node count.
    pub k: usize,
    /// Parity-node count.
    pub m: usize,
    /// Galois-field width.
    pub w: u8,
    /// Model label (paper Table I naming).
    pub model: String,
    /// Nodes (`k + m`) and total workers in the traffic accounting.
    pub nodes: usize,
    /// World size `W` used for the traffic accounting.
    pub world: usize,
    /// Measured parallel encode throughput, GB/s (decimal).
    pub encode_gbps: f64,
    /// Measured parallel decode throughput with `m` chunks lost, GB/s.
    pub decode_gbps: f64,
    /// Timing model: end-to-end save latency at paper scale, seconds.
    pub save_total_s: f64,
    /// Timing model: training stall portion of the save, seconds.
    pub save_stall_s: f64,
    /// Timing model: decode-workflow recovery latency, seconds.
    pub recovery_total_s: f64,
    /// Real traffic accounting of one checkpoint, bytes.
    pub traffic_bytes: u64,
    /// The paper's `m·s·W` traffic bound, bytes.
    pub traffic_bound_bytes: u64,
}

impl ShapePerf {
    /// `true` when the accounted traffic respects the `m·s·W` bound.
    pub fn within_bound(&self) -> bool {
        self.traffic_bytes <= self.traffic_bound_bytes
    }
}

/// The full report: one [`ShapePerf`] per standard shape.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Per-shape measurements, in ladder order.
    pub shapes: Vec<ShapePerf>,
}

/// The standard shape ladder: the paper's `k = m = 2` testbed plus the
/// wider splits the schedule-comparison appendix exercises, each paired
/// with a Table I model scale.
fn shape_ladder() -> Vec<(usize, usize, u8, usize, ModelConfig, &'static str)> {
    vec![
        // (k, m, w, gpus/node, model, label)
        (2, 2, 8, 4, ModelConfig::gpt2(2560, 40, 64), "GPT-2 2.5B"),
        (4, 2, 8, 2, ModelConfig::gpt2(1600, 32, 48), "GPT-2 1.6B"),
        (6, 3, 8, 2, ModelConfig::gpt2(3072, 36, 64), "GPT-2 3.8B"),
        (8, 4, 8, 2, ModelConfig::gpt2(5120, 40, 64), "GPT-2 8.3B"),
    ]
}

fn random_chunks(k: usize, len: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    (0..k)
        .map(|_| {
            let mut v = vec![0u8; len];
            rng.fill_bytes(&mut v);
            v
        })
        .collect()
}

/// Best-of-N decimal GB/s for `bytes` processed by `op`.
fn best_rate(bytes: u64, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_ITERS {
        let t = Instant::now();
        op();
        best = best.min(t.elapsed().as_secs_f64());
    }
    bytes as f64 / best / 1e9
}

impl PerfReport {
    /// Measures every shape in the standard ladder.
    ///
    /// # Panics
    ///
    /// Panics when a standard shape fails to construct — that is a
    /// build defect the report is meant to catch loudly.
    pub fn collect() -> Self {
        let consts = TimingConstants::default();
        let pool = CodingPool::new(4);
        let shapes = shape_ladder()
            .into_iter()
            .map(|(k, m, w, g, model, label)| {
                let params = CodeParams::new(k, m, w).expect("standard shape");
                let code = ErasureCode::cauchy_good(params).expect("standard shape");
                let data = random_chunks(k, MEASURE_CHUNK);
                let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
                let payload = (k * MEASURE_CHUNK) as u64;
                let encode_gbps = best_rate(payload, || drop(pool.encode(&code, &refs).unwrap()));
                let parity = pool.encode(&code, &refs).expect("standard shape encodes");
                // Lose the first m data chunks — the worst case for the
                // decoder (every lost chunk needs real reconstruction).
                let mut shards: Vec<Option<&[u8]>> = Vec::with_capacity(k + m);
                shards.extend(refs.iter().enumerate().map(|(i, r)| (i >= m).then_some(*r)));
                shards.extend(parity.iter().map(|p| Some(p.as_slice())));
                let decode_gbps = best_rate(payload, || drop(pool.decode(&code, &shards).unwrap()));

                // Latency at paper scale from the timing model, on a
                // k+m-node cluster of the §V-F testbed class.
                let spec = ClusterSpec::v100_scalability(k + m, g);
                let cfg = EcCheckConfig::paper_defaults().with_km(k, m).with_width(w);
                let par = ParallelismSpec::new(4, 4, 1).expect("paper parallelism");
                let shard_bytes = model.shard_bytes(&par);
                let save = save_timing(&spec, &cfg, shard_bytes, None, &consts);
                let placement = select_data_parity_nodes(&spec.origin_group(), k)
                    .expect("standard shape places");
                let scenario = FailureScenario::new(vec![placement.data_nodes()[0]]);
                let recovery = recovery_timing(&spec, &cfg, shard_bytes, &scenario, &consts);

                // Traffic accounting for one checkpoint vs the m·s·W
                // bound, from the real reduction plan.
                let plan =
                    ReductionPlan::build(&spec, &placement, m).expect("standard shape plans");
                let world = spec.world_size();
                let traffic = plan.traffic(shard_bytes).total();
                let bound = m as u64 * shard_bytes * world as u64;

                ShapePerf {
                    k,
                    m,
                    w,
                    model: label.to_string(),
                    nodes: k + m,
                    world,
                    encode_gbps,
                    decode_gbps,
                    save_total_s: save.total.as_secs_f64(),
                    save_stall_s: save.stall().as_secs_f64(),
                    recovery_total_s: recovery.total.as_secs_f64(),
                    traffic_bytes: traffic,
                    traffic_bound_bytes: bound,
                }
            })
            .collect();
        Self { shapes }
    }

    /// `true` when every shape respects the `m·s·W` traffic bound.
    pub fn within_traffic_bound(&self) -> bool {
        self.shapes.iter().all(ShapePerf::within_bound)
    }

    /// Serializes the report as a stable, diffable JSON document.
    pub fn to_json(&self) -> String {
        let mut out =
            String::from("{\n  \"schema\": \"eccheck-perf-report/1\",\n  \"shapes\": [\n");
        for (i, s) in self.shapes.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"k\": {}, \"m\": {}, \"w\": {}, \"model\": \"{}\", ",
                    "\"nodes\": {}, \"world\": {}, ",
                    "\"encode_gbps\": {:.3}, \"decode_gbps\": {:.3}, ",
                    "\"save_total_s\": {:.6}, \"save_stall_s\": {:.6}, ",
                    "\"recovery_total_s\": {:.6}, ",
                    "\"traffic_bytes\": {}, \"traffic_bound_bytes\": {}, ",
                    "\"within_bound\": {}}}{}\n"
                ),
                s.k,
                s.m,
                s.w,
                s.model.replace('\\', "\\\\").replace('"', "\\\""),
                s.nodes,
                s.world,
                s.encode_gbps,
                s.decode_gbps,
                s.save_total_s,
                s.save_stall_s,
                s.recovery_total_s,
                s.traffic_bytes,
                s.traffic_bound_bytes,
                s.within_bound(),
                if i + 1 == self.shapes.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_the_ladder_and_respects_the_bound() {
        let report = PerfReport::collect();
        assert_eq!(report.shapes.len(), shape_ladder().len());
        assert!(report.within_traffic_bound(), "m·s·W bound must hold: {report:?}");
        for s in &report.shapes {
            assert!(s.encode_gbps > 0.0 && s.decode_gbps > 0.0, "rates must be positive: {s:?}");
            assert!(s.save_total_s > s.save_stall_s, "stall is a strict part of the save: {s:?}");
            assert!(s.recovery_total_s > 0.0);
        }
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let report = PerfReport::collect();
        let json = report.to_json();
        let doc = ecc_trace::json::parse(&json).expect("report JSON parses");
        let shapes = doc.get("shapes").and_then(|s| s.as_arr()).expect("shapes array");
        assert_eq!(shapes.len(), report.shapes.len());
        for (parsed, shape) in shapes.iter().zip(&report.shapes) {
            assert_eq!(
                parsed.get("k").and_then(|v| v.as_f64()),
                Some(shape.k as f64),
                "k survives the round trip"
            );
            assert_eq!(
                parsed.get("traffic_bound_bytes").and_then(|v| v.as_f64()),
                Some(shape.traffic_bound_bytes as f64)
            );
            assert!(parsed.get("within_bound").is_some());
        }
    }
}
