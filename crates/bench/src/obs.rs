//! Shared `--obs` wiring for the bench binaries.
//!
//! Every bench binary accepts `--obs HOST:PORT` to serve the live
//! observability plane (`/metrics`, `/health`, `/ready`, `/events`)
//! while it runs, and `--obs-hold-ms N` to keep the exporter up after
//! the run finishes so a scraper (`ecc-top`, CI curl) can grab the
//! final state. The binaries record into the session's `Recorder`, so
//! gate downgrades and run telemetry land in the same scrape.

use std::sync::Arc;

use ecc_obs::{ObsHub, ObsHubConfig, ObsServer};
use ecc_telemetry::Recorder;

use crate::arg_value;

/// A live exporter session owned by a bench binary.
///
/// Constructed from the command line via [`obs_session_from_args`];
/// call [`ObsSession::finish`] after the run to honour `--obs-hold-ms`
/// and shut the server down cleanly.
pub struct ObsSession {
    server: ObsServer,
    hold_ms: u64,
}

impl ObsSession {
    /// The recorder the exporter scrapes; bench code reports into it.
    pub fn recorder(&self) -> Recorder {
        self.server.hub().recorder().clone()
    }

    /// Holds the exporter up for `--obs-hold-ms`, then shuts it down.
    pub fn finish(self) {
        if self.hold_ms > 0 {
            eprintln!("obs: holding exporter for {}ms", self.hold_ms);
            std::thread::sleep(std::time::Duration::from_millis(self.hold_ms));
        }
        self.server.shutdown();
    }
}

/// Starts an exporter over `recorder` when `--obs HOST:PORT` was given.
///
/// Returns `None` when the flag is absent. Exits with status 2 when the
/// address cannot be bound, matching `chaos-campaign`.
pub fn obs_session_from_args(recorder: &Recorder) -> Option<ObsSession> {
    let addr = arg_value("--obs")?;
    let hold_ms = arg_value("--obs-hold-ms")
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--obs-hold-ms wants an integer");
                std::process::exit(2);
            })
        })
        .unwrap_or(0);
    let hub = Arc::new(ObsHub::new(recorder.clone(), ObsHubConfig::default()));
    match ObsServer::serve(hub, &addr) {
        Ok(server) => {
            eprintln!("obs: serving /metrics /health /ready /events on {}", server.local_addr());
            Some(ObsSession { server, hold_ms })
        }
        Err(e) => {
            eprintln!("obs: failed to bind {addr}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ecc_obs::{http_get, parse_exposition, ObsHub, ObsHubConfig, ObsServer};
    use ecc_telemetry::Recorder;

    use super::ObsSession;

    #[test]
    fn session_serves_the_recorder_it_wraps() {
        let recorder = Recorder::new();
        recorder.counter("bench.gate.advisory").incr();
        let hub = Arc::new(ObsHub::new(recorder.clone(), ObsHubConfig::default()));
        let server = ObsServer::serve(hub, "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        let session = ObsSession { server, hold_ms: 0 };
        session.recorder().counter("bench.gate.advisory").incr();

        let body = http_get(&addr.to_string(), "/metrics").expect("scrape");
        let scrape = parse_exposition(&body).expect("valid exposition");
        let sample = scrape.value("bench_gate_advisory_total").expect("counter exported");
        assert_eq!(sample, &ecc_obs::MetricValue::Int(2));
        session.finish();
    }
}
