//! Shared helpers for the figure-regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary under
//! `src/bin/` (`table1`, `fig03` … `fig15`) that prints the same rows or
//! series the paper reports, produced by the reproduction's timing and
//! reliability models. `EXPERIMENTS.md` records paper-vs-measured for
//! each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deltabench;
mod kernelbench;
mod obs;
mod perf;
mod pipelinebench;
mod telemetry;
mod trace;

pub use deltabench::{DeltaBenchReport, DeltaShapePerf};
pub use kernelbench::{
    default_threads, EncodePerf, KernelBenchReport, RegionOpPerf, DEFAULT_REGION_SIZES, POOL_GATE,
};
pub use obs::{obs_session_from_args, ObsSession};
pub use perf::{PerfReport, ShapePerf};
pub use pipelinebench::{PipelineBenchReport, PipelineShapePerf};
pub use telemetry::{print_live_telemetry, print_schedule_comparison};
pub use trace::{
    arg_value, engine_trace_json, sim_save_trace_json, trace_path_from_args,
    write_trace_if_requested,
};

use ecc_sim::SimDuration;

/// Prints an aligned text table with a header row.
///
/// # Examples
///
/// ```
/// ecc_bench::print_table(
///     &["model", "time"],
///     &[vec!["GPT-2 1.6B".to_string(), "1.23 s".to_string()]],
/// );
/// ```
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        line(row.clone());
    }
}

/// Formats a duration in seconds with three significant digits.
pub fn fmt_secs(d: SimDuration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} us", s * 1e6)
    }
}

/// Formats a ratio as `N.NNx`.
pub fn fmt_ratio(numerator: SimDuration, denominator: SimDuration) -> String {
    format!("{:.1}x", numerator.as_secs_f64() / denominator.as_secs_f64())
}

/// Formats a byte count with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(SimDuration::from_secs(120)), "120 s");
        assert_eq!(fmt_secs(SimDuration::from_millis(1500)), "1.50 s");
        assert_eq!(fmt_secs(SimDuration::from_micros(2500)), "2.50 ms");
        assert_eq!(fmt_secs(SimDuration::from_nanos(900)), "0.90 us");
    }

    #[test]
    fn fmt_bytes_picks_units() {
        assert_eq!(fmt_bytes(512), "512.00 B");
        assert_eq!(fmt_bytes(64 << 20), "64.00 MiB");
        assert_eq!(fmt_bytes(6_500_000_000), "6.05 GiB");
    }

    #[test]
    fn fmt_ratio_divides() {
        let r = fmt_ratio(SimDuration::from_secs(13), SimDuration::from_secs(2));
        assert_eq!(r, "6.5x");
    }
}
