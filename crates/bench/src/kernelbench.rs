//! The kernel bench harness behind the `kernel-bench` binary.
//!
//! Sweeps every available coding kernel over (op × region size) plus the
//! pooled encode over (k, m, w) shapes, reporting decimal GB/s, the
//! speedup of each kernel over the scalar reference, and which kernel the
//! runtime dispatcher actually selected on this host. The result
//! serializes to a stable JSON document (`BENCH_PR4.json` in CI, the
//! repo's first kernel-level perf baseline; PR 6 adds the same sweep to
//! the combined `BENCH_PR6.json`) and
//! [`KernelBenchReport::dispatch_regressions`] gates the CI job: the
//! dispatched kernel measurably losing to scalar fails the build.
//!
//! The pooled encode runs on an explicit thread count (`--threads` on
//! the binary) and the report records, for the dispatched kernel, the
//! *kernel→pool gap*: pooled encode GB/s over raw `mul_xor` GB/s at the
//! matching region size. The ROADMAP target — pooled encode within 1.5×
//! of raw kernel speed — turns into [`POOL_GATE`], enforced whenever the
//! pool actually has ≥ 2 threads to schedule across.

use std::time::Instant;

use ecc_erasure::{CodeParams, CodingPool, ErasureCode};
use ecc_gf::kernel::{active_kernel, available_kernels, force_kernel, Split8};
use ecc_gf::GaloisField;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Region sizes swept by default: L1-resident, L2-resident, and two
/// memory-streaming sizes.
pub const DEFAULT_REGION_SIZES: [usize; 4] = [4 << 10, 64 << 10, 1 << 20, 8 << 20];

/// Bytes each timing repetition processes (larger regions loop fewer
/// times); three repetitions are taken and the fastest wins.
const TARGET_BYTES_PER_REP: usize = 32 << 20;
const MEASURE_ITERS: usize = 3;

/// Noise tolerance for the dispatch gate on direct region ops: the
/// dispatched kernel must reach at least this fraction of scalar
/// throughput at every sweep point.
const REGION_GATE: f64 = 0.95;
/// Same gate for pooled encode, looser because thread scheduling adds
/// run-to-run jitter.
const ENCODE_GATE: f64 = 0.90;

/// The kernel→pool gap gate (ROADMAP: pooled encode within 1.5× of raw
/// kernel speed): pooled encode GB/s must reach at least `1/1.5` of the
/// dispatched kernel's raw `mul_xor` GB/s at the matching region size.
/// Enforced only when the pool runs ≥ 2 threads — with one worker the
/// comparison measures scheduling overhead, not the fused executor.
pub const POOL_GATE: f64 = 1.0 / 1.5;

/// Throughput of one kernel on one region op at one size.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionOpPerf {
    /// Kernel name (`scalar`, `ssse3`, `avx2`, `neon`).
    pub kernel: String,
    /// Operation: `xor`, `mul` or `mul_xor`.
    pub op: String,
    /// Region length in bytes.
    pub region_bytes: usize,
    /// Measured throughput, decimal GB/s.
    pub gbps: f64,
    /// This kernel's throughput over scalar's at the same (op, size).
    pub speedup_vs_scalar: f64,
}

/// Throughput of the pooled systematic encode under one forced kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodePerf {
    /// Kernel name the encode was forced to.
    pub kernel: String,
    /// Data-chunk count.
    pub k: usize,
    /// Parity-chunk count.
    pub m: usize,
    /// Field width.
    pub w: u8,
    /// Bytes per data chunk.
    pub chunk_bytes: usize,
    /// Measured payload throughput (`k · chunk_bytes` per encode), GB/s.
    pub gbps: f64,
    /// This kernel's throughput over scalar's at the same shape.
    pub speedup_vs_scalar: f64,
}

/// The full kernel bench report (`BENCH_PR4.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBenchReport {
    /// Target architecture the binary was built for.
    pub arch: String,
    /// Kernel the runtime dispatcher selected on this host.
    pub selected: String,
    /// Coding-pool worker threads used for the encode sweep.
    pub threads: usize,
    /// Hardware threads the host advertised when the sweep ran.
    pub host_threads: usize,
    /// Every kernel available on this host, best first.
    pub kernels: Vec<String>,
    /// Direct region-op sweep, kernel-major.
    pub regions: Vec<RegionOpPerf>,
    /// Pooled-encode sweep, kernel-major.
    pub encodes: Vec<EncodePerf>,
}

/// Default coding-pool thread count: the host's parallelism, capped at
/// 4 workers so laptop and CI numbers stay comparable.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(4)
}

fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Best-of-N decimal GB/s for `bytes` processed per call to `op`.
fn best_rate(bytes: u64, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_ITERS {
        let t = Instant::now();
        op();
        best = best.min(t.elapsed().as_secs_f64());
    }
    bytes as f64 / best / 1e9
}

impl KernelBenchReport {
    /// Runs the default sweep: every available kernel × `xor`/`mul`/
    /// `mul_xor` × [`DEFAULT_REGION_SIZES`], plus pooled encode on the
    /// `(2,2,8)`, `(4,2,8)` and `(8,4,8)` shapes at 1 MiB chunks, on
    /// the host's parallelism (capped at 4 workers).
    ///
    /// Kernel forcing is process-global, so the previously dispatched
    /// kernel is restored before returning.
    pub fn collect() -> Self {
        Self::collect_with_threads(default_threads())
    }

    /// [`KernelBenchReport::collect`] with an explicit coding-pool
    /// thread count (the binary's `--threads` flag).
    pub fn collect_with_threads(threads: usize) -> Self {
        Self::collect_custom(&DEFAULT_REGION_SIZES, 1 << 20, threads)
    }

    /// [`KernelBenchReport::collect`] with explicit region sizes, encode
    /// chunk length and pool threads (tests use tiny values to stay
    /// fast).
    ///
    /// # Panics
    ///
    /// Panics when `sizes` is empty or a standard shape fails to build —
    /// both are harness defects worth failing loudly on.
    pub fn collect_custom(sizes: &[usize], encode_chunk: usize, threads: usize) -> Self {
        assert!(!sizes.is_empty(), "kernel bench needs at least one region size");
        let selected = active_kernel().name().to_string();
        let kernels: Vec<String> =
            available_kernels().iter().map(|k| k.name().to_string()).collect();
        let gf = GaloisField::new(8).expect("GF(2^8) builds");
        let table = Split8::new(&gf, 0x53).expect("coefficient in range");

        let mut regions = Vec::new();
        for &size in sizes {
            let src = random_bytes(size, 0xA11CE);
            let mut dst = random_bytes(size, 0xB0B);
            let reps = (TARGET_BYTES_PER_REP / size).max(1);
            let bytes = (size * reps) as u64;
            for op in ["xor", "mul", "mul_xor"] {
                let mut scalar_gbps = 0.0;
                // available_kernels() is best-first; iterate reversed so
                // scalar is measured first and speedups can be computed
                // in one pass.
                for kernel in available_kernels().iter().rev() {
                    let gbps = best_rate(bytes, || {
                        for _ in 0..reps {
                            match op {
                                "xor" => kernel.xor_into(&mut dst, &src),
                                "mul" => kernel.mul(&table, &src, &mut dst),
                                _ => kernel.mul_xor(&table, &src, &mut dst),
                            }
                        }
                    });
                    if kernel.name() == "scalar" {
                        scalar_gbps = gbps;
                    }
                    regions.push(RegionOpPerf {
                        kernel: kernel.name().to_string(),
                        op: op.to_string(),
                        region_bytes: size,
                        gbps,
                        speedup_vs_scalar: gbps / scalar_gbps,
                    });
                }
            }
        }

        let mut encodes = Vec::new();
        let threads = threads.max(1);
        let pool = CodingPool::new(threads);
        for (k, m, w) in [(2usize, 2usize, 8u8), (4, 2, 8), (8, 4, 8)] {
            let code = ErasureCode::cauchy_good(CodeParams::new(k, m, w).expect("standard shape"))
                .expect("standard shape");
            let chunk = encode_chunk.max(code.params().alignment());
            let data: Vec<Vec<u8>> =
                (0..k).map(|i| random_bytes(chunk, 0xC0DE + i as u64)).collect();
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let payload = (k * chunk) as u64;
            let mut scalar_gbps = 0.0;
            for kernel in available_kernels().iter().rev() {
                force_kernel(kernel.name()).expect("available kernel forces");
                let gbps = best_rate(payload, || drop(pool.encode(&code, &refs).unwrap()));
                if kernel.name() == "scalar" {
                    scalar_gbps = gbps;
                }
                encodes.push(EncodePerf {
                    kernel: kernel.name().to_string(),
                    k,
                    m,
                    w,
                    chunk_bytes: chunk,
                    gbps,
                    speedup_vs_scalar: gbps / scalar_gbps,
                });
            }
        }
        force_kernel(&selected).expect("previously selected kernel restores");

        Self {
            arch: std::env::consts::ARCH.to_string(),
            selected,
            threads,
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            kernels,
            regions,
            encodes,
        }
    }

    /// The kernel→pool gap per encode shape of the dispatched kernel:
    /// `(shape label, pooled GB/s / raw mul_xor GB/s at the matching
    /// region size)`. Shapes whose chunk length was not also swept as a
    /// region size are skipped — the ratio only means something at
    /// matching working-set sizes.
    pub fn pool_ratios(&self) -> Vec<(String, f64)> {
        self.encodes
            .iter()
            .filter(|e| e.kernel == self.selected)
            .filter_map(|e| {
                let raw = self.regions.iter().find(|r| {
                    r.kernel == self.selected
                        && r.op == "mul_xor"
                        && r.region_bytes == e.chunk_bytes
                })?;
                Some((format!("({},{},{})", e.k, e.m, e.w), e.gbps / raw.gbps))
            })
            .collect()
    }

    /// The worst kernel→pool gap across the dispatched kernel's encode
    /// shapes (`None` when no shape matched a swept region size).
    pub fn min_pool_ratio(&self) -> Option<f64> {
        self.pool_ratios()
            .into_iter()
            .map(|(_, r)| r)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.min(r))))
    }

    /// Whether [`POOL_GATE`] should fail the build: the fused executor
    /// can only close the kernel→pool gap when it has ≥ 2 workers to
    /// spread stripes across *and* ≥ 2 hardware threads to run them on
    /// (on one core the workers time-slice against the measurement, so
    /// the ratio measures scheduler overhead, not the pool).
    pub fn pool_gate_enforced(&self) -> bool {
        self.threads >= 2 && self.host_threads >= 2
    }

    /// A loud warning when ≥ 2 pool threads were requested but the gate
    /// could not be armed — so a single-core host can never silently
    /// green-light the kernel→pool gap.
    pub fn pool_gate_warning(&self) -> Option<String> {
        (self.threads >= 2 && !self.pool_gate_enforced()).then(|| {
            format!(
                "WARNING: --threads {} requested but the host advertises {} hardware \
                 thread(s); the kernel→pool gap gate ({POOL_GATE:.2}) was NOT enforced \
                 in this run",
                self.threads, self.host_threads
            )
        })
    }

    /// Reports the pool gate's disposition into a telemetry recorder:
    /// an enforced gate bumps `bench.pool_gate.enforced`, an advisory
    /// downgrade bumps `bench.pool_gate.advisory` and appends a
    /// `gate.warning` event (surfaced as a warning on the
    /// observability plane's `/events`).
    pub fn record_gate_telemetry(&self, recorder: &ecc_telemetry::Recorder) {
        match self.pool_gate_warning() {
            Some(warning) => {
                recorder.counter("bench.pool_gate.advisory").incr();
                recorder.event("gate.warning", format!("kernel-bench: {warning}"));
            }
            None => {
                recorder.counter("bench.pool_gate.enforced").incr();
            }
        }
    }

    /// Sweep points where the *dispatched* kernel measurably loses to
    /// scalar (beyond the documented noise tolerances); empty on a
    /// healthy host. CI fails when this is non-empty.
    pub fn dispatch_regressions(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.selected == "scalar" {
            return out;
        }
        for r in self.regions.iter().filter(|r| r.kernel == self.selected) {
            if r.speedup_vs_scalar < REGION_GATE {
                out.push(format!(
                    "{} {} @ {} B: {:.2} GB/s is {:.2}x scalar (< {REGION_GATE})",
                    r.kernel, r.op, r.region_bytes, r.gbps, r.speedup_vs_scalar
                ));
            }
        }
        for e in self.encodes.iter().filter(|e| e.kernel == self.selected) {
            if e.speedup_vs_scalar < ENCODE_GATE {
                out.push(format!(
                    "{} encode ({},{},{}) @ {} B chunks: {:.2} GB/s is {:.2}x scalar (< {ENCODE_GATE})",
                    e.kernel, e.k, e.m, e.w, e.chunk_bytes, e.gbps, e.speedup_vs_scalar
                ));
            }
        }
        if self.pool_gate_enforced() {
            for (shape, ratio) in self.pool_ratios() {
                if ratio < POOL_GATE {
                    out.push(format!(
                        "kernel→pool gap on {shape}: pooled encode is {ratio:.2}x of raw \
                         {} mul_xor at the same region size (< {POOL_GATE:.2})",
                        self.selected
                    ));
                }
            }
        }
        out
    }

    /// The dispatched kernel's best speedup over scalar across the
    /// region-op sweep — the headline number.
    pub fn best_dispatch_speedup(&self) -> f64 {
        self.regions
            .iter()
            .filter(|r| r.kernel == self.selected)
            .map(|r| r.speedup_vs_scalar)
            .fold(1.0, f64::max)
    }

    /// Serializes the report as a stable, diffable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"eccheck-kernel-bench/1\",\n");
        out.push_str(&format!("  \"arch\": \"{}\",\n", self.arch));
        out.push_str(&format!("  \"selected\": \"{}\",\n", self.selected));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str(&format!("  \"pool_gate_enforced\": {},\n", self.pool_gate_enforced()));
        match self.min_pool_ratio() {
            Some(r) => out.push_str(&format!("  \"min_pool_ratio\": {r:.3},\n")),
            None => out.push_str("  \"min_pool_ratio\": null,\n"),
        }
        let names: Vec<String> = self.kernels.iter().map(|k| format!("\"{k}\"")).collect();
        out.push_str(&format!("  \"kernels\": [{}],\n", names.join(", ")));
        out.push_str("  \"regions\": [\n");
        for (i, r) in self.regions.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"kernel\": \"{}\", \"op\": \"{}\", \"region_bytes\": {}, ",
                    "\"gbps\": {:.3}, \"speedup_vs_scalar\": {:.3}}}{}\n"
                ),
                r.kernel,
                r.op,
                r.region_bytes,
                r.gbps,
                r.speedup_vs_scalar,
                if i + 1 == self.regions.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n  \"encodes\": [\n");
        for (i, e) in self.encodes.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"kernel\": \"{}\", \"k\": {}, \"m\": {}, \"w\": {}, ",
                    "\"chunk_bytes\": {}, \"gbps\": {:.3}, \"speedup_vs_scalar\": {:.3}}}{}\n"
                ),
                e.kernel,
                e.k,
                e.m,
                e.w,
                e.chunk_bytes,
                e.gbps,
                e.speedup_vs_scalar,
                if i + 1 == self.encodes.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A compact GitHub-flavoured-markdown summary (for
    /// `$GITHUB_STEP_SUMMARY`): selected kernel, headline speedup, and
    /// the dispatched kernel's per-op best rates.
    pub fn summary_markdown(&self) -> String {
        let mut out = String::from("### kernel-bench\n\n");
        out.push_str(&format!(
            "selected kernel: **{}** on `{}` (available: {}); best speedup vs scalar: **{:.2}x**\n\n",
            self.selected,
            self.arch,
            self.kernels.join(", "),
            self.best_dispatch_speedup()
        ));
        match self.min_pool_ratio() {
            Some(r) => out.push_str(&format!(
                "kernel→pool gap @ {} threads: pooled encode reaches **{:.2}x** of raw \
                 `mul_xor` at matching region size (gate {:.2}, {})\n\n",
                self.threads,
                r,
                POOL_GATE,
                if self.pool_gate_enforced() {
                    "enforced"
                } else if self.threads >= 2 {
                    "advisory: single-core host"
                } else {
                    "advisory: < 2 pool threads"
                },
            )),
            None => out.push_str(
                "kernel→pool gap: not measured (no encode chunk size matched a region size)\n\n",
            ),
        }
        if !self.pool_gate_enforced() {
            out.push_str(if self.threads >= 2 {
                "⚠️ **WARNING**: the kernel→pool gap gate is NOT enforced in this run — the \
                 host advertises a single hardware thread, so pool workers time-slice.\n\n"
            } else {
                "⚠️ **WARNING**: the kernel→pool gap gate is NOT enforced in this run — the \
                 pool has fewer than 2 worker threads.\n\n"
            });
        }
        out.push_str("| op | region | scalar GB/s | selected GB/s | speedup |\n");
        out.push_str("|---|---|---|---|---|\n");
        for r in self.regions.iter().filter(|r| r.kernel == self.selected) {
            let scalar = self
                .regions
                .iter()
                .find(|s| s.kernel == "scalar" && s.op == r.op && s.region_bytes == r.region_bytes)
                .map_or(0.0, |s| s.gbps);
            out.push_str(&format!(
                "| {} | {} | {:.2} | {:.2} | {:.2}x |\n",
                r.op,
                crate::fmt_bytes(r.region_bytes as u64),
                scalar,
                r.gbps,
                r.speedup_vs_scalar
            ));
        }
        out.push_str("\n| encode shape | chunk | scalar GB/s | selected GB/s | speedup |\n");
        out.push_str("|---|---|---|---|---|\n");
        for e in self.encodes.iter().filter(|e| e.kernel == self.selected) {
            let scalar = self
                .encodes
                .iter()
                .find(|s| s.kernel == "scalar" && s.k == e.k && s.m == e.m)
                .map_or(0.0, |s| s.gbps);
            out.push_str(&format!(
                "| ({},{},{}) | {} | {:.2} | {:.2} | {:.2}x |\n",
                e.k,
                e.m,
                e.w,
                crate::fmt_bytes(e.chunk_bytes as u64),
                scalar,
                e.gbps,
                e.speedup_vs_scalar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One tiny sweep exercising the whole harness end to end. Kept as a
    /// single test because kernel forcing is process-global state.
    #[test]
    fn tiny_report_is_complete_and_parseable() {
        let before = active_kernel().name();
        // Chunk size equals the one swept region size so the
        // kernel→pool gap ratio is measurable.
        let report = KernelBenchReport::collect_custom(&[1 << 14], 1 << 14, 2);
        assert_eq!(active_kernel().name(), before, "collect must restore the kernel");

        let n_kernels = available_kernels().len();
        assert_eq!(report.kernels.len(), n_kernels);
        assert_eq!(report.regions.len(), 3 * n_kernels, "3 ops x kernels x 1 size");
        assert_eq!(report.encodes.len(), 3 * n_kernels, "3 shapes x kernels");
        assert!(report.regions.iter().all(|r| r.gbps > 0.0 && r.speedup_vs_scalar > 0.0));
        assert!(report.encodes.iter().all(|e| e.gbps > 0.0 && e.speedup_vs_scalar > 0.0));
        assert!(report.kernels.contains(&report.selected));
        assert!(report.best_dispatch_speedup() >= 1.0);
        assert_eq!(report.threads, 2);
        // Enforcement needs real parallelism; on a single-core host the
        // gate downgrades to advisory and must say so loudly.
        assert_eq!(report.pool_gate_enforced(), report.host_threads >= 2);
        assert_eq!(report.pool_gate_warning().is_some(), !report.pool_gate_enforced());
        assert_eq!(report.pool_ratios().len(), 3, "every shape matches the swept region size");
        assert!(report.min_pool_ratio().expect("ratio measured") > 0.0);

        let json = report.to_json();
        let doc = ecc_trace::json::parse(&json).expect("report JSON parses");
        assert_eq!(doc.get("selected").and_then(|v| v.as_str()), Some(report.selected.as_str()));
        assert_eq!(doc.get("threads").and_then(|v| v.as_f64()), Some(2.0));
        assert!(doc.get("min_pool_ratio").is_some());
        let regions = doc.get("regions").and_then(|v| v.as_arr()).expect("regions array");
        assert_eq!(regions.len(), report.regions.len());
        let encodes = doc.get("encodes").and_then(|v| v.as_arr()).expect("encodes array");
        assert_eq!(encodes.len(), report.encodes.len());

        let md = report.summary_markdown();
        assert!(md.contains("selected kernel"));
        assert!(md.contains("kernel→pool gap"));
        assert!(md.contains("| op | region |"));

        // No matching region size → gap unmeasured; one worker → gate
        // advisory. Same test body because kernel forcing is global.
        let report = KernelBenchReport::collect_custom(&[1 << 12], 1 << 13, 1);
        assert!(report.pool_ratios().is_empty());
        assert!(report.min_pool_ratio().is_none());
        assert!(!report.pool_gate_enforced(), "single-thread pools stay advisory");
        assert!(report.pool_gate_warning().is_none(), "one requested worker is not a surprise");
        assert!(report.to_json().contains("\"min_pool_ratio\": null"));

        // The telemetry hook mirrors the warning state exactly.
        let recorder = ecc_telemetry::Recorder::new();
        report.record_gate_telemetry(&recorder);
        let snap = recorder.snapshot();
        if report.pool_gate_warning().is_some() {
            assert_eq!(snap.counter("bench.pool_gate.advisory"), 1);
            assert!(snap.events.iter().any(|e| e.name == "gate.warning"));
        } else {
            assert_eq!(snap.counter("bench.pool_gate.enforced"), 1);
            assert!(snap.events.is_empty());
        }
    }
}
