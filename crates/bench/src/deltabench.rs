//! The delta-save bench harness behind the `delta-bench` binary.
//!
//! Compares [`eccheck::EcCheck::save_delta`] against a full
//! [`eccheck::EcCheck::save`] of the same mutated state over a ladder of
//! dirty-set densities, reporting wall time per path, the delta/full
//! speedup, and — the headline the paper's GF-linearity argument buys —
//! the data-plane traffic of each path. A full save moves `m·s·W`
//! parity bytes (`m` parity chunks, `s` bytes of packed region per
//! worker, `W` workers); a delta save moves the dirty region once per
//! touched data chunk plus once per parity node, so sparse dirty sets
//! shrink traffic by roughly `W / |dirty|`. The result serializes to a
//! stable JSON document (`BENCH_PR10.json` in CI) and
//! [`DeltaBenchReport::traffic_regressions`] gates the CI job: delta
//! traffic reaching the full-save bound on any sparse shape fails the
//! build on every host, because byte accounting is deterministic. The
//! latency comparison stays advisory on single-core hosts, matching the
//! pipeline bench.

use std::time::Instant;

use ecc_checkpoint::{DType, StateDict, Tensor, Value};
use ecc_cluster::{Cluster, ClusterSpec};
use eccheck::{DeltaReport, EcCheck, EcCheckConfig, SaveMode, WorkerDirtySet};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Timing repetitions per (shape, path); the fastest wins.
const MEASURE_ITERS: usize = 5;

/// The latency gate: on a sparse dirty set the delta path must not be
/// slower than this factor of the full save. Patching a fraction of
/// the stripe should win outright; the slack absorbs scheduler jitter.
/// Enforced only on multi-core hosts — see
/// [`DeltaBenchReport::gate_enforced`].
const LATENCY_GATE: f64 = 1.10;

/// One benchmarked dirty-set density.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaShapePerf {
    /// Human label (also the JSON key consumers group by).
    pub name: String,
    /// Engine packet size in bytes.
    pub packet_size: usize,
    /// Tensor payload per worker in bytes.
    pub shard_bytes: usize,
    /// Workers mutated between the base save and the measured update.
    pub dirty_workers: usize,
    /// Total workers in the job.
    pub world: usize,
    /// Best-of-N full save of the mutated state, milliseconds.
    pub full_ms: f64,
    /// Best-of-N delta save of the same mutation, milliseconds.
    pub delta_ms: f64,
    /// `full_ms / delta_ms` (> 1 means the delta path is faster).
    pub speedup: f64,
    /// Full-save parity traffic bound: `m·s·W` bytes.
    pub full_traffic_bytes: u64,
    /// Bytes the delta path actually moved (region reads + patched
    /// chunk and parity writes), from [`DeltaReport::traffic_bytes`].
    pub delta_traffic_bytes: u64,
    /// `delta_traffic_bytes / full_traffic_bytes` — below 1.0 the
    /// delta path beats the bound.
    pub traffic_ratio: f64,
    /// Whether this density is sparse enough that the traffic bound
    /// must hold: `|dirty| · (1 + m) < m · W`. Dense updates touch
    /// every chunk and legitimately exceed the parity-only bound.
    pub sparse: bool,
}

/// The full delta-save bench report (`BENCH_PR10.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaBenchReport {
    /// Target architecture the binary was built for.
    pub arch: String,
    /// Parallelism the host advertises to `std::thread`.
    pub host_threads: usize,
    /// Coding threads the caller asked for (`--threads`).
    pub requested_threads: usize,
    /// Per-density results, sparse to dense.
    pub shapes: Vec<DeltaShapePerf>,
}

/// Deterministic per-worker tensor payloads. Delta saves patch packed
/// tensor regions, so the payload rides in a `Value::Tensor` (bytes in
/// the replicated header would never touch the erasure-coded chunks).
fn bench_dicts(world: usize, shard_bytes: usize, salt: u64) -> Vec<StateDict> {
    (0..world)
        .map(|w| {
            let mut rng = StdRng::seed_from_u64(0xDE17A ^ salt ^ ((w as u64) << 8));
            let mut payload = vec![0u8; shard_bytes];
            rng.fill_bytes(&mut payload);
            let mut sd = StateDict::new();
            sd.insert("rank", Value::Int(w as i64));
            let t = Tensor::from_bytes(DType::U8, &[shard_bytes], payload)
                .expect("bench tensor shape valid");
            sd.insert("weights", Value::Tensor(t));
            sd
        })
        .collect()
}

/// Best-of-N wall time for a full save of `dicts`.
fn best_full_save(spec: &ClusterSpec, cfg: EcCheckConfig, dicts: &[StateDict]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_ITERS {
        let mut cluster = Cluster::new(*spec);
        let mut ecc = EcCheck::initialize(spec, cfg).expect("bench config valid");
        let t = Instant::now();
        ecc.save(&mut cluster, dicts).expect("bench save succeeds");
        best = best.min(t.elapsed().as_secs_f64());
    }
    best * 1e3
}

/// Best-of-N wall time for the delta path: each repetition full-saves
/// the base state untimed, then times `save_delta` patching `dirty`
/// workers to their mutated dicts. Returns the fastest run's report.
fn best_delta_save(
    spec: &ClusterSpec,
    cfg: EcCheckConfig,
    base: &[StateDict],
    mutated: &[StateDict],
    dirty: &[usize],
) -> (f64, DeltaReport) {
    let mut best = f64::INFINITY;
    let mut report = None;
    for _ in 0..MEASURE_ITERS {
        let mut cluster = Cluster::new(*spec);
        let mut ecc = EcCheck::initialize(spec, cfg).expect("bench config valid");
        ecc.save(&mut cluster, base).expect("bench base save succeeds");
        let sets: Vec<WorkerDirtySet<'_>> =
            dirty.iter().map(|&w| WorkerDirtySet { worker: w, state: &mutated[w] }).collect();
        let t = Instant::now();
        let r = ecc.save_delta(&mut cluster, &sets).expect("bench delta save succeeds");
        let secs = t.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            report = Some(r);
        }
    }
    (best * 1e3, report.expect("at least one delta repetition"))
}

impl DeltaBenchReport {
    /// Runs the default density ladder — 1, 2, 4 and all 8 of the toy
    /// cluster's workers dirty over 256 KiB shards — with the host's
    /// thread count capped at 4.
    pub fn collect() -> Self {
        Self::collect_with_threads(
            std::thread::available_parallelism().map_or(1, |n| n.get()).min(4),
        )
    }

    /// [`DeltaBenchReport::collect`] with an explicit coding thread
    /// count (the binary's `--threads` flag).
    pub fn collect_with_threads(threads: usize) -> Self {
        Self::collect_custom(
            &[
                ("sparse-1of8", 16 << 10, 256 << 10, 1),
                ("sparse-2of8", 16 << 10, 256 << 10, 2),
                ("half-4of8", 16 << 10, 256 << 10, 4),
                ("dense-8of8", 16 << 10, 256 << 10, 8),
            ],
            threads,
        )
    }

    /// [`DeltaBenchReport::collect`] with an explicit
    /// `(name, packet_size, shard_bytes, dirty_workers)` ladder and
    /// thread count (tests use tiny values to stay fast). All shapes
    /// run on the 4-node × 2-GPU toy cluster with `(k, m) = (2, 2)`.
    ///
    /// # Panics
    ///
    /// Panics when `ladder` is empty, a dirty count exceeds the world
    /// size, or a save fails — harness defects worth failing loudly on.
    pub fn collect_custom(ladder: &[(&str, usize, usize, usize)], threads: usize) -> Self {
        assert!(!ladder.is_empty(), "delta bench needs at least one shape");
        const K: usize = 2;
        const M: usize = 2;
        let spec = ClusterSpec::tiny_test(K + M, 2);
        let world = spec.world_size();
        let mut shapes = Vec::new();
        for &(name, packet_size, shard_bytes, dirty_workers) in ladder {
            assert!(
                dirty_workers >= 1 && dirty_workers <= world,
                "dirty_workers must be in 1..={world}"
            );
            let cfg = EcCheckConfig::paper_defaults()
                .with_km(K, M)
                .with_packet_size(packet_size)
                .with_coding_threads(threads)
                .with_pipeline_buffer((packet_size / 2).max(64))
                .with_remote_flush_every(0)
                .with_save_mode(SaveMode::Pipelined);
            let base = bench_dicts(world, shard_bytes, 1);
            let fresh = bench_dicts(world, shard_bytes, 2);
            // Spread the dirty workers across the world so multi-worker
            // densities touch distinct data chunks.
            let dirty: Vec<usize> = (0..dirty_workers).map(|i| i * world / dirty_workers).collect();
            let mut mutated = base.clone();
            for &w in &dirty {
                mutated[w] = fresh[w].clone();
            }

            let full_ms = best_full_save(&spec, cfg, &mutated);
            let (delta_ms, report) = best_delta_save(&spec, cfg, &base, &mutated, &dirty);

            // The full-save parity bound `m·s·W`: `s` is the packed
            // region per worker, recovered exactly from the delta
            // report (`region_bytes` covers the dirty workers only).
            let region_per_worker = report.region_bytes / dirty_workers as u64;
            let full_traffic_bytes = M as u64 * region_per_worker * world as u64;
            shapes.push(DeltaShapePerf {
                name: name.to_string(),
                packet_size,
                shard_bytes,
                dirty_workers,
                world,
                full_ms,
                delta_ms,
                speedup: full_ms / delta_ms,
                full_traffic_bytes,
                delta_traffic_bytes: report.traffic_bytes,
                traffic_ratio: report.traffic_bytes as f64 / full_traffic_bytes as f64,
                sparse: dirty_workers * (1 + M) < M * world,
            });
        }
        Self {
            arch: std::env::consts::ARCH.to_string(),
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            requested_threads: threads,
            shapes,
        }
    }

    /// Whether the *latency* comparison should fail the build. Wall
    /// times on a single-core host measure time-slicing, not the
    /// paths, so the latency gate downgrades to advisory there. The
    /// traffic gate is byte accounting and is enforced everywhere —
    /// see [`DeltaBenchReport::traffic_regressions`].
    pub fn gate_enforced(&self) -> bool {
        self.host_threads >= 2
    }

    /// A loud, CI-visible warning when multi-threaded numbers were
    /// requested but the latency gate cannot be enforced. `None` on
    /// healthy hosts (or honest single-thread runs).
    pub fn gate_warning(&self) -> Option<String> {
        (self.requested_threads >= 2 && !self.gate_enforced()).then(|| {
            format!(
                "WARNING: --threads {} requested but the host advertises {} thread(s); \
                 the {LATENCY_GATE} delta-latency gate was NOT enforced in this run \
                 (the traffic gate still was — byte accounting is host-independent)",
                self.requested_threads, self.host_threads
            )
        })
    }

    /// Reports the gate's disposition into a telemetry recorder so an
    /// attached exporter surfaces advisory downgrades, mirroring the
    /// pipeline bench.
    pub fn record_gate_telemetry(&self, recorder: &ecc_telemetry::Recorder) {
        match self.gate_warning() {
            Some(warning) => {
                recorder.counter("bench.gate.advisory").incr();
                recorder.event("gate.warning", format!("delta-bench: {warning}"));
            }
            None => {
                recorder.counter("bench.gate.enforced").incr();
            }
        }
    }

    /// Sparse shapes whose delta traffic reached the full-save `m·s·W`
    /// bound. Deterministic byte accounting: enforced on every host —
    /// a non-empty result always fails CI.
    pub fn traffic_regressions(&self) -> Vec<String> {
        self.shapes
            .iter()
            .filter(|s| s.sparse && s.delta_traffic_bytes >= s.full_traffic_bytes)
            .map(|s| {
                format!(
                    "{}: delta moved {} bytes but the full-save bound is {} \
                     (ratio {:.2}, must be < 1.0 on sparse dirty sets)",
                    s.name, s.delta_traffic_bytes, s.full_traffic_bytes, s.traffic_ratio
                )
            })
            .collect()
    }

    /// Sparse shapes where the delta path lost to the full save by
    /// more than the documented tolerance. Fails CI only when
    /// [`DeltaBenchReport::gate_enforced`] holds.
    pub fn latency_regressions(&self) -> Vec<String> {
        self.shapes
            .iter()
            .filter(|s| s.sparse && s.delta_ms > s.full_ms * LATENCY_GATE)
            .map(|s| {
                format!(
                    "{}: delta {:.2} ms vs full {:.2} ms ({:.2}x, gate {LATENCY_GATE})",
                    s.name, s.delta_ms, s.full_ms, s.speedup
                )
            })
            .collect()
    }

    /// The best traffic saving across sparse shapes — the headline.
    /// `None` when the ladder has no sparse shape.
    pub fn best_traffic_saving(&self) -> Option<f64> {
        self.shapes
            .iter()
            .filter(|s| s.sparse)
            .map(|s| 1.0 / s.traffic_ratio)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Serializes the report as a stable, diffable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"eccheck-delta-bench/1\",\n");
        out.push_str(&format!("  \"arch\": \"{}\",\n", self.arch));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
        out.push_str(&format!("  \"requested_threads\": {},\n", self.requested_threads));
        out.push_str(&format!("  \"latency_gate_enforced\": {},\n", self.gate_enforced()));
        out.push_str("  \"shapes\": [\n");
        for (i, s) in self.shapes.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    {{\"name\": \"{}\", \"packet_size\": {}, \"shard_bytes\": {}, ",
                    "\"dirty_workers\": {}, \"world\": {}, \"full_ms\": {:.3}, ",
                    "\"delta_ms\": {:.3}, \"speedup\": {:.3}, \"full_traffic_bytes\": {}, ",
                    "\"delta_traffic_bytes\": {}, \"traffic_ratio\": {:.4}, ",
                    "\"sparse\": {}}}{}\n"
                ),
                s.name,
                s.packet_size,
                s.shard_bytes,
                s.dirty_workers,
                s.world,
                s.full_ms,
                s.delta_ms,
                s.speedup,
                s.full_traffic_bytes,
                s.delta_traffic_bytes,
                s.traffic_ratio,
                s.sparse,
                if i + 1 == self.shapes.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A compact GitHub-flavoured-markdown summary (for
    /// `$GITHUB_STEP_SUMMARY`): per-density wall times, speedups and
    /// traffic ratios.
    pub fn summary_markdown(&self) -> String {
        let mut out = String::from("### delta-bench\n\n");
        out.push_str(&format!(
            "delta vs full save on `{}` ({} host threads, {} requested); latency gate {}",
            self.arch,
            self.host_threads,
            self.requested_threads,
            if self.gate_enforced() { "enforced" } else { "advisory (single-core host)" },
        ));
        if let Some(saving) = self.best_traffic_saving() {
            out.push_str(&format!("; best sparse traffic saving: **{saving:.1}x**"));
        }
        out.push_str("\n\n");
        if let Some(warning) = self.gate_warning() {
            out.push_str(&format!("⚠️ **{warning}**\n\n"));
        }
        out.push_str(
            "| shape | dirty | full ms | delta ms | speedup | delta bytes | bound bytes | ratio |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for s in &self.shapes {
            out.push_str(&format!(
                "| {} | {}/{} | {:.2} | {:.2} | {:.2}x | {} | {} | {:.2}{} |\n",
                s.name,
                s.dirty_workers,
                s.world,
                s.full_ms,
                s.delta_ms,
                s.speedup,
                s.delta_traffic_bytes,
                s.full_traffic_bytes,
                s.traffic_ratio,
                if s.sparse { "" } else { " (dense, unbounded)" },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_report_is_complete_and_parseable() {
        let report = DeltaBenchReport::collect_custom(
            &[("tiny-sparse", 1 << 10, 1 << 12, 1), ("tiny-dense", 1 << 10, 1 << 12, 8)],
            2,
        );
        assert_eq!(report.shapes.len(), 2);
        let sparse = &report.shapes[0];
        assert!(sparse.sparse, "1 of 8 dirty is sparse under (k, m) = (2, 2)");
        assert!(sparse.full_ms > 0.0 && sparse.delta_ms > 0.0);
        assert!(sparse.delta_traffic_bytes > 0);
        assert!(
            sparse.delta_traffic_bytes < sparse.full_traffic_bytes,
            "sparse delta traffic must beat the m·s·W bound"
        );
        let dense = &report.shapes[1];
        assert!(!dense.sparse, "8 of 8 dirty exceeds the parity-only bound by design");

        assert!(report.traffic_regressions().is_empty());
        assert_eq!(report.gate_warning().is_some(), !report.gate_enforced());

        let json = report.to_json();
        let doc = ecc_trace::json::parse(&json).expect("report JSON parses");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("eccheck-delta-bench/1"));
        let shapes = doc.get("shapes").and_then(|v| v.as_arr()).expect("shapes array");
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes[0].get("dirty_workers").and_then(|v| v.as_f64()), Some(1.0));

        let md = report.summary_markdown();
        assert!(md.contains("delta-bench"));
        assert!(md.contains("| shape |"));
    }

    #[test]
    fn sparse_traffic_follows_the_linearity_model() {
        // 1 dirty worker under (k, m) = (2, 2), W = 8: the delta moves
        // region·(1 + m) = 3·s bytes against a bound of m·s·W = 16·s.
        let report = DeltaBenchReport::collect_custom(&[("one-dirty", 1 << 10, 1 << 12, 1)], 1);
        let s = &report.shapes[0];
        let region = s.delta_traffic_bytes / 3;
        assert_eq!(s.delta_traffic_bytes, region * 3);
        assert_eq!(s.full_traffic_bytes, region * 16);
        assert!((s.traffic_ratio - 3.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn gate_telemetry_mirrors_the_warning_state() {
        let report = DeltaBenchReport::collect_custom(&[("tiny", 1 << 10, 1 << 12, 1)], 2);
        let recorder = ecc_telemetry::Recorder::new();
        report.record_gate_telemetry(&recorder);
        let snap = recorder.snapshot();
        if report.gate_warning().is_some() {
            assert_eq!(snap.counter("bench.gate.advisory"), 1);
            assert!(snap.events.iter().any(|e| e.name == "gate.warning"));
        } else {
            assert_eq!(snap.counter("bench.gate.enforced"), 1);
            assert!(snap.events.is_empty());
        }
    }
}
