//! Criterion micro-benches for the checkpoint protocol: full
//! serialization (the baseline path) vs the serialization-free
//! decomposition (ECCheck's path, §III-C), plus packing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ecc_checkpoint::{decompose, serialize, Packer, StateDict};
use ecc_dnn::{build_worker_state_dict, ModelConfig, ParallelismSpec, StateDictSpec};

fn shard() -> StateDict {
    // A real Megatron-style shard, a few MB of tensor data.
    let model = ModelConfig::gpt2(256, 8, 8).with_vocab(4096).with_seq_len(128);
    let par = ParallelismSpec::new(2, 2, 1).unwrap();
    build_worker_state_dict(&StateDictSpec::new(model, par), 0).unwrap()
}

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

fn bench_serialize_vs_decompose(c: &mut Criterion) {
    let sd = shard();
    let bytes = sd.tensor_bytes() as u64;
    let mut group = c.benchmark_group("state_dict_capture");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("full_serialize_torch_save_style", |b| {
        b.iter(|| serialize::dict_to_bytes(&sd))
    });
    group.bench_function("serialization_free_decompose", |b| b.iter(|| decompose(&sd)));
    group.finish();
}

fn bench_roundtrips(c: &mut Criterion) {
    let sd = shard();
    let bytes = sd.tensor_bytes() as u64;
    let serialized = serialize::dict_to_bytes(&sd);
    let d = decompose(&sd);
    let mut group = c.benchmark_group("state_dict_restore");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("deserialize", |b| {
        b.iter(|| serialize::dict_from_bytes(&serialized).unwrap())
    });
    group.bench_function("reassemble", |b| b.iter(|| d.reassemble().unwrap()));
    group.finish();
}

fn bench_packer(c: &mut Criterion) {
    let sd = shard();
    let d = decompose(&sd);
    let tensors = d.tensor_data().to_vec();
    let total: usize = tensors.iter().map(Vec::len).sum();
    let packer = Packer::new(256 << 10).unwrap();
    let mut group = c.benchmark_group("packer");
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_function("pack", |b| b.iter(|| packer.pack(&tensors)));
    let (packets, extents) = packer.pack(&tensors);
    let lens: Vec<usize> = tensors.iter().map(Vec::len).collect();
    group
        .bench_function("unpack", |b| b.iter(|| packer.unpack(&packets, &extents, &lens).unwrap()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_serialize_vs_decompose, bench_roundtrips, bench_packer
}
criterion_main!(benches);
