//! Criterion micro-benches for the erasure-coding substrate.
//!
//! These are the ablation benches DESIGN.md calls out: Cauchy vs
//! Vandermonde generators, good-Cauchy normalisation, smart vs dumb XOR
//! schedules, and thread-pool scaling — the design choices of §IV-A.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ecc_erasure::{CodeParams, CodingPool, ErasureCode, MulTable, ScheduleKind};
use ecc_gf::GaloisField;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

const CHUNK: usize = 4 << 20; // 4 MiB per chunk

fn chunks(k: usize, len: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..k)
        .map(|_| {
            let mut v = vec![0u8; len];
            rng.fill_bytes(&mut v);
            v
        })
        .collect()
}

fn configure(c: &mut Criterion) -> Criterion {
    let _ = c;
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_by_generator");
    group.throughput(Throughput::Bytes((2 * CHUNK) as u64));
    let data = chunks(2, CHUNK);
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let params = CodeParams::new(2, 2, 8).unwrap();
    for (name, code) in [
        ("cauchy_good", ErasureCode::cauchy_good(params).unwrap()),
        ("cauchy_raw", ErasureCode::cauchy(params).unwrap()),
        ("vandermonde", ErasureCode::vandermonde(params).unwrap()),
    ] {
        group.bench_function(name, |b| b.iter(|| code.encode(&refs).unwrap()));
    }
    group.finish();
}

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_by_schedule");
    group.throughput(Throughput::Bytes((4 * CHUNK) as u64));
    let data = chunks(4, CHUNK);
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let code = ErasureCode::cauchy_good(CodeParams::new(4, 2, 8).unwrap()).unwrap();
    for kind in [ScheduleKind::Smart, ScheduleKind::Dumb] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| code.encode_with(&refs, kind).unwrap())
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("encode_thread_scaling");
    group.throughput(Throughput::Bytes((2 * CHUNK) as u64));
    let data = chunks(2, CHUNK);
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let pool = CodingPool::new(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| pool.encode(&code, &refs).unwrap())
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    group.throughput(Throughput::Bytes((2 * CHUNK) as u64));
    let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
    let data = chunks(2, CHUNK);
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    let parity = code.encode(&refs).unwrap();
    // Worst case: both data chunks lost.
    let shards: Vec<Option<&[u8]>> = vec![None, None, Some(&parity[0]), Some(&parity[1])];
    group.bench_function("both_data_chunks_lost", |b| b.iter(|| code.decode(&shards).unwrap()));
    // Best case: nothing lost (pure copy path).
    let intact: Vec<Option<&[u8]>> =
        vec![Some(&data[0]), Some(&data[1]), Some(&parity[0]), Some(&parity[1])];
    group.bench_function("no_loss", |b| b.iter(|| code.decode(&intact).unwrap()));
    group.finish();
}

fn bench_gf_region(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf8_region_multiply");
    group.throughput(Throughput::Bytes(CHUNK as u64));
    let gf = GaloisField::new(8).unwrap();
    let table = MulTable::new(&gf, 0x53).unwrap();
    let src = chunks(1, CHUNK).remove(0);
    let mut dst = vec![0u8; CHUNK];
    group.bench_function("table_apply", |b| b.iter(|| table.apply(&src, &mut dst)));
    group.bench_function("table_apply_xor", |b| b.iter(|| table.apply_xor(&src, &mut dst)));
    group.bench_function("xor_into", |b| b.iter(|| ecc_erasure::region::xor_into(&mut dst, &src)));
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    // Ablation: patching parity for a small change vs re-encoding all.
    let mut group = c.benchmark_group("incremental_vs_full");
    group.throughput(Throughput::Bytes((2 * CHUNK) as u64));
    let code = ErasureCode::cauchy_good(CodeParams::new(2, 2, 8).unwrap()).unwrap();
    let data = chunks(2, CHUNK);
    let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
    // A delta touching ~1/16 of one chunk (a single worker's update).
    let mut delta = vec![0u8; CHUNK];
    delta[..CHUNK / 16].copy_from_slice(&chunks(1, CHUNK / 16)[0]);
    group.bench_function("full_reencode", |b| b.iter(|| code.encode(&refs).unwrap()));
    group.bench_function("parity_delta", |b| b.iter(|| code.parity_delta(1, &delta).unwrap()));
    group.finish();
}

fn bench_gf16_region(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf16_region_multiply");
    group.throughput(Throughput::Bytes(CHUNK as u64));
    let gf16 = GaloisField::new(16).unwrap();
    let table = ecc_erasure::MulTable16::new(&gf16, 0x1053).unwrap();
    let src = chunks(1, CHUNK).remove(0);
    let mut dst = vec![0u8; CHUNK];
    group.bench_function("split_table_apply", |b| b.iter(|| table.apply(&src, &mut dst)));
    group.bench_function("split_table_apply_xor", |b| b.iter(|| table.apply_xor(&src, &mut dst)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure(&mut Criterion::default());
    targets = bench_generators, bench_schedules, bench_thread_scaling, bench_decode,
        bench_gf_region, bench_incremental, bench_gf16_region
}
criterion_main!(benches);
