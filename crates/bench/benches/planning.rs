//! Criterion micro-benches for the control-plane algorithms: sweep-line
//! placement (§IV-B-1), reduction planning (§IV-B-2), and the
//! reliability closed forms at cluster scale.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecc_cluster::ClusterSpec;
use ecc_reliability::{cluster_recovery, ec_recovery, replication_pairs_recovery};
use eccheck::{select_data_parity_nodes, ReductionPlan};

fn configure() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_line_placement");
    for nodes in [16usize, 64, 256, 1024] {
        let origin: Vec<std::ops::Range<usize>> = (0..nodes).map(|i| i * 8..(i + 1) * 8).collect();
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| select_data_parity_nodes(&origin, n / 2).unwrap())
        });
    }
    group.finish();
}

fn bench_reduction_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_plan");
    for (nodes, g) in [(4usize, 4usize), (16, 8), (64, 8)] {
        let spec = ClusterSpec::tiny_test(nodes, g);
        let placement = select_data_parity_nodes(&spec.origin_group(), nodes / 2).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}x{g}")),
            &nodes,
            |b, &n| b.iter(|| ReductionPlan::build(&spec, &placement, n / 2).unwrap()),
        );
    }
    group.finish();
}

fn bench_reliability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliability_closed_forms");
    group.bench_function("fig3_point_2000_nodes", |b| {
        b.iter(|| {
            let p = 0.01;
            let rep = cluster_recovery(replication_pairs_recovery(4, p), 500);
            let era = cluster_recovery(ec_recovery(4, 2, p), 500);
            (rep, era)
        })
    });
    group.bench_function("fig15_point_n64", |b| {
        b.iter(|| ec_recovery(64, 32, 0.1) - replication_pairs_recovery(64, 0.1))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = configure();
    targets = bench_placement, bench_reduction_plan, bench_reliability
}
criterion_main!(benches);
