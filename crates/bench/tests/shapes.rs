//! Figure-shape regression tests: the qualitative claims each figure
//! harness prints are asserted here so `cargo test` guards them.

use ecc_baselines::timing::{
    average_iteration_time, base1_save, base2_save, base3_save, remote_recovery, BaselineConstants,
    SaveCost,
};
use ecc_cluster::{ClusterSpec, FailureScenario};
use ecc_dnn::{table_i_configs, GpuSpec, ModelConfig, ParallelismSpec, TrainingTimeModel};
use ecc_reliability::{cluster_recovery, ec_recovery, replication_pairs_recovery};
use ecc_sim::SimDuration;
use eccheck::timing::{recovery_timing, save_timing, TimingConstants};
use eccheck::EcCheckConfig;

fn setup() -> (ClusterSpec, EcCheckConfig, BaselineConstants, TimingConstants, ParallelismSpec) {
    (
        ClusterSpec::paper_testbed(),
        EcCheckConfig::paper_defaults(),
        BaselineConstants::default(),
        TimingConstants::default(),
        ParallelismSpec::new(4, 4, 1).unwrap(),
    )
}

/// Fig. 3: the EC advantage strictly grows with p over the plotted range.
#[test]
fn fig03_shape() {
    let mut last = 0.0;
    for p in [0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05] {
        let rep = cluster_recovery(replication_pairs_recovery(4, p), 500);
        let era = cluster_recovery(ec_recovery(4, 2, p), 500);
        let gap = era - rep;
        assert!(gap > last, "gap must grow with p (p={p})");
        last = gap;
    }
}

/// Fig. 4: serialization share grows with storage bandwidth.
#[test]
fn fig04_shape() {
    let c = BaselineConstants::default();
    let par = ParallelismSpec::new(4, 1, 1).unwrap();
    let shard = ModelConfig::gpt2_345m().shard_bytes(&par);
    let serialize = shard as f64 / c.serialize_rate;
    let mut last_share = 0.0;
    for gbps in [5.0, 10.0, 20.0] {
        let transfer = ecc_sim::Bandwidth::from_gbps(gbps).transfer_time(shard * 4).as_secs_f64();
        let share = serialize / (serialize + transfer);
        assert!(share > last_share, "share must grow with bandwidth");
        last_share = share;
    }
    assert!(last_share > 0.2, "at 20 Gbps serialization is a major cost");
}

/// Fig. 10: for every Table I model, base1 ≈ base2 ≫ ECCheck > base3,
/// with ECCheck within 1x–4x of base3.
#[test]
fn fig10_shape() {
    let (spec, cfg, bc, tc, par) = setup();
    for (model, _) in table_i_configs() {
        let shard = model.shard_bytes(&par);
        let b1 = base1_save(&spec, shard, &bc).total;
        let b2 = base2_save(&spec, shard, &bc).total;
        let b3 = base3_save(&spec, shard).total;
        let ecc = save_timing(&spec, &cfg, shard, None, &tc).total;
        assert!(b1.as_secs_f64() / ecc.as_secs_f64() > 5.0, "{}", model.label());
        assert!(b2.as_secs_f64() / ecc.as_secs_f64() > 5.0, "{}", model.label());
        let premium = ecc.as_secs_f64() / b3.as_secs_f64();
        assert!((1.0..4.0).contains(&premium), "{}: premium {premium}", model.label());
    }
}

/// Fig. 11: step 2 negligible, step 1 a small blocking share, step 3
/// dominates.
#[test]
fn fig11_shape() {
    let (spec, cfg, _, tc, par) = setup();
    for model in [
        ModelConfig::gpt2(1600, 32, 48),
        ModelConfig::gpt2(2560, 40, 64),
        ModelConfig::gpt2(5120, 40, 64),
    ] {
        let t = save_timing(&spec, &cfg, model.shard_bytes(&par), None, &tc);
        assert!(t.step2_broadcast.as_nanos() * 100 < t.total.as_nanos());
        assert!(t.step3_pipeline > t.step1_offload);
        let blocking = t.stall().as_secs_f64() / t.total.as_secs_f64();
        assert!(blocking < 0.25, "{}: blocking {blocking}", model.label());
    }
}

/// Fig. 12: at every frequency, base1 > base2 > {base3, ECCheck}, and
/// the in-memory systems converge to the bare iteration time.
#[test]
fn fig12_shape() {
    let (spec, cfg, bc, tc, par) = setup();
    let model = ModelConfig::gpt2(2560, 40, 64);
    let shard = model.shard_bytes(&par);
    let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), spec.nic()).unwrap();
    let iteration = tm.iteration_time();
    let ecc_t = save_timing(&spec, &cfg, shard, None, &tc);
    let ecc_cost = SaveCost { stall: ecc_t.stall(), total: ecc_t.total };
    for interval in [1u64, 5, 20, 100] {
        let b1 = average_iteration_time(iteration, interval, base1_save(&spec, shard, &bc));
        let b2 = average_iteration_time(iteration, interval, base2_save(&spec, shard, &bc));
        let b3 = average_iteration_time(iteration, interval, base3_save(&spec, shard));
        let ec = average_iteration_time(iteration, interval, ecc_cost);
        if interval == 1 {
            // At every-iteration saving, base2 degenerates: its async
            // persist fully backpressures, so it sits at base1's level
            // (within 1%) rather than below it.
            let ratio = b2.as_secs_f64() / b1.as_secs_f64();
            assert!((0.95..1.01).contains(&ratio), "interval 1: ratio {ratio}");
        } else {
            assert!(b1 > b2, "interval {interval}");
        }
        assert!(b2 > b3, "interval {interval}");
        assert!(b2 > ec, "interval {interval}");
    }
    let rare = average_iteration_time(iteration, 200, ecc_cost);
    assert!(rare.as_secs_f64() < iteration.as_secs_f64() * 1.05);
}

/// Fig. 13: ECCheck recovery beats remote reload by a large factor in
/// both scenarios; decode (b) costs more than resend (a).
#[test]
fn fig13_shape() {
    let (spec, cfg, bc, tc, par) = setup();
    let shard = ModelConfig::gpt2(2560, 40, 64).shard_bytes(&par);
    let remote = remote_recovery(&spec, shard, &bc);
    let a = recovery_timing(&spec, &cfg, shard, &FailureScenario::fig13a(), &tc);
    let b = recovery_timing(&spec, &cfg, shard, &FailureScenario::fig13b(), &tc);
    assert!(a.total < b.total);
    let speedup = remote.as_secs_f64() / b.total.as_secs_f64();
    assert!(speedup > 8.0, "recovery speedup {speedup} (paper: up to 13.9x)");
}

/// Fig. 14: with the per-GPU shard fixed, remote baselines scale
/// linearly with GPU count while in-memory schemes scale sub-linearly.
#[test]
fn fig14_shape() {
    let bc = BaselineConstants::default();
    let tc = TimingConstants::default();
    let cfg = EcCheckConfig::paper_defaults();
    let shard =
        ModelConfig::gpt2(1024, 16, 16).shard_bytes(&ParallelismSpec::new(4, 1, 1).unwrap());
    let time = |g: usize| {
        let spec = ClusterSpec::v100_scalability(4, g);
        (
            base1_save(&spec, shard, &bc).total.as_secs_f64(),
            save_timing(&spec, &cfg, shard, None, &tc).total.as_secs_f64(),
        )
    };
    let (b1_small, ecc_small) = time(1);
    let (b1_big, ecc_big) = time(8);
    let b1_growth = b1_big / b1_small;
    let ecc_growth = ecc_big / ecc_small;
    assert!(b1_growth > 6.0, "remote should scale ~linearly (got {b1_growth})");
    assert!(ecc_growth < b1_growth * 0.85, "ECCheck must scale better ({ecc_growth})");
}

/// Fig. 15: EC dominates replication at every n and the gap widens.
#[test]
fn fig15_shape() {
    for p in [0.05, 0.1, 0.2] {
        let mut last_gap = 0.0;
        for n in [4usize, 8, 16, 32, 64] {
            let gap = ec_recovery(n, n / 2, p) - replication_pairs_recovery(n, p);
            assert!(gap > 0.0, "n={n} p={p}");
            assert!(gap >= last_gap, "gap must widen with n (n={n}, p={p})");
            last_gap = gap;
        }
    }
}

/// The duration budget of one save is internally consistent.
#[test]
fn save_timing_components_sum() {
    let (spec, cfg, _, tc, par) = setup();
    let t = save_timing(&spec, &cfg, ModelConfig::gpt2(1600, 32, 48).shard_bytes(&par), None, &tc);
    assert_eq!(t.total, t.step1_offload + t.step2_broadcast + t.step3_pipeline);
    assert_eq!(t.stall(), t.step1_offload + t.step2_broadcast);
    assert!(t.total > SimDuration::ZERO);
}
