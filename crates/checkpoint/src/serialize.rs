//! A compact, self-contained binary serializer for checkpoint values.
//!
//! This plays the role `torch.save` / pickle plays in the paper: the
//! remote-storage baselines serialize the whole `state_dict` with it
//! (incurring the overhead Fig. 4 measures), while ECCheck uses it only
//! for the tiny non-tensor key-values and tensor keys that are broadcast
//! in step 2 of the serialization-free protocol (§III-C).
//!
//! The format is tag-prefixed with LEB128 lengths; round-trips are exact,
//! including float bit patterns.

use crate::{CheckpointError, DType, StateDict, Tensor, Value};

const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_BOOL: u8 = 0x03;
const TAG_STR: u8 = 0x04;
const TAG_BYTES: u8 = 0x05;
const TAG_TENSOR: u8 = 0x06;
const TAG_LIST: u8 = 0x07;
const TAG_DICT: u8 = 0x08;

/// Serializes a value to bytes.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::{serialize, Value};
///
/// let v = Value::Int(-42);
/// let bytes = serialize::to_bytes(&v);
/// assert_eq!(serialize::from_bytes(&bytes)?, v);
/// # Ok::<(), ecc_checkpoint::CheckpointError>(())
/// ```
pub fn to_bytes(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(serialized_size(value));
    write_value(value, &mut out);
    out
}

/// Deserializes a value previously produced by [`to_bytes`].
///
/// # Errors
///
/// Returns a [`CheckpointError`] on truncated input, unknown tags,
/// invalid UTF-8, or inconsistent tensor metadata. Trailing bytes after
/// the value are also an error.
pub fn from_bytes(bytes: &[u8]) -> Result<Value, CheckpointError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let v = read_value(&mut cursor)?;
    if cursor.pos != bytes.len() {
        return Err(CheckpointError::BadTensor {
            detail: format!("{} trailing bytes after value", bytes.len() - cursor.pos),
        });
    }
    Ok(v)
}

/// Serializes a whole `state_dict`.
pub fn dict_to_bytes(dict: &StateDict) -> Vec<u8> {
    to_bytes(&Value::Dict(dict.clone()))
}

/// Deserializes a `state_dict` previously produced by [`dict_to_bytes`].
///
/// # Errors
///
/// Same conditions as [`from_bytes`], plus a type error when the encoded
/// value is not a dictionary.
pub fn dict_from_bytes(bytes: &[u8]) -> Result<StateDict, CheckpointError> {
    match from_bytes(bytes)? {
        Value::Dict(d) => Ok(d),
        other => Err(CheckpointError::BadTensor {
            detail: format!("expected a dict at top level, found {other:?}"),
        }),
    }
}

/// Exact size in bytes [`to_bytes`] would produce, without allocating.
/// Used by the timing model to size serialized transfers.
pub fn serialized_size(value: &Value) -> usize {
    match value {
        Value::Int(i) => 1 + varint_len(zigzag(*i)),
        Value::Float(_) => 1 + 8,
        Value::Bool(_) => 1 + 1,
        Value::Str(s) => 1 + varint_len(s.len() as u64) + s.len(),
        Value::Bytes(b) => 1 + varint_len(b.len() as u64) + b.len(),
        Value::Tensor(t) => {
            1 + 1
                + varint_len(t.shape().len() as u64)
                + t.shape().iter().map(|&d| varint_len(d as u64)).sum::<usize>()
                + varint_len(t.byte_len() as u64)
                + t.byte_len()
        }
        Value::List(items) => {
            1 + varint_len(items.len() as u64) + items.iter().map(serialized_size).sum::<usize>()
        }
        Value::Dict(d) => {
            1 + varint_len(d.len() as u64)
                + d.iter()
                    .map(|(k, v)| varint_len(k.len() as u64) + k.len() + serialized_size(v))
                    .sum::<usize>()
        }
    }
}

pub(crate) fn write_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Int(i) => {
            out.push(TAG_INT);
            write_varint(zigzag(*i), out);
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            write_varint(b.len() as u64, out);
            out.extend_from_slice(b);
        }
        Value::Tensor(t) => {
            out.push(TAG_TENSOR);
            out.push(t.dtype().tag());
            write_varint(t.shape().len() as u64, out);
            for &d in t.shape() {
                write_varint(d as u64, out);
            }
            write_varint(t.byte_len() as u64, out);
            out.extend_from_slice(t.bytes());
        }
        Value::List(items) => {
            out.push(TAG_LIST);
            write_varint(items.len() as u64, out);
            for item in items {
                write_value(item, out);
            }
        }
        Value::Dict(d) => {
            out.push(TAG_DICT);
            write_varint(d.len() as u64, out);
            for (k, v) in d.iter() {
                write_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                write_value(v, out);
            }
        }
    }
}

pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }
    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
        let b = *self.bytes.get(self.pos).ok_or(CheckpointError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::UnexpectedEof)?;
        let s = self.bytes.get(self.pos..end).ok_or(CheckpointError::UnexpectedEof)?;
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, CheckpointError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            value |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift >= 64 {
                return Err(CheckpointError::BadTag { tag: b });
            }
        }
    }
}

pub(crate) fn read_value(c: &mut Cursor<'_>) -> Result<Value, CheckpointError> {
    match c.u8()? {
        TAG_INT => Ok(Value::Int(unzigzag(c.varint()?))),
        TAG_FLOAT => {
            let raw: [u8; 8] = c.take(8)?.try_into().map_err(|_| CheckpointError::UnexpectedEof)?;
            Ok(Value::Float(f64::from_le_bytes(raw)))
        }
        TAG_BOOL => Ok(Value::Bool(c.u8()? != 0)),
        TAG_STR => {
            let len = c.varint()? as usize;
            let s = std::str::from_utf8(c.take(len)?).map_err(|_| CheckpointError::BadUtf8)?;
            Ok(Value::Str(s.to_string()))
        }
        TAG_BYTES => {
            let len = c.varint()? as usize;
            Ok(Value::Bytes(c.take(len)?.to_vec()))
        }
        TAG_TENSOR => {
            let dtype = DType::from_tag(c.u8()?).ok_or(CheckpointError::BadTag { tag: 0xFF })?;
            let rank = c.varint()? as usize;
            let mut shape = Vec::with_capacity(rank.min(64));
            for _ in 0..rank {
                shape.push(c.varint()? as usize);
            }
            let len = c.varint()? as usize;
            let data = c.take(len)?.to_vec();
            Ok(Value::Tensor(Tensor::from_bytes(dtype, &shape, data)?))
        }
        TAG_LIST => {
            let count = c.varint()? as usize;
            let mut items = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                items.push(read_value(c)?);
            }
            Ok(Value::List(items))
        }
        TAG_DICT => {
            let count = c.varint()? as usize;
            let mut dict = StateDict::new();
            for _ in 0..count {
                let klen = c.varint()? as usize;
                let key = std::str::from_utf8(c.take(klen)?)
                    .map_err(|_| CheckpointError::BadUtf8)?
                    .to_string();
                dict.insert(key, read_value(c)?);
            }
            Ok(Value::Dict(dict))
        }
        tag => Err(CheckpointError::BadTag { tag }),
    }
}

pub(crate) fn write_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

fn zigzag(i: i64) -> u64 {
    (i.wrapping_shl(1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: &Value) {
        let bytes = to_bytes(v);
        assert_eq!(bytes.len(), serialized_size(v), "size mismatch for {v:?}");
        assert_eq!(&from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip(&Value::Int(0));
        roundtrip(&Value::Int(i64::MAX));
        roundtrip(&Value::Int(i64::MIN));
        roundtrip(&Value::Float(3.5));
        roundtrip(&Value::Float(f64::NEG_INFINITY));
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Str("megatron".to_string()));
        roundtrip(&Value::Str(String::new()));
        roundtrip(&Value::Bytes(vec![0, 1, 2, 255]));
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let bytes = to_bytes(&Value::Float(nan));
        match from_bytes(&bytes).unwrap() {
            Value::Float(x) => assert_eq!(x.to_bits(), nan.to_bits()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn tensors_round_trip() {
        let t = Tensor::from_bytes(DType::F16, &[2, 3], (0u8..12).collect()).unwrap();
        roundtrip(&Value::Tensor(t));
        roundtrip(&Value::Tensor(Tensor::zeros(DType::I64, &[])));
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut opt = StateDict::new();
        opt.insert("step", Value::Int(100));
        opt.insert("exp_avg", Value::Tensor(Tensor::zeros(DType::F32, &[16])));
        let mut sd = StateDict::new();
        sd.insert("iteration", Value::Int(42));
        sd.insert("optimizer", Value::Dict(opt));
        sd.insert("rng", Value::Bytes(vec![7u8; 64]));
        sd.insert(
            "shapes",
            Value::List(vec![Value::Int(1), Value::Str("x".into()), Value::Bool(false)]),
        );
        let bytes = dict_to_bytes(&sd);
        assert_eq!(dict_from_bytes(&bytes).unwrap(), sd);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_bytes(&Value::Str("hello".to_string()));
        for cut in 0..bytes.len() {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut bytes = to_bytes(&Value::Int(5));
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(matches!(from_bytes(&[0x7F]), Err(CheckpointError::BadTag { tag: 0x7F })));
    }

    #[test]
    fn dict_from_bytes_rejects_non_dict() {
        let bytes = to_bytes(&Value::Int(1));
        assert!(dict_from_bytes(&bytes).is_err());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            any::<bool>().prop_map(Value::Bool),
            "[a-z.]{0,12}".prop_map(Value::Str),
            proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
            proptest::collection::vec(any::<u8>(), 0..16).prop_map(|b| {
                let len = b.len();
                Value::Tensor(Tensor::from_bytes(DType::U8, &[len], b).unwrap())
            }),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
                proptest::collection::vec(("[a-z]{1,8}", inner), 0..4)
                    .prop_map(|kvs| { Value::Dict(kvs.into_iter().collect()) }),
            ]
        })
    }

    proptest! {
        #[test]
        fn prop_round_trip(v in arb_value()) {
            let bytes = to_bytes(&v);
            prop_assert_eq!(bytes.len(), serialized_size(&v));
            let back = from_bytes(&bytes).unwrap();
            // NaN floats compare unequal; compare re-serialized bytes
            // instead, which is the bit-exactness we actually promise.
            prop_assert_eq!(to_bytes(&back), bytes);
        }

        #[test]
        fn prop_varint_round_trip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            prop_assert_eq!(buf.len(), varint_len(v));
            let mut c = Cursor { bytes: &buf, pos: 0 };
            prop_assert_eq!(c.varint().unwrap(), v);
        }

        #[test]
        fn prop_zigzag_round_trip(i in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(i)), i);
        }
    }
}
