//! Checkpoint data structures for the ECCheck reproduction.
//!
//! In distributed DNN training each worker holds a sharded `state_dict` —
//! a nested dictionary of model parameters, optimizer states, RNG states
//! and scalar metadata (paper §II-A). This crate reproduces that world in
//! Rust:
//!
//! * [`StateDict`] / [`Value`] / [`Tensor`] — the checkpoint value tree.
//! * [`serialize`] — a compact binary serializer (the `torch.save`
//!   stand-in used by the remote-storage baselines, and the tool ECCheck
//!   itself applies *only* to the tiny non-tensor components).
//! * [`Decomposition`] — the serialization-free protocol's first step
//!   (paper §III-C): split a `state_dict` into non-tensor key-values,
//!   tensor keys, and raw tensor data, and reassemble it bit-exactly.
//! * [`Packer`] / [`Packet`] — fixed-size buffer packing that turns a
//!   worker's variable-size tensors into the equal-size data packets the
//!   erasure coder consumes, with CRC-32 integrity checks.
//!
//! # Examples
//!
//! ```
//! use ecc_checkpoint::{DType, StateDict, Tensor, Value};
//!
//! let mut sd = StateDict::new();
//! sd.insert("iteration", Value::Int(1200));
//! sd.insert("model.weight", Value::Tensor(Tensor::zeros(DType::F32, &[4, 4])));
//! let d = ecc_checkpoint::decompose(&sd);
//! assert_eq!(d.tensor_keys().len(), 1);
//! let back = d.reassemble()?;
//! assert_eq!(back, sd);
//! # Ok::<(), ecc_checkpoint::CheckpointError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checksum;
mod decompose;
mod error;
mod packer;
pub mod serialize;
mod value;

pub use checksum::{checksum_frame, crc32, crc32_combine, verify_checksum};
pub use decompose::{decompose, Decomposition, TensorKey};
pub use error::CheckpointError;
pub use packer::{Packer, Packet, TensorExtent};
pub use value::{DType, StateDict, Tensor, Value};
