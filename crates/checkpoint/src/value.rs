use std::fmt;

/// Element type of a [`Tensor`].
///
/// Covers the dtypes that appear in Megatron-style mixed-precision
/// checkpoints: fp16/bf16 parameters, fp32 master weights and Adam
/// moments, and integer bookkeeping tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 16-bit IEEE float.
    F16,
    /// 16-bit brain float.
    BF16,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Unsigned byte (RNG states, masks).
    U8,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size(&self) -> usize {
        match self {
            DType::F16 | DType::BF16 => 2,
            DType::F32 | DType::I32 => 4,
            DType::F64 | DType::I64 => 8,
            DType::U8 => 1,
        }
    }

    /// Stable tag used by the serializer.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            DType::F16 => 0,
            DType::BF16 => 1,
            DType::F32 => 2,
            DType::F64 => 3,
            DType::I32 => 4,
            DType::I64 => 5,
            DType::U8 => 6,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => DType::F16,
            1 => DType::BF16,
            2 => DType::F32,
            3 => DType::F64,
            4 => DType::I32,
            5 => DType::I64,
            6 => DType::U8,
            _ => return None,
        })
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::U8 => "u8",
        };
        f.write_str(s)
    }
}

/// A dense tensor: dtype, shape, and contiguous little-endian bytes.
///
/// The reproduction never does math on tensor contents — checkpointing
/// treats them as opaque contiguous memory, exactly as the paper's
/// serialization-free protocol does (§III-C: "each tensor's data is
/// stored contiguously in memory").
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::{DType, Tensor};
///
/// let t = Tensor::zeros(DType::F32, &[2, 3]);
/// assert_eq!(t.numel(), 6);
/// assert_eq!(t.byte_len(), 24);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    dtype: DType,
    shape: Vec<usize>,
    data: Vec<u8>,
}

impl Tensor {
    /// A zero-filled tensor of the given dtype and shape.
    pub fn zeros(dtype: DType, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Self { dtype, shape: shape.to_vec(), data: vec![0u8; numel * dtype.size()] }
    }

    /// A tensor from raw little-endian bytes.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CheckpointError::BadTensor`] when `data.len()`
    /// does not equal `numel × dtype.size()`.
    pub fn from_bytes(
        dtype: DType,
        shape: &[usize],
        data: Vec<u8>,
    ) -> Result<Self, crate::CheckpointError> {
        let numel: usize = shape.iter().product();
        let expected = numel * dtype.size();
        if data.len() != expected {
            return Err(crate::CheckpointError::BadTensor {
                detail: format!(
                    "shape {shape:?} with dtype {dtype} needs {expected} bytes, got {}",
                    data.len()
                ),
            });
        }
        Ok(Self { dtype, shape: shape.to_vec(), data })
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Size of the contiguous data in bytes.
    pub fn byte_len(&self) -> usize {
        self.data.len()
    }

    /// The contiguous data.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the contiguous data (used by workload generators
    /// to fill synthetic parameter values).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the tensor, returning its raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }
}

/// A checkpoint value: scalar metadata, nested containers, or tensors.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A signed integer (iteration counts, versions).
    Int(i64),
    /// A floating-point scalar (loss scale, learning rate).
    Float(f64),
    /// A boolean flag.
    Bool(bool),
    /// A UTF-8 string (framework versions, parallelism descriptors).
    Str(String),
    /// Raw bytes (RNG state blobs).
    Bytes(Vec<u8>),
    /// A dense tensor.
    Tensor(Tensor),
    /// An ordered list.
    List(Vec<Value>),
    /// A nested dictionary.
    Dict(StateDict),
}

impl Value {
    /// `true` when this subtree contains at least one tensor.
    pub fn contains_tensor(&self) -> bool {
        match self {
            Value::Tensor(_) => true,
            Value::List(items) => items.iter().any(Value::contains_tensor),
            Value::Dict(d) => d.iter().any(|(_, v)| v.contains_tensor()),
            _ => false,
        }
    }

    /// Total bytes of tensor data in this subtree.
    pub fn tensor_bytes(&self) -> usize {
        match self {
            Value::Tensor(t) => t.byte_len(),
            Value::List(items) => items.iter().map(Value::tensor_bytes).sum(),
            Value::Dict(d) => d.iter().map(|(_, v)| v.tensor_bytes()).sum(),
            _ => 0,
        }
    }
}

/// An insertion-ordered string-keyed dictionary — the `state_dict`.
///
/// Order is preserved so that serialization, decomposition, and packing
/// are deterministic across runs and across nodes, which the encoded
/// checkpoint layout depends on.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::{StateDict, Value};
///
/// let mut sd = StateDict::new();
/// sd.insert("iteration", Value::Int(7));
/// assert_eq!(sd.get("iteration"), Some(&Value::Int(7)));
/// assert_eq!(sd.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateDict {
    entries: Vec<(String, Value)>,
}

impl StateDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of top-level entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces the value under `key`, returning any previous
    /// value. Insertion order is preserved; replacing keeps the original
    /// position.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to the value under `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total bytes of tensor data anywhere in the tree — the ">99.99%"
    /// component of a real checkpoint (paper §III-C).
    pub fn tensor_bytes(&self) -> usize {
        self.iter().map(|(_, v)| v.tensor_bytes()).sum()
    }

    /// Number of tensors anywhere in the tree.
    pub fn tensor_count(&self) -> usize {
        fn count(v: &Value) -> usize {
            match v {
                Value::Tensor(_) => 1,
                Value::List(items) => items.iter().map(count).sum(),
                Value::Dict(d) => d.iter().map(|(_, v)| count(v)).sum(),
                _ => 0,
            }
        }
        self.iter().map(|(_, v)| count(v)).sum()
    }
}

impl FromIterator<(String, Value)> for StateDict {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut sd = StateDict::new();
        for (k, v) in iter {
            sd.insert(k, v);
        }
        sd
    }
}

impl Extend<(String, Value)> for StateDict {
    fn extend<I: IntoIterator<Item = (String, Value)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F16.size(), 2);
        assert_eq!(DType::BF16.size(), 2);
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::F64.size(), 8);
        assert_eq!(DType::I64.size(), 8);
        assert_eq!(DType::U8.size(), 1);
    }

    #[test]
    fn dtype_tag_round_trips() {
        for d in
            [DType::F16, DType::BF16, DType::F32, DType::F64, DType::I32, DType::I64, DType::U8]
        {
            assert_eq!(DType::from_tag(d.tag()), Some(d));
        }
        assert_eq!(DType::from_tag(200), None);
    }

    #[test]
    fn tensor_shape_validation() {
        assert!(Tensor::from_bytes(DType::F32, &[2, 2], vec![0u8; 16]).is_ok());
        assert!(Tensor::from_bytes(DType::F32, &[2, 2], vec![0u8; 15]).is_err());
    }

    #[test]
    fn scalar_tensor_has_one_element() {
        let t = Tensor::zeros(DType::I64, &[]);
        assert_eq!(t.numel(), 1);
        assert_eq!(t.byte_len(), 8);
    }

    #[test]
    fn insert_preserves_order_and_replaces_in_place() {
        let mut sd = StateDict::new();
        sd.insert("a", Value::Int(1));
        sd.insert("b", Value::Int(2));
        let old = sd.insert("a", Value::Int(3));
        assert_eq!(old, Some(Value::Int(1)));
        let keys: Vec<&str> = sd.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(sd.get("a"), Some(&Value::Int(3)));
    }

    #[test]
    fn tensor_accounting_recurses() {
        let mut inner = StateDict::new();
        inner.insert("w", Value::Tensor(Tensor::zeros(DType::F32, &[8])));
        let mut sd = StateDict::new();
        sd.insert("iteration", Value::Int(0));
        sd.insert("opt", Value::Dict(inner));
        sd.insert(
            "list",
            Value::List(vec![Value::Tensor(Tensor::zeros(DType::F16, &[4])), Value::Int(9)]),
        );
        assert_eq!(sd.tensor_count(), 2);
        assert_eq!(sd.tensor_bytes(), 32 + 8);
        assert!(sd.get("opt").unwrap().contains_tensor());
        assert!(!sd.get("iteration").unwrap().contains_tensor());
    }

    #[test]
    fn from_iterator_collects() {
        let sd: StateDict =
            vec![("x".to_string(), Value::Int(1)), ("y".to_string(), Value::Bool(true))]
                .into_iter()
                .collect();
        assert_eq!(sd.len(), 2);
        assert_eq!(sd.get("y"), Some(&Value::Bool(true)));
    }
}
