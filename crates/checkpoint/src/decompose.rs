//! The serialization-free decomposition protocol (paper §III-C, Fig. 8).
//!
//! Step 1 of ECCheck's encoding protocol splits a `state_dict` into three
//! components: non-tensor key-value pairs (a dict of scalars, strings and
//! RNG blobs), tensor keys (paths + dtypes + shapes), and the raw tensor
//! data. Only the first two — a few tens of kilobytes — are ever
//! serialized and broadcast; the gigabytes of tensor data flow into the
//! erasure coder as contiguous memory, untouched.
//!
//! [`decompose`] performs the split; [`Decomposition::reassemble`]
//! inverts it bit-exactly (including dictionary insertion order).

use crate::serialize::{read_value, write_value, write_varint, Cursor};
use crate::{CheckpointError, DType, StateDict, Value};

const SKEL_LEAF: u8 = 0x10;
const SKEL_TENSOR: u8 = 0x11;
const SKEL_LIST: u8 = 0x12;
const SKEL_DICT: u8 = 0x13;

/// Path, dtype and shape of one tensor extracted from a `state_dict` —
/// an entry of the protocol's "tensor keys" list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorKey {
    path: String,
    dtype: DType,
    shape: Vec<usize>,
}

impl TensorKey {
    /// Dot/bracket path of the tensor inside the `state_dict`
    /// (e.g. `optimizer.state[0].exp_avg`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Byte length of the tensor's data.
    pub fn byte_len(&self) -> usize {
        self.shape.iter().product::<usize>() * self.dtype.size()
    }
}

/// Structure of a `state_dict` with tensor data lifted out.
#[derive(Debug, Clone, PartialEq)]
enum Skeleton {
    /// A non-tensor value kept in place.
    Leaf(Value),
    /// The `i`-th extracted tensor.
    TensorRef(usize),
    /// An ordered list of children.
    List(Vec<Skeleton>),
    /// An ordered dictionary of children.
    Dict(Vec<(String, Skeleton)>),
}

/// The three components of the serialization-free protocol.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::{decompose, DType, StateDict, Tensor, Value};
///
/// let mut sd = StateDict::new();
/// sd.insert("iteration", Value::Int(3));
/// sd.insert("w", Value::Tensor(Tensor::zeros(DType::F16, &[8])));
/// let d = decompose(&sd);
/// assert_eq!(d.tensor_keys()[0].path(), "w");
/// assert_eq!(d.tensor_bytes(), 16);
/// assert_eq!(d.reassemble()?, sd);
/// # Ok::<(), ecc_checkpoint::CheckpointError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    skeleton: Skeleton,
    keys: Vec<TensorKey>,
    data: Vec<Vec<u8>>,
}

/// Splits a `state_dict` into non-tensor structure, tensor keys, and raw
/// tensor data (DFS order, deterministic).
pub fn decompose(sd: &StateDict) -> Decomposition {
    let mut keys = Vec::new();
    let mut data = Vec::new();
    let skeleton = walk(&Value::Dict(sd.clone()), String::new(), &mut keys, &mut data);
    Decomposition { skeleton, keys, data }
}

fn walk(
    value: &Value,
    path: String,
    keys: &mut Vec<TensorKey>,
    data: &mut Vec<Vec<u8>>,
) -> Skeleton {
    match value {
        Value::Tensor(t) => {
            let idx = keys.len();
            keys.push(TensorKey { path, dtype: t.dtype(), shape: t.shape().to_vec() });
            data.push(t.bytes().to_vec());
            Skeleton::TensorRef(idx)
        }
        Value::List(items) => Skeleton::List(
            items
                .iter()
                .enumerate()
                .map(|(i, v)| walk(v, format!("{path}[{i}]"), keys, data))
                .collect(),
        ),
        Value::Dict(d) => Skeleton::Dict(
            d.iter()
                .map(|(k, v)| {
                    let child_path =
                        if path.is_empty() { k.to_string() } else { format!("{path}.{k}") };
                    (k.to_string(), walk(v, child_path, keys, data))
                })
                .collect(),
        ),
        other => Skeleton::Leaf(other.clone()),
    }
}

impl Decomposition {
    /// The extracted tensor keys, in deterministic DFS order.
    pub fn tensor_keys(&self) -> &[TensorKey] {
        &self.keys
    }

    /// The raw tensor data buffers, parallel to [`Self::tensor_keys`].
    pub fn tensor_data(&self) -> &[Vec<u8>] {
        &self.data
    }

    /// Total bytes of tensor data (the >99.99% component).
    pub fn tensor_bytes(&self) -> usize {
        self.data.iter().map(Vec::len).sum()
    }

    /// Size of the serialized header ([`Self::header_to_bytes`]): the
    /// non-tensor key-values plus tensor keys — the small broadcast
    /// payload of protocol step 2.
    pub fn header_bytes(&self) -> usize {
        self.header_to_bytes().len()
    }

    /// Replaces the tensor data buffers (e.g. with buffers decoded during
    /// recovery).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Reassembly`] when the buffer count or
    /// any buffer length disagrees with the tensor keys.
    pub fn set_tensor_data(&mut self, data: Vec<Vec<u8>>) -> Result<(), CheckpointError> {
        if data.len() != self.keys.len() {
            return Err(CheckpointError::Reassembly {
                detail: format!("expected {} tensor buffers, got {}", self.keys.len(), data.len()),
            });
        }
        for (i, (key, buf)) in self.keys.iter().zip(&data).enumerate() {
            if key.byte_len() != buf.len() {
                return Err(CheckpointError::Reassembly {
                    detail: format!(
                        "tensor {i} ({}) expects {} bytes, buffer has {}",
                        key.path(),
                        key.byte_len(),
                        buf.len()
                    ),
                });
            }
        }
        self.data = data;
        Ok(())
    }

    /// Serializes the skeleton and tensor keys (no tensor data) — what
    /// ECCheck broadcasts to all workers in protocol step 2.
    pub fn header_to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(self.keys.len() as u64, &mut out);
        for key in &self.keys {
            write_varint(key.path.len() as u64, &mut out);
            out.extend_from_slice(key.path.as_bytes());
            out.push(key.dtype.tag());
            write_varint(key.shape.len() as u64, &mut out);
            for &d in &key.shape {
                write_varint(d as u64, &mut out);
            }
        }
        write_skeleton(&self.skeleton, &mut out);
        out
    }

    /// Parses a broadcast header into a decomposition whose tensor
    /// buffers are zero-filled placeholders of the right lengths — the
    /// state of a recovering node before decoded data arrives. Follow
    /// with [`Decomposition::set_tensor_data`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on malformed headers.
    pub fn from_header(header: &[u8]) -> Result<Self, CheckpointError> {
        let mut d = Self::parse_header(header)?;
        d.data = d.keys.iter().map(|k| vec![0u8; k.byte_len()]).collect();
        Ok(d)
    }

    /// Rebuilds a decomposition from a broadcast header and tensor data
    /// buffers (the receive side of recovery).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on malformed headers or data buffers
    /// inconsistent with the keys.
    pub fn from_header_and_data(
        header: &[u8],
        data: Vec<Vec<u8>>,
    ) -> Result<Self, CheckpointError> {
        let mut d = Self::parse_header(header)?;
        d.set_tensor_data(data)?;
        Ok(d)
    }

    fn parse_header(header: &[u8]) -> Result<Self, CheckpointError> {
        let mut c = Cursor::new(header);
        let n = c.varint()? as usize;
        let mut keys = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let plen = c.varint()? as usize;
            let path = std::str::from_utf8(c.take(plen)?)
                .map_err(|_| CheckpointError::BadUtf8)?
                .to_string();
            let dtype = DType::from_tag(c.u8()?).ok_or(CheckpointError::BadTag { tag: 0xFF })?;
            let rank = c.varint()? as usize;
            let mut shape = Vec::with_capacity(rank.min(64));
            for _ in 0..rank {
                shape.push(c.varint()? as usize);
            }
            keys.push(TensorKey { path, dtype, shape });
        }
        let skeleton = read_skeleton(&mut c, keys.len())?;
        if !c.at_end() {
            return Err(CheckpointError::Reassembly {
                detail: "trailing bytes after skeleton".to_string(),
            });
        }
        Ok(Self { skeleton, keys, data: Vec::new() })
    }

    /// Rebuilds the original `state_dict`, bit-exact including key order.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Reassembly`] when a tensor buffer is
    /// missing or sized inconsistently with its key.
    pub fn reassemble(&self) -> Result<StateDict, CheckpointError> {
        match self.rebuild(&self.skeleton)? {
            Value::Dict(d) => Ok(d),
            _ => Err(CheckpointError::Reassembly {
                detail: "top-level skeleton is not a dict".to_string(),
            }),
        }
    }

    fn rebuild(&self, skel: &Skeleton) -> Result<Value, CheckpointError> {
        Ok(match skel {
            Skeleton::Leaf(v) => v.clone(),
            Skeleton::TensorRef(i) => {
                let key = self.keys.get(*i).ok_or_else(|| CheckpointError::Reassembly {
                    detail: format!("tensor ref {i} out of range"),
                })?;
                let buf = self.data.get(*i).ok_or_else(|| CheckpointError::Reassembly {
                    detail: format!("tensor data {i} missing"),
                })?;
                Value::Tensor(crate::Tensor::from_bytes(key.dtype, &key.shape, buf.clone())?)
            }
            Skeleton::List(items) => {
                Value::List(items.iter().map(|s| self.rebuild(s)).collect::<Result<_, _>>()?)
            }
            Skeleton::Dict(entries) => {
                let mut d = StateDict::new();
                for (k, s) in entries {
                    d.insert(k.clone(), self.rebuild(s)?);
                }
                Value::Dict(d)
            }
        })
    }
}

fn write_skeleton(skel: &Skeleton, out: &mut Vec<u8>) {
    match skel {
        Skeleton::Leaf(v) => {
            out.push(SKEL_LEAF);
            write_value(v, out);
        }
        Skeleton::TensorRef(i) => {
            out.push(SKEL_TENSOR);
            write_varint(*i as u64, out);
        }
        Skeleton::List(items) => {
            out.push(SKEL_LIST);
            write_varint(items.len() as u64, out);
            for item in items {
                write_skeleton(item, out);
            }
        }
        Skeleton::Dict(entries) => {
            out.push(SKEL_DICT);
            write_varint(entries.len() as u64, out);
            for (k, s) in entries {
                write_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                write_skeleton(s, out);
            }
        }
    }
}

fn read_skeleton(c: &mut Cursor<'_>, n_tensors: usize) -> Result<Skeleton, CheckpointError> {
    match c.u8()? {
        SKEL_LEAF => Ok(Skeleton::Leaf(read_value(c)?)),
        SKEL_TENSOR => {
            let i = c.varint()? as usize;
            if i >= n_tensors {
                return Err(CheckpointError::Reassembly {
                    detail: format!("tensor ref {i} out of range ({n_tensors} tensors)"),
                });
            }
            Ok(Skeleton::TensorRef(i))
        }
        SKEL_LIST => {
            let count = c.varint()? as usize;
            let mut items = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                items.push(read_skeleton(c, n_tensors)?);
            }
            Ok(Skeleton::List(items))
        }
        SKEL_DICT => {
            let count = c.varint()? as usize;
            let mut entries = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                let klen = c.varint()? as usize;
                let key = std::str::from_utf8(c.take(klen)?)
                    .map_err(|_| CheckpointError::BadUtf8)?
                    .to_string();
                entries.push((key, read_skeleton(c, n_tensors)?));
            }
            Ok(Skeleton::Dict(entries))
        }
        tag => Err(CheckpointError::BadTag { tag }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Tensor};

    fn sample_dict() -> StateDict {
        let mut opt_state = StateDict::new();
        opt_state.insert("step", Value::Int(128));
        opt_state.insert("exp_avg", Value::Tensor(Tensor::zeros(DType::F32, &[4, 4])));
        opt_state.insert("exp_avg_sq", Value::Tensor(Tensor::zeros(DType::F32, &[4, 4])));
        let mut sd = StateDict::new();
        sd.insert("iteration", Value::Int(1000));
        sd.insert("version", Value::Str("megatron-0.4".into()));
        sd.insert(
            "model",
            Value::Dict(
                vec![(
                    "weight".to_string(),
                    Value::Tensor(
                        Tensor::from_bytes(DType::F16, &[3], vec![1, 2, 3, 4, 5, 6]).unwrap(),
                    ),
                )]
                .into_iter()
                .collect(),
            ),
        );
        sd.insert("optimizer", Value::Dict(opt_state));
        sd.insert("rng", Value::Bytes(vec![9u8; 32]));
        sd.insert(
            "mixed",
            Value::List(vec![
                Value::Int(1),
                Value::Tensor(Tensor::zeros(DType::I64, &[2])),
                Value::Bool(true),
            ]),
        );
        sd
    }

    #[test]
    fn decompose_extracts_tensors_in_dfs_order() {
        let sd = sample_dict();
        let d = decompose(&sd);
        let paths: Vec<&str> = d.tensor_keys().iter().map(TensorKey::path).collect();
        assert_eq!(
            paths,
            vec!["model.weight", "optimizer.exp_avg", "optimizer.exp_avg_sq", "mixed[1]"]
        );
        assert_eq!(d.tensor_bytes(), 6 + 64 + 64 + 16);
    }

    #[test]
    fn reassemble_is_exact_inverse() {
        let sd = sample_dict();
        let d = decompose(&sd);
        assert_eq!(d.reassemble().unwrap(), sd);
    }

    #[test]
    fn header_round_trips_with_data() {
        let sd = sample_dict();
        let d = decompose(&sd);
        let header = d.header_to_bytes();
        let rebuilt =
            Decomposition::from_header_and_data(&header, d.tensor_data().to_vec()).unwrap();
        assert_eq!(rebuilt.reassemble().unwrap(), sd);
    }

    #[test]
    fn header_is_small_relative_to_tensor_data() {
        // The paper reports header components are < 0.001% for GPT2-345M;
        // at our test scale just assert the header excludes tensor bytes.
        let sd = sample_dict();
        let d = decompose(&sd);
        assert!(d.header_bytes() < 400);
        assert!(d.tensor_bytes() > 100);
    }

    #[test]
    fn set_tensor_data_validates_count_and_lengths() {
        let sd = sample_dict();
        let mut d = decompose(&sd);
        assert!(d.set_tensor_data(vec![vec![0u8; 1]]).is_err());
        let mut wrong = d.tensor_data().to_vec();
        wrong[0].push(0);
        assert!(d.set_tensor_data(wrong).is_err());
        let ok = d.tensor_data().to_vec();
        assert!(d.set_tensor_data(ok).is_ok());
    }

    #[test]
    fn replaced_data_appears_in_reassembly() {
        let mut sd = StateDict::new();
        sd.insert("w", Value::Tensor(Tensor::zeros(DType::U8, &[4])));
        let mut d = decompose(&sd);
        d.set_tensor_data(vec![vec![9, 8, 7, 6]]).unwrap();
        let back = d.reassemble().unwrap();
        match back.get("w").unwrap() {
            Value::Tensor(t) => assert_eq!(t.bytes(), &[9, 8, 7, 6]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let sd = sample_dict();
        let d = decompose(&sd);
        let header = d.header_to_bytes();
        for cut in [0usize, 1, header.len() / 2, header.len() - 1] {
            assert!(
                Decomposition::from_header_and_data(&header[..cut], d.tensor_data().to_vec())
                    .is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn empty_dict_decomposes() {
        let sd = StateDict::new();
        let d = decompose(&sd);
        assert!(d.tensor_keys().is_empty());
        assert_eq!(d.reassemble().unwrap(), sd);
    }

    #[test]
    fn tensor_only_dict_has_tiny_header() {
        let mut sd = StateDict::new();
        sd.insert("t", Value::Tensor(Tensor::zeros(DType::F32, &[1024])));
        let d = decompose(&sd);
        assert!(d.header_bytes() < 64);
        assert_eq!(d.tensor_bytes(), 4096);
    }
}
