//! Fixed-size packet packing for tensor data.
//!
//! ECCheck reserves fixed-size data and encoding buffers per worker
//! (64 MB each in the paper's settings, §V-B) and streams tensor data
//! through them: tensors of wildly varying sizes are laid head-to-tail
//! into buffers, and a buffer that fills up becomes a *data packet* that
//! enters the encode → XOR-reduce → P2P pipeline (§III-C step 3).
//!
//! Packing is strictly sequential and deterministic, so every node can
//! derive the same layout from the tensor keys alone; the final packet is
//! zero-padded. Each packet carries a CRC-32 so corruption in the
//! (simulated) fabric is detected at unpack time.

use crate::{crc32, CheckpointError};

/// One fixed-size data packet plus its integrity checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    index: usize,
    data: Vec<u8>,
    crc: u32,
}

impl Packet {
    /// Creates a packet and stamps its checksum.
    pub fn new(index: usize, data: Vec<u8>) -> Self {
        let crc = crc32(&data);
        Self { index, data, crc }
    }

    /// Position of this packet in the worker's packet sequence.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The packet payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable payload access (used by tests to model corruption; real
    /// transport never mutates packets).
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// The stored CRC-32.
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// `true` when the payload still matches the stored checksum.
    pub fn verify(&self) -> bool {
        crc32(&self.data) == self.crc
    }

    /// Consumes the packet, returning its payload.
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }
}

/// Where a contiguous piece of one tensor landed in the packet stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorExtent {
    /// Index of the tensor in the decomposition's key order.
    pub tensor: usize,
    /// Offset within the tensor where this piece starts.
    pub tensor_offset: usize,
    /// Packet the piece landed in.
    pub packet: usize,
    /// Offset within the packet.
    pub packet_offset: usize,
    /// Piece length in bytes.
    pub len: usize,
}

/// Sequential packer producing fixed-size packets.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::Packer;
///
/// let packer = Packer::new(64)?;
/// let tensors = vec![vec![1u8; 100], vec![2u8; 20]];
/// let (packets, extents) = packer.pack(&tensors);
/// assert_eq!(packets.len(), 2); // 120 bytes -> two 64-byte packets
/// let back = packer.unpack(&packets, &extents, &[100, 20])?;
/// assert_eq!(back, tensors);
/// # Ok::<(), ecc_checkpoint::CheckpointError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packer {
    packet_size: usize,
}

impl Packer {
    /// Creates a packer with the given packet size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::BadTensor`] when the size is zero or
    /// not 8-byte aligned (erasure coding operates on 64-bit words).
    pub fn new(packet_size: usize) -> Result<Self, CheckpointError> {
        if packet_size == 0 || !packet_size.is_multiple_of(8) {
            return Err(CheckpointError::BadTensor {
                detail: format!("packet size {packet_size} must be a positive multiple of 8"),
            });
        }
        Ok(Self { packet_size })
    }

    /// The configured packet size.
    pub fn packet_size(&self) -> usize {
        self.packet_size
    }

    /// Number of packets needed for `total_bytes` of tensor data.
    pub fn packet_count(&self, total_bytes: usize) -> usize {
        total_bytes.div_ceil(self.packet_size).max(1)
    }

    /// Packs tensor buffers head-to-tail into fixed-size packets,
    /// zero-padding the last one. Returns the packets and the extent map.
    pub fn pack(&self, tensors: &[Vec<u8>]) -> (Vec<Packet>, Vec<TensorExtent>) {
        let total: usize = tensors.iter().map(Vec::len).sum();
        let n_packets = self.packet_count(total);
        let mut raw: Vec<Vec<u8>> =
            (0..n_packets).map(|_| Vec::with_capacity(self.packet_size)).collect();
        let mut extents = Vec::new();
        let mut packet = 0usize;
        for (t, tensor) in tensors.iter().enumerate() {
            let mut offset = 0usize;
            while offset < tensor.len() {
                if raw[packet].len() == self.packet_size {
                    packet += 1;
                }
                let room = self.packet_size - raw[packet].len();
                let take = room.min(tensor.len() - offset);
                extents.push(TensorExtent {
                    tensor: t,
                    tensor_offset: offset,
                    packet,
                    packet_offset: raw[packet].len(),
                    len: take,
                });
                raw[packet].extend_from_slice(&tensor[offset..offset + take]);
                offset += take;
            }
        }
        for buf in &mut raw {
            buf.resize(self.packet_size, 0);
        }
        let packets = raw.into_iter().enumerate().map(|(i, d)| Packet::new(i, d)).collect();
        (packets, extents)
    }

    /// The extent map [`Packer::pack`] would produce for tensors of the
    /// given lengths, without touching any data. Every node can compute
    /// this from the broadcast tensor keys alone.
    pub fn extents_for(&self, lens: &[usize]) -> Vec<TensorExtent> {
        let mut extents = Vec::new();
        let mut packet = 0usize;
        let mut fill = 0usize;
        for (t, &len) in lens.iter().enumerate() {
            let mut offset = 0usize;
            while offset < len {
                if fill == self.packet_size {
                    packet += 1;
                    fill = 0;
                }
                let take = (self.packet_size - fill).min(len - offset);
                extents.push(TensorExtent {
                    tensor: t,
                    tensor_offset: offset,
                    packet,
                    packet_offset: fill,
                    len: take,
                });
                fill += take;
                offset += take;
            }
        }
        extents
    }

    /// Rebuilds tensor buffers from packets using the extent map.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ChecksumMismatch`] for a corrupt packet
    /// and [`CheckpointError::ExtentOutOfRange`] when an extent points
    /// outside the packets or tensors.
    pub fn unpack(
        &self,
        packets: &[Packet],
        extents: &[TensorExtent],
        tensor_lens: &[usize],
    ) -> Result<Vec<Vec<u8>>, CheckpointError> {
        for p in packets {
            if !p.verify() {
                return Err(CheckpointError::ChecksumMismatch { packet: p.index() });
            }
        }
        let mut tensors: Vec<Vec<u8>> = tensor_lens.iter().map(|&len| vec![0u8; len]).collect();
        for e in extents {
            let packet =
                packets.get(e.packet).ok_or_else(|| CheckpointError::ExtentOutOfRange {
                    detail: format!("packet {} of {}", e.packet, packets.len()),
                })?;
            let src =
                packet.data().get(e.packet_offset..e.packet_offset + e.len).ok_or_else(|| {
                    CheckpointError::ExtentOutOfRange {
                        detail: format!(
                            "bytes {}..{} of packet {}",
                            e.packet_offset,
                            e.packet_offset + e.len,
                            e.packet
                        ),
                    }
                })?;
            let tensor =
                tensors.get_mut(e.tensor).ok_or_else(|| CheckpointError::ExtentOutOfRange {
                    detail: format!("tensor {} of {}", e.tensor, tensor_lens.len()),
                })?;
            let dst =
                tensor.get_mut(e.tensor_offset..e.tensor_offset + e.len).ok_or_else(|| {
                    CheckpointError::ExtentOutOfRange {
                        detail: format!(
                            "bytes {}..{} of tensor {}",
                            e.tensor_offset,
                            e.tensor_offset + e.len,
                            e.tensor
                        ),
                    }
                })?;
            dst.copy_from_slice(src);
        }
        Ok(tensors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_round_trips() {
        let packer = Packer::new(64).unwrap();
        let tensors = vec![
            (0u8..100).collect::<Vec<u8>>(),
            vec![7u8; 3],
            Vec::new(),
            (0u8..200).rev().collect(),
        ];
        let lens: Vec<usize> = tensors.iter().map(Vec::len).collect();
        let (packets, extents) = packer.pack(&tensors);
        assert!(packets.iter().all(|p| p.data().len() == 64));
        let back = packer.unpack(&packets, &extents, &lens).unwrap();
        assert_eq!(back, tensors);
    }

    #[test]
    fn tensor_larger_than_packet_spans_packets() {
        let packer = Packer::new(16).unwrap();
        let tensors = vec![(0u8..40).collect::<Vec<u8>>()];
        let (packets, extents) = packer.pack(&tensors);
        assert_eq!(packets.len(), 3);
        assert_eq!(extents.len(), 3);
        assert_eq!(packer.unpack(&packets, &extents, &[40]).unwrap(), tensors);
    }

    #[test]
    fn extents_for_matches_pack() {
        let packer = Packer::new(24).unwrap();
        let tensors = vec![vec![1u8; 10], vec![2u8; 50], vec![3u8; 7]];
        let lens: Vec<usize> = tensors.iter().map(Vec::len).collect();
        let (_, from_pack) = packer.pack(&tensors);
        assert_eq!(packer.extents_for(&lens), from_pack);
    }

    #[test]
    fn empty_input_yields_one_padded_packet() {
        let packer = Packer::new(32).unwrap();
        let (packets, extents) = packer.pack(&[]);
        assert_eq!(packets.len(), 1);
        assert!(extents.is_empty());
        assert!(packets[0].data().iter().all(|&b| b == 0));
    }

    #[test]
    fn corruption_is_detected() {
        let packer = Packer::new(16).unwrap();
        let tensors = vec![vec![5u8; 30]];
        let (mut packets, extents) = packer.pack(&tensors);
        packets[1].data_mut()[0] ^= 0xFF;
        assert!(matches!(
            packer.unpack(&packets, &extents, &[30]),
            Err(CheckpointError::ChecksumMismatch { packet: 1 })
        ));
    }

    #[test]
    fn bad_packet_size_is_rejected() {
        assert!(Packer::new(0).is_err());
        assert!(Packer::new(12).is_err());
        assert!(Packer::new(8).is_ok());
    }

    #[test]
    fn extent_out_of_range_is_reported() {
        let packer = Packer::new(16).unwrap();
        let tensors = vec![vec![1u8; 8]];
        let (packets, mut extents) = packer.pack(&tensors);
        extents[0].packet = 5;
        assert!(matches!(
            packer.unpack(&packets, &extents, &[8]),
            Err(CheckpointError::ExtentOutOfRange { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_pack_round_trips(
            lens in proptest::collection::vec(0usize..200, 0..8),
            packet_size_words in 1usize..16,
        ) {
            let packer = Packer::new(packet_size_words * 8).unwrap();
            let tensors: Vec<Vec<u8>> = lens
                .iter()
                .enumerate()
                .map(|(i, &len)| (0..len).map(|j| (i * 31 + j) as u8).collect())
                .collect();
            let (packets, extents) = packer.pack(&tensors);
            prop_assert!(packets.iter().all(|p| p.data().len() == packer.packet_size()));
            let back = packer.unpack(&packets, &extents, &lens).unwrap();
            prop_assert_eq!(back, tensors);
        }

        #[test]
        fn prop_packet_count_is_minimal(
            lens in proptest::collection::vec(0usize..200, 1..8),
        ) {
            let packer = Packer::new(64).unwrap();
            let tensors: Vec<Vec<u8>> = lens.iter().map(|&l| vec![0u8; l]).collect();
            let total: usize = lens.iter().sum();
            let (packets, _) = packer.pack(&tensors);
            prop_assert_eq!(packets.len(), total.div_ceil(64).max(1));
        }
    }
}
