use std::error::Error;
use std::fmt;

/// Errors produced by checkpoint serialization, decomposition and packing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The byte stream ended while more data was expected.
    UnexpectedEof,
    /// An unknown type tag was found while deserializing.
    BadTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// A string was not valid UTF-8.
    BadUtf8,
    /// Tensor metadata is inconsistent (shape/dtype vs. byte length).
    BadTensor {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// Reassembly failed because components are inconsistent.
    Reassembly {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A packet failed its CRC-32 integrity check.
    ChecksumMismatch {
        /// Index of the corrupt packet.
        packet: usize,
    },
    /// Unpacking referenced data outside the packed region.
    ExtentOutOfRange {
        /// Human-readable description of the bad extent.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::UnexpectedEof => write!(f, "unexpected end of checkpoint stream"),
            CheckpointError::BadTag { tag } => write!(f, "unknown value tag {tag:#04x}"),
            CheckpointError::BadUtf8 => write!(f, "invalid UTF-8 in checkpoint string"),
            CheckpointError::BadTensor { detail } => write!(f, "bad tensor: {detail}"),
            CheckpointError::Reassembly { detail } => {
                write!(f, "cannot reassemble state_dict: {detail}")
            }
            CheckpointError::ChecksumMismatch { packet } => {
                write!(f, "packet {packet} failed its integrity check")
            }
            CheckpointError::ExtentOutOfRange { detail } => {
                write!(f, "extent out of range: {detail}")
            }
        }
    }
}

impl Error for CheckpointError {}
