/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte slice.
///
/// Used to verify packet integrity across the simulated fabric. Table is
/// generated on first use; the implementation is self-contained so the
/// crate carries no extra dependency.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::crc32;
///
/// // The classic test vector.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = vec![0xA5u8; 1024];
        let base = crc32(&data);
        for pos in [0usize, 511, 1023] {
            let mut corrupt = data.clone();
            corrupt[pos] ^= 0x01;
            assert_ne!(crc32(&corrupt), base, "flip at {pos} undetected");
        }
    }
}
