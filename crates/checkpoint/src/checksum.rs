/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte slice.
///
/// Used to verify packet integrity across the simulated fabric. Table is
/// generated on first use; the implementation is self-contained so the
/// crate carries no extra dependency.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::crc32;
///
/// // The classic test vector.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// Combines the CRCs of two adjacent byte ranges: given `crc_a =
/// crc32(A)` and `crc_b = crc32(B)`, returns `crc32(A ‖ B)` without
/// touching the bytes again.
///
/// CRC-32 is linear over GF(2), so appending `len_b` bytes to `A` acts on
/// `crc_a` as a fixed 32×32 bit-matrix raised to the `len_b`-th power
/// (computed here by repeated squaring, the zlib `crc32_combine`
/// construction), after which `crc_b` XORs in. This lets the pipelined
/// save executor checksum chunk pieces in parallel as they stream through
/// the stages and stitch the final frame in O(log len) per piece, instead
/// of one serial pass over every assembled chunk.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::{crc32, crc32_combine};
///
/// let (a, b) = (b"12345".as_slice(), b"6789".as_slice());
/// assert_eq!(crc32_combine(crc32(a), crc32(b), b.len() as u64), crc32(b"123456789"));
/// ```
pub fn crc32_combine(crc_a: u32, crc_b: u32, len_b: u64) -> u32 {
    if len_b == 0 {
        return crc_a;
    }
    // odd = the operator advancing a CRC register by one zero *bit*:
    // row 0 is the reflected polynomial, the rest shift.
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320;
    for (n, row) in odd.iter_mut().enumerate().skip(1) {
        *row = 1u32 << (n - 1);
    }
    let mut even = [0u32; 32];
    gf2_matrix_square(&mut even, &odd); // two zero bits
    gf2_matrix_square(&mut odd, &even); // four zero bits
                                        // Apply the zero-byte operator len_b times by binary decomposition,
                                        // ping-ponging between the squared matrices (8, 16, 32, ... bits).
    let mut crc = crc_a;
    let mut len = len_b;
    loop {
        gf2_matrix_square(&mut even, &odd);
        if len & 1 != 0 {
            crc = gf2_matrix_times(&even, crc);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
        gf2_matrix_square(&mut odd, &even);
        if len & 1 != 0 {
            crc = gf2_matrix_times(&odd, crc);
        }
        len >>= 1;
        if len == 0 {
            break;
        }
    }
    crc ^ crc_b
}

/// Applies a GF(2) 32×32 matrix (rows = images of unit vectors) to a
/// 32-bit vector.
fn gf2_matrix_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0u32;
    let mut i = 0usize;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// `square = mat · mat` over GF(2).
fn gf2_matrix_square(square: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        square[n] = gf2_matrix_times(mat, mat[n]);
    }
}

/// Encodes the CRC-32 of `data` as the 4-byte little-endian frame the
/// checkpoint store persists next to each blob.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::{checksum_frame, verify_checksum};
///
/// let frame = checksum_frame(b"chunk bytes");
/// assert!(verify_checksum(b"chunk bytes", &frame));
/// assert!(!verify_checksum(b"chunk byteZ", &frame));
/// ```
pub fn checksum_frame(data: &[u8]) -> Vec<u8> {
    crc32(data).to_le_bytes().to_vec()
}

/// Verifies `data` against a stored [`checksum_frame`].
///
/// Returns `false` for a malformed frame (wrong length), so a corrupted
/// or truncated checksum blob itself reads as an integrity failure
/// rather than a panic.
pub fn verify_checksum(data: &[u8], frame: &[u8]) -> bool {
    let Ok(stored): Result<[u8; 4], _> = frame.try_into() else {
        return false;
    };
    crc32(data) == u32::from_le_bytes(stored)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = vec![0xA5u8; 1024];
        let base = crc32(&data);
        for pos in [0usize, 511, 1023] {
            let mut corrupt = data.clone();
            corrupt[pos] ^= 0x01;
            assert_ne!(crc32(&corrupt), base, "flip at {pos} undetected");
        }
    }

    #[test]
    fn combine_matches_one_shot_crc() {
        let data: Vec<u8> =
            (0..4099u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let whole = crc32(&data);
        // Every split point of a few awkward sizes, including empty halves.
        for len in [0usize, 1, 7, 63, 64, 257, 4099] {
            let slice = &data[..len];
            let reference = crc32(slice);
            for cut in [0, len / 3, len / 2, len.saturating_sub(1), len] {
                let (a, b) = slice.split_at(cut);
                assert_eq!(
                    crc32_combine(crc32(a), crc32(b), b.len() as u64),
                    reference,
                    "len={len} cut={cut}"
                );
            }
        }
        // Many-piece stitching, as the pipeline does per chunk.
        let mut acc = crc32(&[]);
        for piece in data.chunks(97) {
            acc = crc32_combine(acc, crc32(piece), piece.len() as u64);
        }
        assert_eq!(acc, whole);
    }

    #[test]
    fn frame_round_trips_and_rejects_flips() {
        let data = vec![0x3Cu8; 257];
        let frame = checksum_frame(&data);
        assert_eq!(frame.len(), 4);
        assert!(verify_checksum(&data, &frame));
        let mut corrupt = data.clone();
        corrupt[128] ^= 0x80;
        assert!(!verify_checksum(&corrupt, &frame));
        // A damaged frame is an integrity failure, not a panic.
        assert!(!verify_checksum(&data, &frame[..3]));
        assert!(!verify_checksum(&data, &[]));
        let mut bad_frame = frame.clone();
        bad_frame[0] ^= 0x01;
        assert!(!verify_checksum(&data, &bad_frame));
    }
}
