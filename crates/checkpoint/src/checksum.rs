/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte slice.
///
/// Used to verify packet integrity across the simulated fabric. Table is
/// generated on first use; the implementation is self-contained so the
/// crate carries no extra dependency.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::crc32;
///
/// // The classic test vector.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// Encodes the CRC-32 of `data` as the 4-byte little-endian frame the
/// checkpoint store persists next to each blob.
///
/// # Examples
///
/// ```
/// use ecc_checkpoint::{checksum_frame, verify_checksum};
///
/// let frame = checksum_frame(b"chunk bytes");
/// assert!(verify_checksum(b"chunk bytes", &frame));
/// assert!(!verify_checksum(b"chunk byteZ", &frame));
/// ```
pub fn checksum_frame(data: &[u8]) -> Vec<u8> {
    crc32(data).to_le_bytes().to_vec()
}

/// Verifies `data` against a stored [`checksum_frame`].
///
/// Returns `false` for a malformed frame (wrong length), so a corrupted
/// or truncated checksum blob itself reads as an integrity failure
/// rather than a panic.
pub fn verify_checksum(data: &[u8], frame: &[u8]) -> bool {
    let Ok(stored): Result<[u8; 4], _> = frame.try_into() else {
        return false;
    };
    crc32(data) == u32::from_le_bytes(stored)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = vec![0xA5u8; 1024];
        let base = crc32(&data);
        for pos in [0usize, 511, 1023] {
            let mut corrupt = data.clone();
            corrupt[pos] ^= 0x01;
            assert_ne!(crc32(&corrupt), base, "flip at {pos} undetected");
        }
    }

    #[test]
    fn frame_round_trips_and_rejects_flips() {
        let data = vec![0x3Cu8; 257];
        let frame = checksum_frame(&data);
        assert_eq!(frame.len(), 4);
        assert!(verify_checksum(&data, &frame));
        let mut corrupt = data.clone();
        corrupt[128] ^= 0x80;
        assert!(!verify_checksum(&corrupt, &frame));
        // A damaged frame is an integrity failure, not a panic.
        assert!(!verify_checksum(&data, &frame[..3]));
        assert!(!verify_checksum(&data, &[]));
        let mut bad_frame = frame.clone();
        bad_frame[0] ^= 0x01;
        assert!(!verify_checksum(&data, &bad_frame));
    }
}
