use std::error::Error;
use std::fmt;

/// Errors produced by the ECCheck engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum EcCheckError {
    /// Invalid configuration or cluster/config mismatch.
    Config {
        /// Human-readable description.
        detail: String,
    },
    /// Too many nodes failed: fewer than `k` chunks survive and no remote
    /// copy was requested (the catastrophic case of paper §III-A).
    Unrecoverable {
        /// Surviving chunk count.
        survivors: usize,
        /// Chunks needed.
        needed: usize,
    },
    /// No checkpoint has been saved yet.
    NoCheckpoint,
    /// An underlying erasure-coding failure.
    Erasure(ecc_erasure::ErasureError),
    /// An underlying checkpoint (de)serialization failure.
    Checkpoint(ecc_checkpoint::CheckpointError),
    /// An underlying cluster data-plane failure.
    Cluster(ecc_cluster::ClusterError),
}

impl fmt::Display for EcCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcCheckError::Config { detail } => write!(f, "configuration error: {detail}"),
            EcCheckError::Unrecoverable { survivors, needed } => {
                write!(f, "unrecoverable failure: only {survivors} chunks survive, {needed} needed")
            }
            EcCheckError::NoCheckpoint => write!(f, "no checkpoint has been saved"),
            EcCheckError::Erasure(e) => write!(f, "erasure coding: {e}"),
            EcCheckError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            EcCheckError::Cluster(e) => write!(f, "cluster: {e}"),
        }
    }
}

impl Error for EcCheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EcCheckError::Erasure(e) => Some(e),
            EcCheckError::Checkpoint(e) => Some(e),
            EcCheckError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ecc_erasure::ErasureError> for EcCheckError {
    fn from(e: ecc_erasure::ErasureError) -> Self {
        EcCheckError::Erasure(e)
    }
}

impl From<ecc_checkpoint::CheckpointError> for EcCheckError {
    fn from(e: ecc_checkpoint::CheckpointError) -> Self {
        EcCheckError::Checkpoint(e)
    }
}

impl From<ecc_cluster::ClusterError> for EcCheckError {
    fn from(e: ecc_cluster::ClusterError) -> Self {
        EcCheckError::Cluster(e)
    }
}
