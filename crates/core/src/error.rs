use std::error::Error;
use std::fmt;

/// Errors produced by the ECCheck engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum EcCheckError {
    /// Invalid configuration or cluster/config mismatch.
    Config {
        /// Human-readable description.
        detail: String,
    },
    /// Too many nodes failed: fewer than `k` intact chunks survive (a
    /// corrupted chunk counts as lost) and no usable remote copy exists
    /// (the catastrophic case of paper §III-A), or a worker's header is
    /// gone from every survivor.
    Unrecoverable {
        /// Surviving intact chunk count.
        survivors: usize,
        /// Chunks needed.
        needed: usize,
        /// Workers whose `state_dict` cannot be reconstructed: members
        /// of data groups with no surviving (and undecodable) chunk,
        /// or workers whose header vanished from every survivor. Empty
        /// when the loss could not be attributed to specific workers.
        lost_workers: Vec<usize>,
    },
    /// No checkpoint has been saved yet.
    NoCheckpoint,
    /// A stored chunk failed its checksum during an in-place patch
    /// ([`crate::EcCheck::update_worker`]). Run [`crate::EcCheck::load`]
    /// first: it treats the corruption as an erasure and repairs the
    /// chunk from the surviving ones.
    CorruptChunk {
        /// Node holding the corrupt chunk.
        node: usize,
    },
    /// A save-executor stage thread died mid-save (e.g. a worker
    /// panicked). The save is abandoned cleanly: nothing is committed,
    /// and the previous checkpoint remains loadable.
    StageFailed {
        /// Which stage died and why.
        detail: String,
    },
    /// The engine's placement epoch lags the epoch committed on the
    /// data plane (a membership controller rebalanced behind this
    /// engine's back), or [`crate::EcCheck::apply_placement`] was
    /// offered a non-monotone epoch. A stale engine must not move
    /// chunks under an outdated assignment; refresh the placement via
    /// `apply_placement` (or re-adopt the checkpoint) and retry.
    StaleEpoch {
        /// The epoch this engine believes is current.
        engine: u64,
        /// The newer (or for `apply_placement`, the rejected) epoch.
        committed: u64,
    },
    /// The requested checkpoint version is not in the retention index:
    /// it was garbage-collected by the retention policy, or was never
    /// sealed by this engine. Retained versions are listed by
    /// [`crate::EcCheck::retained_versions`].
    VersionGone {
        /// The version that was asked for.
        version: u64,
    },
    /// An underlying erasure-coding failure.
    Erasure(ecc_erasure::ErasureError),
    /// An underlying checkpoint (de)serialization failure.
    Checkpoint(ecc_checkpoint::CheckpointError),
    /// An underlying cluster data-plane failure.
    Cluster(ecc_cluster::ClusterError),
}

impl fmt::Display for EcCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcCheckError::Config { detail } => write!(f, "configuration error: {detail}"),
            EcCheckError::Unrecoverable { survivors, needed, lost_workers } => {
                write!(
                    f,
                    "unrecoverable failure: only {survivors} intact chunks survive, {needed} needed"
                )?;
                if !lost_workers.is_empty() {
                    write!(f, "; lost worker states: {lost_workers:?}")?;
                }
                Ok(())
            }
            EcCheckError::NoCheckpoint => write!(f, "no checkpoint has been saved"),
            EcCheckError::CorruptChunk { node } => {
                write!(f, "chunk on node {node} failed its checksum; run load() to repair it")
            }
            EcCheckError::StageFailed { detail } => {
                write!(f, "save executor stage failed: {detail}")
            }
            EcCheckError::StaleEpoch { engine, committed } => {
                write!(
                    f,
                    "stale placement epoch: engine at {engine}, plane committed {committed}; \
                     refresh the placement before moving chunks"
                )
            }
            EcCheckError::VersionGone { version } => {
                write!(f, "checkpoint version {version} is not retained (collected or never saved)")
            }
            EcCheckError::Erasure(e) => write!(f, "erasure coding: {e}"),
            EcCheckError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            EcCheckError::Cluster(e) => write!(f, "cluster: {e}"),
        }
    }
}

impl Error for EcCheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EcCheckError::Erasure(e) => Some(e),
            EcCheckError::Checkpoint(e) => Some(e),
            EcCheckError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ecc_erasure::ErasureError> for EcCheckError {
    fn from(e: ecc_erasure::ErasureError) -> Self {
        EcCheckError::Erasure(e)
    }
}

impl From<ecc_checkpoint::CheckpointError> for EcCheckError {
    fn from(e: ecc_checkpoint::CheckpointError) -> Self {
        EcCheckError::Checkpoint(e)
    }
}

impl From<ecc_cluster::ClusterError> for EcCheckError {
    fn from(e: ecc_cluster::ClusterError) -> Self {
        EcCheckError::Cluster(e)
    }
}
