//! Optimal data/parity node selection (paper §IV-B-1).
//!
//! The decision of which nodes become data nodes determines how many
//! checkpoint packets must move during the P2P phase: a data node already
//! holds the packets of its own workers, so the best assignment maximises
//! the overlap between each logical data group (the workers whose packets
//! form one chunk) and one physical node. The paper formulates this as a
//! maximum-overlap interval pairing solved with a sweep line over the
//! interval endpoints; both `origin_group` and `data_group` are sorted,
//! disjoint intervals over the worker axis, so a single coordinated pass
//! computes every non-zero overlap in `O((n + k) log(n + k))` (the log
//! from the final greedy ordering).

use std::ops::Range;

use ecc_cluster::NodeId;

use crate::EcCheckError;

/// The chosen role of every node.
///
/// # Examples
///
/// ```
/// use eccheck::select_data_parity_nodes;
///
/// // Paper Fig. 9: 3 nodes × 2 workers, k = 2 -> node 1 is the parity
/// // node (choosing node 2 would cost one extra packet transfer).
/// let origin = vec![0..2, 2..4, 4..6];
/// let p = select_data_parity_nodes(&origin, 2)?;
/// assert_eq!(p.data_nodes(), &[0, 2]);
/// assert_eq!(p.parity_nodes(), &[1]);
/// # Ok::<(), eccheck::EcCheckError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    data_nodes: Vec<NodeId>,
    parity_nodes: Vec<NodeId>,
    group_size: usize,
}

impl Placement {
    /// Builds a placement from an explicit chunk→node assignment, for
    /// callers that remap roles outside the sweep line — a membership
    /// controller rebinding chunks after churn, or tests constructing
    /// adversarial layouts. [`select_data_parity_nodes`] remains the
    /// paper's optimal assignment; this constructor only checks the
    /// structural invariants that the rest of the engine relies on.
    ///
    /// # Errors
    ///
    /// Returns [`EcCheckError::Config`] when `data_nodes` is empty,
    /// `group_size` is zero, or any node appears twice across the two
    /// role lists (a co-located pair of chunks would halve the fault
    /// budget, violating the m-fault guarantee).
    pub fn new(
        data_nodes: Vec<NodeId>,
        parity_nodes: Vec<NodeId>,
        group_size: usize,
    ) -> Result<Self, EcCheckError> {
        if data_nodes.is_empty() {
            return Err(EcCheckError::Config { detail: "placement needs k >= 1".into() });
        }
        if group_size == 0 {
            return Err(EcCheckError::Config { detail: "placement group_size must be > 0".into() });
        }
        let mut seen = std::collections::BTreeSet::new();
        for &node in data_nodes.iter().chain(&parity_nodes) {
            if !seen.insert(node) {
                return Err(EcCheckError::Config {
                    detail: format!("node {node} would hold two chunks of one parity group"),
                });
            }
        }
        Ok(Self { data_nodes, parity_nodes, group_size })
    }

    /// `data_nodes()[j]` stores data chunk `j`.
    pub fn data_nodes(&self) -> &[NodeId] {
        &self.data_nodes
    }

    /// `parity_nodes()[i]` stores parity chunk `i`.
    pub fn parity_nodes(&self) -> &[NodeId] {
        &self.parity_nodes
    }

    /// Number of data chunks (`k`).
    pub fn k(&self) -> usize {
        self.data_nodes.len()
    }

    /// Number of parity chunks (`m`).
    pub fn m(&self) -> usize {
        self.parity_nodes.len()
    }

    /// Workers per data group (`W / k`).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// The data group (worker interval) whose packets form chunk `j`.
    pub fn data_group(&self, j: usize) -> Range<usize> {
        j * self.group_size..(j + 1) * self.group_size
    }

    /// The chunk stored by `node`: `Ok(j)` for data chunk `j`,
    /// `Err(i)` for parity chunk `i`... expressed as an enum-free pair:
    /// returns `(is_data, index)`.
    pub fn role_of(&self, node: NodeId) -> Option<(bool, usize)> {
        if let Some(j) = self.data_nodes.iter().position(|&n| n == node) {
            return Some((true, j));
        }
        self.parity_nodes.iter().position(|&n| n == node).map(|i| (false, i))
    }
}

/// Runs the sweep-line maximum-overlap pairing.
///
/// `origin_group[i]` is the contiguous worker range hosted by node `i`
/// (physical placement); the `k` logical data groups split the whole
/// worker range evenly. Each data group is paired with the node of
/// maximum overlap; ties and conflicts resolve greedily by descending
/// overlap (then ascending indices, for determinism). Unpaired nodes
/// become parity nodes in ascending order.
///
/// # Errors
///
/// Returns [`EcCheckError::Config`] when `k` is zero or exceeds the node
/// count, when the worker count does not divide by `k`, or when the
/// origin intervals are not contiguous from zero.
pub fn select_data_parity_nodes(
    origin_group: &[Range<usize>],
    k: usize,
) -> Result<Placement, EcCheckError> {
    let n = origin_group.len();
    if k == 0 || k > n {
        return Err(EcCheckError::Config { detail: format!("k = {k} must be within 1..={n}") });
    }
    let mut cursor = 0usize;
    for (i, r) in origin_group.iter().enumerate() {
        if r.start != cursor || r.end <= r.start {
            return Err(EcCheckError::Config {
                detail: format!("origin_group[{i}] = {r:?} is not contiguous from {cursor}"),
            });
        }
        cursor = r.end;
    }
    let world = cursor;
    if !world.is_multiple_of(k) {
        return Err(EcCheckError::Config {
            detail: format!("{world} workers do not divide into {k} data groups"),
        });
    }
    let group_size = world / k;

    // Coordinated sweep over both sorted interval lists: advance whichever
    // interval ends first, recording every non-zero (chunk, node) overlap.
    let mut overlaps: Vec<(usize, usize, usize)> = Vec::new(); // (overlap, chunk, node)
    let mut node = 0usize;
    let mut chunk = 0usize;
    while node < n && chunk < k {
        let o = &origin_group[node];
        let d = chunk * group_size..(chunk + 1) * group_size;
        let lo = o.start.max(d.start);
        let hi = o.end.min(d.end);
        if lo < hi {
            overlaps.push((hi - lo, chunk, node));
        }
        if o.end <= d.end {
            node += 1;
        } else {
            chunk += 1;
        }
        if o.end == d.end {
            chunk += 1;
        }
    }

    // Greedy resolution: largest overlaps first; ties broken by indices
    // so the outcome is deterministic and matches the paper's examples.
    overlaps.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut data_nodes: Vec<Option<NodeId>> = vec![None; k];
    let mut node_taken = vec![false; n];
    for &(_, chunk, node) in &overlaps {
        if data_nodes[chunk].is_none() && !node_taken[node] {
            data_nodes[chunk] = Some(node);
            node_taken[node] = true;
        }
    }
    // Any chunk still unassigned (its overlapping nodes all taken) gets
    // the lowest free node.
    for slot in data_nodes.iter_mut() {
        if slot.is_none() {
            let free = node_taken.iter().position(|&t| !t).expect("k <= n guarantees a free node");
            node_taken[free] = true;
            *slot = Some(free);
        }
    }
    let data_nodes: Vec<NodeId> =
        data_nodes.into_iter().map(|s| s.expect("all chunks assigned")).collect();
    let parity_nodes: Vec<NodeId> = (0..n).filter(|&i| !data_nodes.contains(&i)).collect();
    Ok(Placement { data_nodes, parity_nodes, group_size })
}

/// Number of data packets that must cross the network in the P2P phase:
/// each data node needs every packet of its data group, minus those its
/// own workers already hold (paper Fig. 9's accounting).
pub fn data_p2p_packets(origin_group: &[Range<usize>], placement: &Placement) -> usize {
    (0..placement.k())
        .map(|j| {
            let group = placement.data_group(j);
            let node_range = &origin_group[placement.data_nodes()[j]];
            let lo = group.start.max(node_range.start);
            let hi = group.end.min(node_range.end);
            let overlap = hi.saturating_sub(lo);
            group.len() - overlap
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniform_origin(nodes: usize, g: usize) -> Vec<Range<usize>> {
        (0..nodes).map(|i| i * g..(i + 1) * g).collect()
    }

    #[test]
    fn explicit_constructor_enforces_invariants() {
        let p = Placement::new(vec![3, 0], vec![1, 2], 2).unwrap();
        assert_eq!(p.k(), 2);
        assert_eq!(p.m(), 2);
        assert_eq!(p.role_of(3), Some((true, 0)));
        assert_eq!(p.role_of(2), Some((false, 1)));
        assert_eq!(p.role_of(9), None);
        assert!(Placement::new(vec![], vec![1], 2).is_err());
        assert!(Placement::new(vec![0], vec![1], 0).is_err());
        // Co-location of two chunks on one node is refused.
        assert!(Placement::new(vec![0, 1], vec![1], 2).is_err());
        assert!(Placement::new(vec![0, 0], vec![1], 2).is_err());
    }

    #[test]
    fn explicit_constructor_matches_sweep_line() {
        let origin = uniform_origin(4, 2);
        let swept = select_data_parity_nodes(&origin, 2).unwrap();
        let built = Placement::new(
            swept.data_nodes().to_vec(),
            swept.parity_nodes().to_vec(),
            swept.group_size(),
        )
        .unwrap();
        assert_eq!(built, swept);
    }

    #[test]
    fn fig9_example_picks_the_cheap_parity_node() {
        // 3 nodes × 2 workers, k = 2: node 1 as parity costs 6 traffic
        // units, node 2 would cost 7 (paper Fig. 9).
        let origin = uniform_origin(3, 2);
        let p = select_data_parity_nodes(&origin, 2).unwrap();
        assert_eq!(p.data_nodes(), &[0, 2]);
        assert_eq!(p.parity_nodes(), &[1]);
        // Two data packets cross the network (worker 2's to node 0 and
        // worker 3's to node 2) — together with the one parity-packet
        // move this gives the paper's 3 P2P operations for Fig. 9a.
        assert_eq!(data_p2p_packets(&origin, &p), 2);
    }

    #[test]
    fn paper_testbed_alternates_data_and_parity() {
        // 4 nodes × 4 workers, k = 2 (Fig. 6): nodes 0 and 2 are data
        // nodes, 1 and 3 parity.
        let origin = uniform_origin(4, 4);
        let p = select_data_parity_nodes(&origin, 2).unwrap();
        assert_eq!(p.data_nodes(), &[0, 2]);
        assert_eq!(p.parity_nodes(), &[1, 3]);
        assert_eq!(p.group_size(), 8);
        assert_eq!(p.data_group(1), 8..16);
    }

    #[test]
    fn k_equals_n_uses_every_node() {
        let origin = uniform_origin(4, 2);
        let p = select_data_parity_nodes(&origin, 4).unwrap();
        assert_eq!(p.data_nodes(), &[0, 1, 2, 3]);
        assert!(p.parity_nodes().is_empty());
        assert_eq!(data_p2p_packets(&origin, &p), 0);
    }

    #[test]
    fn perfect_alignment_needs_no_data_p2p() {
        // Group size == node size: every data node holds its chunk already.
        let origin = uniform_origin(6, 3);
        let p = select_data_parity_nodes(&origin, 6).unwrap();
        assert_eq!(data_p2p_packets(&origin, &p), 0);
    }

    #[test]
    fn role_lookup() {
        let origin = uniform_origin(4, 4);
        let p = select_data_parity_nodes(&origin, 2).unwrap();
        assert_eq!(p.role_of(0), Some((true, 0)));
        assert_eq!(p.role_of(1), Some((false, 0)));
        assert_eq!(p.role_of(2), Some((true, 1)));
        assert_eq!(p.role_of(3), Some((false, 1)));
        assert_eq!(p.role_of(9), None);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let origin = uniform_origin(3, 2);
        assert!(select_data_parity_nodes(&origin, 0).is_err());
        assert!(select_data_parity_nodes(&origin, 4).is_err());
        // 6 workers, k = 4 does not divide.
        assert!(select_data_parity_nodes(&origin, 4).is_err());
        // Non-contiguous origin.
        assert!(select_data_parity_nodes(&[0..2, 3..5], 1).is_err());
        // Empty node interval.
        assert!(select_data_parity_nodes(&[0..0, 0..2], 1).is_err());
    }

    /// Brute force: try every k-subset of nodes as data nodes (in every
    /// chunk order) and find the minimum P2P packet count.
    fn brute_force_min_p2p(origin: &[Range<usize>], k: usize) -> usize {
        fn perms(items: &[usize]) -> Vec<Vec<usize>> {
            if items.len() <= 1 {
                return vec![items.to_vec()];
            }
            let mut out = Vec::new();
            for (i, &x) in items.iter().enumerate() {
                let mut rest = items.to_vec();
                rest.remove(i);
                for mut p in perms(&rest) {
                    p.insert(0, x);
                    out.push(p);
                }
            }
            out
        }
        let n = origin.len();
        let world: usize = origin.iter().map(|r| r.len()).sum();
        let group = world / k;
        let all: Vec<usize> = (0..n).collect();
        let mut best = usize::MAX;
        for perm in perms(&all) {
            let assignment = &perm[..k];
            let cost: usize = (0..k)
                .map(|j| {
                    let d = j * group..(j + 1) * group;
                    let o = &origin[assignment[j]];
                    let overlap = o.end.min(d.end).saturating_sub(o.start.max(d.start));
                    group - overlap
                })
                .sum();
            best = best.min(cost);
        }
        best
    }

    #[test]
    fn sweep_line_matches_brute_force_on_small_clusters() {
        for (nodes, g, k) in [(3, 2, 2), (4, 4, 2), (4, 2, 2), (5, 2, 2), (6, 2, 3), (4, 3, 3)] {
            let origin = uniform_origin(nodes, g);
            if (nodes * g) % k != 0 {
                continue;
            }
            let p = select_data_parity_nodes(&origin, k).unwrap();
            let got = data_p2p_packets(&origin, &p);
            let best = brute_force_min_p2p(&origin, k);
            assert_eq!(got, best, "nodes={nodes} g={g} k={k}");
        }
    }

    proptest! {
        #[test]
        fn prop_placement_is_a_partition(nodes in 1usize..10, g in 1usize..5, k in 1usize..10) {
            prop_assume!(k <= nodes);
            prop_assume!((nodes * g) % k == 0);
            let origin = uniform_origin(nodes, g);
            let p = select_data_parity_nodes(&origin, k).unwrap();
            let mut all: Vec<usize> =
                p.data_nodes().iter().chain(p.parity_nodes()).copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..nodes).collect::<Vec<_>>());
        }

        #[test]
        fn prop_data_p2p_never_exceeds_world(nodes in 2usize..8, g in 1usize..5) {
            let origin = uniform_origin(nodes, g);
            let world = nodes * g;
            for k in 1..=nodes {
                if world % k != 0 { continue; }
                let p = select_data_parity_nodes(&origin, k).unwrap();
                prop_assert!(data_p2p_packets(&origin, &p) <= world);
            }
        }
    }
}
