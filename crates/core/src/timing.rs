//! Deterministic timing models for ECCheck checkpointing and recovery.
//!
//! The correctness plane ([`crate::EcCheck`]) moves real bytes; this
//! module predicts *durations* for paper-scale configurations, following
//! the paper's own decomposition of a save (§III-A, Fig. 5/11):
//!
//! 1. **Step 1** — DtoH offload of GPU state, the only training-blocking
//!    part.
//! 2. **Step 2** — broadcast of the tiny serialized headers.
//! 3. **Step 3** — the asynchronous encode → XOR-reduce → P2P pipeline
//!    over fixed-size buffers, with the two communication stages
//!    restricted to profiled network idle slots when a training profile
//!    is supplied (§IV-B-3, §IV-C).
//!
//! Recovery timing models the two workflows of §III-B.

use ecc_cluster::{ClusterSpec, FailureScenario};
use ecc_dnn::IterationProfile;
use ecc_sim::{pipeline_completion, SimDuration, SimTime, StageConstraint};

use crate::{select_data_parity_nodes, EcCheckConfig, RecoveryWorkflow};

/// Calibration constants for the timing model.
///
/// Defaults are representative of the paper's testbed-class hardware;
/// the criterion micro-benches in `ecc-bench` measure this machine's
/// actual XOR-coding rate if recalibration is wanted.
#[derive(Debug, Clone, Copy)]
pub struct TimingConstants {
    /// Sustained XOR-coding throughput per CPU thread, bytes/second.
    pub coding_rate_per_thread: f64,
    /// Serialized header size per worker in bytes (non-tensor KVs +
    /// tensor keys; ~104 KB for GPT2-345M per §III-C).
    pub header_bytes: u64,
}

impl Default for TimingConstants {
    fn default() -> Self {
        Self { coding_rate_per_thread: 3.0e9, header_bytes: 128 << 10 }
    }
}

/// Predicted timing of one `eccheck.save`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveTiming {
    /// Step 1: DtoH offload (blocks training).
    pub step1_offload: SimDuration,
    /// Step 2: header broadcast (blocks training, negligible).
    pub step2_broadcast: SimDuration,
    /// Step 3: the asynchronous coding/communication pipeline.
    pub step3_pipeline: SimDuration,
    /// End-to-end save duration (`save` call to completion).
    pub total: SimDuration,
}

impl SaveTiming {
    /// The training stall caused by this save (steps 1 + 2).
    pub fn stall(&self) -> SimDuration {
        self.step1_offload + self.step2_broadcast
    }
}

/// Predicted timing of one `eccheck.load`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryTiming {
    /// Which workflow the scenario triggers.
    pub workflow: RecoveryWorkflow,
    /// Time to move checkpoint data back to where it is needed.
    pub transfer: SimDuration,
    /// Decode / re-encode compute time.
    pub compute: SimDuration,
    /// End-to-end recovery duration (`load` call to training resumption).
    pub total: SimDuration,
}

/// Predicts the duration of one ECCheck save.
///
/// `shard_bytes` is the per-worker checkpoint payload `s`; `profile`
/// (when given and `config.use_idle_slots()`) confines the XOR-reduction
/// and P2P stages to the training network's idle windows.
///
/// # Panics
///
/// Panics when the configuration does not fit the cluster (these models
/// are driven by the bench harness with pre-validated configs).
pub fn save_timing(
    spec: &ClusterSpec,
    config: &EcCheckConfig,
    shard_bytes: u64,
    profile: Option<&IterationProfile>,
    constants: &TimingConstants,
) -> SaveTiming {
    config.validate(spec.nodes(), spec.world_size()).expect("valid configuration");
    let world = spec.world_size() as u64;
    let g = spec.gpus_per_node() as u64;
    let (k, m) = (config.k() as u64, config.m() as u64);
    let ps = config.packet_size() as u64;
    let packets = shard_bytes.div_ceil(ps).max(1);

    // Step 1: every worker offloads its shard over its own PCIe engine,
    // in parallel across workers.
    let step1 = spec.dtoh().transfer_time(shard_bytes);

    // Step 2: headers from every worker broadcast to all nodes. The
    // volume is worker-count × header size over each NIC.
    let header_volume = constants.header_bytes * world;
    let step2 = spec.nic().transfer_time(header_volume);

    // Step 3: per-worker pipeline over `packets` buffers. The per-packet
    // stage durations follow the traffic accounting of §V-F: over a full
    // checkpoint each worker encodes m packets' worth per data packet,
    // ships m·(k-1)/k packets of XOR-reduction traffic and m/k + data
    // packets of P2P — total m·s per worker. Node NICs are shared by g
    // workers.
    let threads = config.coding_threads() as f64;
    let encode_rate = constants.coding_rate_per_thread * threads;
    let t_encode = SimDuration::from_secs_f64((ps * m) as f64 / encode_rate);
    let per_worker_nic = spec.nic().shared(g as usize);
    // Split one checkpoint's total traffic (m·s·W, §V-F) evenly over
    // workers and packets. XOR reduction and P2P both cross the same
    // NIC, so although they are separate pipeline threads in the
    // implementation (§IV-C), their *bandwidth* serialises: model them
    // as one communication stage of m packets' worth per data packet.
    let xor_share = (m * (k - 1)) as f64 / k as f64;
    let p2p_share = m as f64 - xor_share;
    let t_comm = per_worker_nic.transfer_time((ps as f64 * (xor_share + p2p_share)).ceil() as u64);

    let durations = vec![vec![t_encode; packets as usize], vec![t_comm; packets as usize]];
    let idle = profile.filter(|_| config.use_idle_slots()).map(IterationProfile::windows);
    let comm_constraint = match idle {
        Some(w) => StageConstraint::IdleSlots(w),
        None => StageConstraint::Free,
    };
    let constraints = vec![StageConstraint::Free, comm_constraint];
    let start = SimTime::ZERO + step1 + step2;
    let done = pipeline_completion(&durations, &constraints, start);
    let end = done[1][packets as usize - 1];
    let step3 = end - start;
    SaveTiming {
        step1_offload: step1,
        step2_broadcast: step2,
        step3_pipeline: step3,
        total: step1 + step2 + step3,
    }
}

/// Predicts the duration of one ECCheck recovery for a failure scenario.
///
/// # Panics
///
/// Panics when the configuration does not fit the cluster or more than
/// `m` nodes fail (the harness models the recoverable cases; the
/// catastrophic path is remote-storage-bound and modelled by baselines).
pub fn recovery_timing(
    spec: &ClusterSpec,
    config: &EcCheckConfig,
    shard_bytes: u64,
    scenario: &FailureScenario,
    constants: &TimingConstants,
) -> RecoveryTiming {
    config.validate(spec.nodes(), spec.world_size()).expect("valid configuration");
    assert!(scenario.count() <= config.m(), "recoverable scenarios fail at most m nodes");
    let placement = select_data_parity_nodes(&spec.origin_group(), config.k())
        .expect("validated configuration");
    let g = spec.gpus_per_node() as u64;
    let k = config.k() as u64;
    let world = spec.world_size() as u64;
    let chunk_bytes = world / k * shard_bytes; // one chunk = W/k packets of s
    let threads = config.coding_threads() as f64;
    let coding_rate = constants.coding_rate_per_thread * threads;

    let data_lost = placement.data_nodes().iter().any(|&n| scenario.is_failed(n));
    if !data_lost {
        // Workflow A: data nodes resend each replaced node's worker
        // packets (g·s per replaced node, receivers in parallel, but a
        // single data node may serve several receivers — serialize on
        // the busiest sender) and lost parity chunks are re-encoded and
        // shipped in the background.
        let receivers = scenario.count() as u64;
        let resend_bytes_per_receiver = g * shard_bytes;
        // Each receiver is served by the data node holding its packets;
        // a data node serving several receivers serializes on its NIC.
        let senders = k.min(receivers.max(1));
        let sender_load = resend_bytes_per_receiver * receivers.div_ceil(senders);
        let transfer = spec.nic().transfer_time(sender_load);
        // Lost parity is re-encoded in the background after training
        // resumes; report it as compute but not on the resume path.
        let reencode = SimDuration::from_secs_f64((chunk_bytes * k) as f64 / coding_rate);
        RecoveryTiming {
            workflow: RecoveryWorkflow::Resend,
            transfer,
            compute: reencode,
            total: transfer,
        }
    } else {
        // Workflow B: survivors ship chunks to the decoders (k chunks
        // cross the network in parallel, bounded per receiver), decode
        // runs at coding rate over k survivor chunks, then each node
        // regains its packets.
        let gather = spec.nic().transfer_time(chunk_bytes);
        let decode = SimDuration::from_secs_f64((chunk_bytes * k) as f64 / coding_rate);
        let redistribute = spec.nic().transfer_time(g * shard_bytes * scenario.count() as u64);
        RecoveryTiming {
            workflow: RecoveryWorkflow::Decode,
            transfer: gather + redistribute,
            compute: decode,
            total: gather + decode + redistribute,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_dnn::{GpuSpec, ModelConfig, ParallelismSpec, TrainingTimeModel};

    fn paper_setup() -> (ClusterSpec, EcCheckConfig, TimingConstants) {
        (ClusterSpec::paper_testbed(), EcCheckConfig::paper_defaults(), TimingConstants::default())
    }

    fn shard(model: &ModelConfig) -> u64 {
        let par = ParallelismSpec::new(4, 4, 1).unwrap();
        model.shard_bytes(&par)
    }

    #[test]
    fn save_total_grows_with_model_size() {
        let (spec, cfg, consts) = paper_setup();
        let small =
            save_timing(&spec, &cfg, shard(&ModelConfig::gpt2(1600, 32, 48)), None, &consts);
        let large =
            save_timing(&spec, &cfg, shard(&ModelConfig::gpt2(5120, 40, 64)), None, &consts);
        assert!(large.total > small.total);
        assert!(large.stall() > small.stall());
    }

    #[test]
    fn stall_is_a_small_fraction_of_total() {
        // Fig. 11: step 1 blocks briefly; step 3 dominates but is async.
        let (spec, cfg, consts) = paper_setup();
        let t = save_timing(&spec, &cfg, shard(&ModelConfig::gpt2(2560, 40, 64)), None, &consts);
        assert!(t.step3_pipeline > t.stall());
        assert!(t.step2_broadcast < t.step1_offload);
    }

    #[test]
    fn pipeline_beats_sequential_stages() {
        let (spec, cfg, consts) = paper_setup();
        let s = shard(&ModelConfig::gpt2(2560, 40, 64));
        let t = save_timing(&spec, &cfg, s, None, &consts);
        // A non-pipelined step 3 would be the sum of all three stages'
        // serial totals; the pipeline must be strictly better than that
        // for multi-packet payloads.
        let packets = s.div_ceil(cfg.packet_size() as u64);
        assert!(packets > 3, "need a multi-buffer payload");
        // Reconstruct the per-packet stage durations from the model's
        // own parameters: an unpipelined step 3 pays encode + comm per
        // packet serially; the pipeline overlaps encode under comm.
        let g = spec.gpus_per_node();
        let m = cfg.m() as u64;
        let enc = (cfg.packet_size() as u64 * m) as f64
            / (consts.coding_rate_per_thread * cfg.coding_threads() as f64);
        let comm = spec.nic().shared(g).transfer_time(cfg.packet_size() as u64 * m).as_secs_f64();
        let serial_total = (enc + comm) * packets as f64;
        let pipelined = t.step3_pipeline.as_secs_f64();
        assert!(
            pipelined < serial_total * 0.99,
            "pipeline ({pipelined:.3}s) should beat serial ({serial_total:.3}s)"
        );
    }

    #[test]
    fn idle_slot_scheduling_defers_communication() {
        let (spec, cfg, consts) = paper_setup();
        let model = ModelConfig::gpt2(2560, 40, 64);
        let par = ParallelismSpec::new(4, 4, 1).unwrap();
        let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), spec.nic()).unwrap();
        let profile = tm.profile(200);
        let s = shard(&model);
        let free = save_timing(&spec, &cfg, s, None, &consts);
        let gated = save_timing(&spec, &cfg, s, Some(&profile), &consts);
        assert!(gated.total >= free.total, "idle gating can only delay completion");
        // But the stall (blocking part) is identical: deferral only
        // affects the asynchronous stage.
        assert_eq!(gated.stall(), free.stall());
    }

    #[test]
    fn per_worker_cost_is_scale_invariant() {
        // §V-F: communication per device is m·s — so with fixed shard
        // size, save time stays flat as the cluster grows (Fig. 14's
        // flat ECCheck curve).
        let consts = TimingConstants::default();
        let s = 500 << 20; // 500 MB per worker
        let small_spec = ClusterSpec::v100_scalability(4, 1);
        let big_spec = ClusterSpec::v100_scalability(4, 8);
        let cfg = EcCheckConfig::paper_defaults();
        let t_small = save_timing(&small_spec, &cfg, s, None, &consts);
        let t_big = save_timing(&big_spec, &cfg, s, None, &consts);
        // NIC sharing among g workers is the only growth term; totals
        // stay within one order of magnitude and the blocking stall is
        // identical.
        assert_eq!(t_small.step1_offload, t_big.step1_offload);
        let ratio = t_big.total.as_secs_f64() / t_small.total.as_secs_f64();
        assert!(ratio < 8.5, "per-worker time should not blow up: ratio {ratio}");
    }

    #[test]
    fn recovery_resend_is_faster_than_decode() {
        let (spec, cfg, consts) = paper_setup();
        let s = shard(&ModelConfig::gpt2(2560, 40, 64));
        let a = recovery_timing(&spec, &cfg, s, &FailureScenario::fig13a(), &consts);
        let b = recovery_timing(&spec, &cfg, s, &FailureScenario::fig13b(), &consts);
        assert_eq!(a.workflow, RecoveryWorkflow::Resend);
        assert_eq!(b.workflow, RecoveryWorkflow::Decode);
        assert!(a.total < b.total, "resend {:?} should beat decode {:?}", a.total, b.total);
    }

    #[test]
    fn recovery_is_much_faster_than_remote_reload() {
        // The paper's 13.9× headline: in-memory recovery vs reading the
        // whole checkpoint back over 5 Gbps.
        let (spec, cfg, consts) = paper_setup();
        let model = ModelConfig::gpt2(2560, 40, 64);
        let s = shard(&model);
        let b = recovery_timing(&spec, &cfg, s, &FailureScenario::fig13b(), &consts);
        let remote_reload = spec.remote().transfer_time(model.checkpoint_bytes());
        let speedup = remote_reload.as_secs_f64() / b.total.as_secs_f64();
        assert!(speedup > 4.0, "expected a large speedup, got {speedup:.1}x");
    }

    #[test]
    #[should_panic(expected = "at most m nodes")]
    fn too_many_failures_panic() {
        let (spec, cfg, consts) = paper_setup();
        let scenario = FailureScenario::new(vec![0, 1, 2]);
        let _ = recovery_timing(&spec, &cfg, 1 << 20, &scenario, &consts);
    }
}
