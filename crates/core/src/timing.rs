//! Deterministic timing models for ECCheck checkpointing and recovery.
//!
//! The correctness plane ([`crate::EcCheck`]) moves real bytes; this
//! module predicts *durations* for paper-scale configurations, following
//! the paper's own decomposition of a save (§III-A, Fig. 5/11):
//!
//! 1. **Step 1** — DtoH offload of GPU state, the only training-blocking
//!    part.
//! 2. **Step 2** — broadcast of the tiny serialized headers.
//! 3. **Step 3** — the asynchronous encode → XOR-reduce → P2P pipeline
//!    over fixed-size buffers, with the two communication stages
//!    restricted to profiled network idle slots when a training profile
//!    is supplied (§IV-B-3, §IV-C).
//!
//! Recovery timing models the two workflows of §III-B.

use ecc_cluster::{ClusterSpec, FailureScenario};
use ecc_dnn::IterationProfile;
use ecc_sim::{pipeline_completion, trace_pipeline, SimDuration, SimTime, StageConstraint};
use ecc_trace::{Tracer, TrackId, DRIVER_PID};

use crate::{select_data_parity_nodes, EcCheckConfig, RecoveryWorkflow};

/// Calibration constants for the timing model.
///
/// Defaults are representative of the paper's testbed-class hardware;
/// the criterion micro-benches in `ecc-bench` measure this machine's
/// actual XOR-coding rate if recalibration is wanted.
#[derive(Debug, Clone, Copy)]
pub struct TimingConstants {
    /// Sustained XOR-coding throughput per CPU thread, bytes/second.
    pub coding_rate_per_thread: f64,
    /// Serialized header size per worker in bytes (non-tensor KVs +
    /// tensor keys; ~104 KB for GPT2-345M per §III-C).
    pub header_bytes: u64,
}

impl Default for TimingConstants {
    fn default() -> Self {
        Self { coding_rate_per_thread: 3.0e9, header_bytes: 128 << 10 }
    }
}

/// Predicted timing of one `eccheck.save`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveTiming {
    /// Step 1: DtoH offload (blocks training).
    pub step1_offload: SimDuration,
    /// Step 2: header broadcast (blocks training, negligible).
    pub step2_broadcast: SimDuration,
    /// Step 3: the asynchronous coding/communication pipeline.
    pub step3_pipeline: SimDuration,
    /// End-to-end save duration (`save` call to completion).
    pub total: SimDuration,
}

impl SaveTiming {
    /// The training stall caused by this save (steps 1 + 2).
    pub fn stall(&self) -> SimDuration {
        self.step1_offload + self.step2_broadcast
    }
}

/// Predicted timing of one `eccheck.load`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryTiming {
    /// Which workflow the scenario triggers.
    pub workflow: RecoveryWorkflow,
    /// Time to move checkpoint data back to where it is needed.
    pub transfer: SimDuration,
    /// Decode / re-encode compute time.
    pub compute: SimDuration,
    /// End-to-end recovery duration (`load` call to training resumption).
    pub total: SimDuration,
}

/// Predicts the duration of one ECCheck save.
///
/// `shard_bytes` is the per-worker checkpoint payload `s`; `profile`
/// (when given and `config.use_idle_slots()`) confines the XOR-reduction
/// and P2P stages to the training network's idle windows.
///
/// # Panics
///
/// Panics when the configuration does not fit the cluster (these models
/// are driven by the bench harness with pre-validated configs).
pub fn save_timing(
    spec: &ClusterSpec,
    config: &EcCheckConfig,
    shard_bytes: u64,
    profile: Option<&IterationProfile>,
    constants: &TimingConstants,
) -> SaveTiming {
    save_plan(spec, config, shard_bytes, profile, constants).timing
}

/// A solved save model: the headline numbers plus the per-packet stage
/// timeline they were derived from, so the trace renderer can draw the
/// exact pipeline the prediction used.
struct SavePlan {
    timing: SaveTiming,
    /// Per-packet service times: `[encode, comm]`.
    durations: Vec<Vec<SimDuration>>,
    /// When step 3 begins (after the blocking steps 1 + 2).
    start: SimTime,
    /// Per-packet completion instants from [`pipeline_completion`].
    done: Vec<Vec<SimTime>>,
}

fn save_plan(
    spec: &ClusterSpec,
    config: &EcCheckConfig,
    shard_bytes: u64,
    profile: Option<&IterationProfile>,
    constants: &TimingConstants,
) -> SavePlan {
    config.validate(spec.nodes(), spec.world_size()).expect("valid configuration");
    let world = spec.world_size() as u64;
    let g = spec.gpus_per_node() as u64;
    let (k, m) = (config.k() as u64, config.m() as u64);
    let ps = config.packet_size() as u64;
    let packets = shard_bytes.div_ceil(ps).max(1);

    // Step 1: every worker offloads its shard over its own PCIe engine,
    // in parallel across workers.
    let step1 = spec.dtoh().transfer_time(shard_bytes);

    // Step 2: headers from every worker broadcast to all nodes. The
    // volume is worker-count × header size over each NIC.
    let header_volume = constants.header_bytes * world;
    let step2 = spec.nic().transfer_time(header_volume);

    // Step 3: per-worker pipeline over `packets` buffers. The per-packet
    // stage durations follow the traffic accounting of §V-F: over a full
    // checkpoint each worker encodes m packets' worth per data packet,
    // ships m·(k-1)/k packets of XOR-reduction traffic and m/k + data
    // packets of P2P — total m·s per worker. Node NICs are shared by g
    // workers.
    let threads = config.coding_threads() as f64;
    let encode_rate = constants.coding_rate_per_thread * threads;
    let t_encode = SimDuration::from_secs_f64((ps * m) as f64 / encode_rate);
    let per_worker_nic = spec.nic().shared(g as usize);
    // Split one checkpoint's total traffic (m·s·W, §V-F) evenly over
    // workers and packets. XOR reduction and P2P both cross the same
    // NIC, so although they are separate pipeline threads in the
    // implementation (§IV-C), their *bandwidth* serialises: model them
    // as one communication stage of m packets' worth per data packet.
    let xor_share = (m * (k - 1)) as f64 / k as f64;
    let p2p_share = m as f64 - xor_share;
    let t_comm = per_worker_nic.transfer_time((ps as f64 * (xor_share + p2p_share)).ceil() as u64);

    let durations = vec![vec![t_encode; packets as usize], vec![t_comm; packets as usize]];
    let idle = profile.filter(|_| config.use_idle_slots()).map(IterationProfile::windows);
    let comm_constraint = match idle {
        Some(w) => StageConstraint::IdleSlots(w),
        None => StageConstraint::Free,
    };
    let constraints = vec![StageConstraint::Free, comm_constraint];
    let start = SimTime::ZERO + step1 + step2;
    let done = pipeline_completion(&durations, &constraints, start);
    let end = done[1][packets as usize - 1];
    let step3 = end - start;
    let timing = SaveTiming {
        step1_offload: step1,
        step2_broadcast: step2,
        step3_pipeline: step3,
        total: step1 + step2 + step3,
    };
    SavePlan { timing, durations, start, done }
}

/// Predicts the duration of one ECCheck recovery for a failure scenario.
///
/// # Panics
///
/// Panics when the configuration does not fit the cluster or more than
/// `m` nodes fail (the harness models the recoverable cases; the
/// catastrophic path is remote-storage-bound and modelled by baselines).
pub fn recovery_timing(
    spec: &ClusterSpec,
    config: &EcCheckConfig,
    shard_bytes: u64,
    scenario: &FailureScenario,
    constants: &TimingConstants,
) -> RecoveryTiming {
    config.validate(spec.nodes(), spec.world_size()).expect("valid configuration");
    assert!(scenario.count() <= config.m(), "recoverable scenarios fail at most m nodes");
    let placement = select_data_parity_nodes(&spec.origin_group(), config.k())
        .expect("validated configuration");
    let g = spec.gpus_per_node() as u64;
    let k = config.k() as u64;
    let world = spec.world_size() as u64;
    let chunk_bytes = world / k * shard_bytes; // one chunk = W/k packets of s
    let threads = config.coding_threads() as f64;
    let coding_rate = constants.coding_rate_per_thread * threads;

    let data_lost = placement.data_nodes().iter().any(|&n| scenario.is_failed(n));
    if !data_lost {
        // Workflow A: data nodes resend each replaced node's worker
        // packets (g·s per replaced node, receivers in parallel, but a
        // single data node may serve several receivers — serialize on
        // the busiest sender) and lost parity chunks are re-encoded and
        // shipped in the background.
        let receivers = scenario.count() as u64;
        let resend_bytes_per_receiver = g * shard_bytes;
        // Each receiver is served by the data node holding its packets;
        // a data node serving several receivers serializes on its NIC.
        let senders = k.min(receivers.max(1));
        let sender_load = resend_bytes_per_receiver * receivers.div_ceil(senders);
        let transfer = spec.nic().transfer_time(sender_load);
        // Lost parity is re-encoded in the background after training
        // resumes; report it as compute but not on the resume path.
        let reencode = SimDuration::from_secs_f64((chunk_bytes * k) as f64 / coding_rate);
        RecoveryTiming {
            workflow: RecoveryWorkflow::Resend,
            transfer,
            compute: reencode,
            total: transfer,
        }
    } else {
        // Workflow B: survivors ship chunks to the decoders (k chunks
        // cross the network in parallel, bounded per receiver), decode
        // runs at coding rate over k survivor chunks, then each node
        // regains its packets.
        let gather = spec.nic().transfer_time(chunk_bytes);
        let decode = SimDuration::from_secs_f64((chunk_bytes * k) as f64 / coding_rate);
        let redistribute = spec.nic().transfer_time(g * shard_bytes * scenario.count() as u64);
        RecoveryTiming {
            workflow: RecoveryWorkflow::Decode,
            transfer: gather + redistribute,
            compute: decode,
            total: gather + decode + redistribute,
        }
    }
}

fn node_nic(tracer: &Tracer, node: usize) -> TrackId {
    tracer.track(node as u64, &format!("node{node}"), "nic")
}

/// Like [`save_timing`], but also renders the predicted timeline into
/// `tracer` with explicit simulated timestamps (one process per node):
///
/// - `save.offload` / `save.headers` — the blocking steps 1–2 on every
///   node;
/// - `pkt<i>` spans on per-data-node `encode`/`xfer` tracks — the
///   step-3 pipeline, with a `pkt` hand-off arrow per buffer;
/// - `nic.burst` — when checkpoint bytes actually cross each data
///   node's NIC (split across training idle gaps when gated), with a
///   `p2p` arrow from the final burst into every parity node's
///   `p2p.recv` window;
/// - `train.comm` — the profiled training-busy windows the gated
///   stages must dodge, on the driver process.
pub fn trace_save_timing(
    tracer: &Tracer,
    spec: &ClusterSpec,
    config: &EcCheckConfig,
    shard_bytes: u64,
    profile: Option<&IterationProfile>,
    constants: &TimingConstants,
) -> SaveTiming {
    let plan = save_plan(spec, config, shard_bytes, profile, constants);
    let placement = select_data_parity_nodes(&spec.origin_group(), config.k())
        .expect("validated configuration");
    let t0 = SimTime::ZERO;
    let step1_end = t0 + plan.timing.step1_offload;
    let start = plan.start;
    let pipeline_end = *plan.done.last().and_then(|s| s.last()).expect("at least one packet");
    let idle = profile.filter(|_| config.use_idle_slots()).map(IterationProfile::windows);

    for node in 0..spec.nodes() {
        let gpu = tracer.track(node as u64, &format!("node{node}"), "gpu");
        tracer.begin_at(gpu, "save.offload", format!("{shard_bytes} B DtoH"), t0.as_nanos());
        tracer.end_at(gpu, step1_end.as_nanos());
        let nic = node_nic(tracer, node);
        tracer.begin_at(
            nic,
            "save.headers",
            format!("{} B broadcast", constants.header_bytes),
            step1_end.as_nanos(),
        );
        tracer.end_at(nic, start.as_nanos());
    }

    if let Some(w) = idle {
        let train = tracer.track(DRIVER_PID, "driver", "train.comm");
        w.trace_occupancy(tracer, train, "train.comm", t0, pipeline_end);
    }

    // The NIC carries one checkpoint's worth of communication per data
    // node; when gated, the bytes cross the wire in idle-gap bursts.
    let total_comm: SimDuration = plan.durations[1].iter().copied().sum();
    let bursts = match idle {
        Some(w) => w.split_segments(start, total_comm),
        None => vec![(start, start + total_comm)],
    };
    let end = pipeline_end.max(bursts.last().map_or(start, |&(_, e)| e));

    // Parity receive windows open first so the arrows from every data
    // node's final burst land inside them.
    let mut recv_tracks = Vec::new();
    for &p in placement.parity_nodes() {
        let nic = node_nic(tracer, p);
        tracer.begin_at(
            nic,
            "p2p.recv",
            format!("from {} data nodes", placement.data_nodes().len()),
            start.as_nanos(),
        );
        recv_tracks.push(nic);
    }
    for &d in placement.data_nodes() {
        let enc = tracer.track(d as u64, &format!("node{d}"), "encode");
        let xfer = tracer.track(d as u64, &format!("node{d}"), "xfer");
        trace_pipeline(tracer, &[enc, xfer], "pkt", &plan.durations, &plan.done, start);
        let nic = node_nic(tracer, d);
        for (i, &(s, e)) in bursts.iter().enumerate() {
            tracer.begin_at(nic, "nic.burst", format!("segment {i}"), s.as_nanos());
            if i + 1 == bursts.len() {
                for &recv in &recv_tracks {
                    let flow = tracer.flow_start_at(nic, "p2p", e.as_nanos());
                    tracer.flow_end_at(recv, flow, "p2p", e.as_nanos());
                }
            }
            tracer.end_at(nic, e.as_nanos());
        }
    }
    for &recv in &recv_tracks {
        tracer.end_at(recv, end.as_nanos());
    }
    plan.timing
}

/// Like [`recovery_timing`], but also renders the predicted recovery
/// timeline into `tracer`: per-node `recover.*` spans with `p2p.resend`
/// or `p2p.chunk` / `p2p.restore` arrows tracing where the bytes move
/// in each workflow of §III-B.
pub fn trace_recovery_timing(
    tracer: &Tracer,
    spec: &ClusterSpec,
    config: &EcCheckConfig,
    shard_bytes: u64,
    scenario: &FailureScenario,
    constants: &TimingConstants,
) -> RecoveryTiming {
    let timing = recovery_timing(spec, config, shard_bytes, scenario, constants);
    let placement = select_data_parity_nodes(&spec.origin_group(), config.k())
        .expect("validated configuration");
    let t0 = SimTime::ZERO;
    if timing.workflow == RecoveryWorkflow::Resend {
        let xfer_end = t0 + timing.transfer;
        // Replaced nodes' receive windows open first for the arrows.
        let mut recvs = Vec::new();
        for &r in scenario.failed() {
            let nic = node_nic(tracer, r);
            tracer.begin_at(nic, "recover.recv", "replaced node", t0.as_nanos());
            recvs.push(nic);
        }
        for (i, &r) in scenario.failed().iter().enumerate() {
            let sender = placement.data_nodes()[i % placement.data_nodes().len()];
            let nic = node_nic(tracer, sender);
            tracer.begin_at(nic, "recover.resend", format!("to node{r}"), t0.as_nanos());
            let flow = tracer.flow_start_at(nic, "p2p.resend", xfer_end.as_nanos());
            tracer.flow_end_at(recvs[i], flow, "p2p.resend", xfer_end.as_nanos());
            tracer.end_at(nic, xfer_end.as_nanos());
        }
        for &recv in &recvs {
            tracer.end_at(recv, xfer_end.as_nanos());
        }
        // Lost parity is re-encoded in the background once training has
        // resumed — off the critical path, hence after the transfer.
        for &d in placement.data_nodes() {
            let enc = tracer.track(d as u64, &format!("node{d}"), "encode");
            tracer.begin_at(
                enc,
                "recover.reencode",
                "background parity rebuild",
                xfer_end.as_nanos(),
            );
            tracer.end_at(enc, (xfer_end + timing.compute).as_nanos());
        }
    } else {
        let g = spec.gpus_per_node() as u64;
        let redistribute = spec.nic().transfer_time(g * shard_bytes * scenario.count() as u64);
        let gather = timing.transfer - redistribute;
        let gather_end = t0 + gather;
        let decode_end = gather_end + timing.compute;
        let total_end = t0 + timing.total;
        // Render the decode on the lowest surviving node.
        let decoder = (0..spec.nodes()).find(|&n| !scenario.is_failed(n)).expect("a survivor");
        let dec_nic = node_nic(tracer, decoder);
        let survivors: Vec<usize> = placement
            .data_nodes()
            .iter()
            .chain(placement.parity_nodes())
            .copied()
            .filter(|&n| !scenario.is_failed(n) && n != decoder)
            .collect();
        tracer.begin_at(
            dec_nic,
            "recover.gather",
            format!("{} survivor chunks", survivors.len() + 1),
            t0.as_nanos(),
        );
        for &s in &survivors {
            let nic = node_nic(tracer, s);
            tracer.begin_at(nic, "recover.send_chunk", "survivor chunk", t0.as_nanos());
            let flow = tracer.flow_start_at(nic, "p2p.chunk", gather_end.as_nanos());
            tracer.flow_end_at(dec_nic, flow, "p2p.chunk", gather_end.as_nanos());
            tracer.end_at(nic, gather_end.as_nanos());
        }
        tracer.end_at(dec_nic, gather_end.as_nanos());
        let cpu = tracer.track(decoder as u64, &format!("node{decoder}"), "encode");
        tracer.begin_at(
            cpu,
            "recover.decode",
            format!("{:?}", timing.workflow),
            gather_end.as_nanos(),
        );
        tracer.end_at(cpu, decode_end.as_nanos());
        // Rebuilt packets flow back to the replacement nodes.
        let mut recvs = Vec::new();
        for &r in scenario.failed() {
            let nic = node_nic(tracer, r);
            tracer.begin_at(nic, "recover.recv", "replaced node", decode_end.as_nanos());
            recvs.push(nic);
        }
        tracer.begin_at(dec_nic, "recover.redistribute", "", decode_end.as_nanos());
        for &recv in &recvs {
            let flow = tracer.flow_start_at(dec_nic, "p2p.restore", total_end.as_nanos());
            tracer.flow_end_at(recv, flow, "p2p.restore", total_end.as_nanos());
        }
        tracer.end_at(dec_nic, total_end.as_nanos());
        for &recv in &recvs {
            tracer.end_at(recv, total_end.as_nanos());
        }
    }
    timing
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecc_dnn::{GpuSpec, ModelConfig, ParallelismSpec, TrainingTimeModel};

    fn paper_setup() -> (ClusterSpec, EcCheckConfig, TimingConstants) {
        (ClusterSpec::paper_testbed(), EcCheckConfig::paper_defaults(), TimingConstants::default())
    }

    fn shard(model: &ModelConfig) -> u64 {
        let par = ParallelismSpec::new(4, 4, 1).unwrap();
        model.shard_bytes(&par)
    }

    #[test]
    fn save_total_grows_with_model_size() {
        let (spec, cfg, consts) = paper_setup();
        let small =
            save_timing(&spec, &cfg, shard(&ModelConfig::gpt2(1600, 32, 48)), None, &consts);
        let large =
            save_timing(&spec, &cfg, shard(&ModelConfig::gpt2(5120, 40, 64)), None, &consts);
        assert!(large.total > small.total);
        assert!(large.stall() > small.stall());
    }

    #[test]
    fn stall_is_a_small_fraction_of_total() {
        // Fig. 11: step 1 blocks briefly; step 3 dominates but is async.
        let (spec, cfg, consts) = paper_setup();
        let t = save_timing(&spec, &cfg, shard(&ModelConfig::gpt2(2560, 40, 64)), None, &consts);
        assert!(t.step3_pipeline > t.stall());
        assert!(t.step2_broadcast < t.step1_offload);
    }

    #[test]
    fn pipeline_beats_sequential_stages() {
        let (spec, cfg, consts) = paper_setup();
        let s = shard(&ModelConfig::gpt2(2560, 40, 64));
        let t = save_timing(&spec, &cfg, s, None, &consts);
        // A non-pipelined step 3 would be the sum of all three stages'
        // serial totals; the pipeline must be strictly better than that
        // for multi-packet payloads.
        let packets = s.div_ceil(cfg.packet_size() as u64);
        assert!(packets > 3, "need a multi-buffer payload");
        // Reconstruct the per-packet stage durations from the model's
        // own parameters: an unpipelined step 3 pays encode + comm per
        // packet serially; the pipeline overlaps encode under comm.
        let g = spec.gpus_per_node();
        let m = cfg.m() as u64;
        let enc = (cfg.packet_size() as u64 * m) as f64
            / (consts.coding_rate_per_thread * cfg.coding_threads() as f64);
        let comm = spec.nic().shared(g).transfer_time(cfg.packet_size() as u64 * m).as_secs_f64();
        let serial_total = (enc + comm) * packets as f64;
        let pipelined = t.step3_pipeline.as_secs_f64();
        assert!(
            pipelined < serial_total * 0.99,
            "pipeline ({pipelined:.3}s) should beat serial ({serial_total:.3}s)"
        );
    }

    #[test]
    fn idle_slot_scheduling_defers_communication() {
        let (spec, cfg, consts) = paper_setup();
        let model = ModelConfig::gpt2(2560, 40, 64);
        let par = ParallelismSpec::new(4, 4, 1).unwrap();
        let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), spec.nic()).unwrap();
        let profile = tm.profile(200);
        let s = shard(&model);
        let free = save_timing(&spec, &cfg, s, None, &consts);
        let gated = save_timing(&spec, &cfg, s, Some(&profile), &consts);
        assert!(gated.total >= free.total, "idle gating can only delay completion");
        // But the stall (blocking part) is identical: deferral only
        // affects the asynchronous stage.
        assert_eq!(gated.stall(), free.stall());
    }

    #[test]
    fn per_worker_cost_is_scale_invariant() {
        // §V-F: communication per device is m·s — so with fixed shard
        // size, save time stays flat as the cluster grows (Fig. 14's
        // flat ECCheck curve).
        let consts = TimingConstants::default();
        let s = 500 << 20; // 500 MB per worker
        let small_spec = ClusterSpec::v100_scalability(4, 1);
        let big_spec = ClusterSpec::v100_scalability(4, 8);
        let cfg = EcCheckConfig::paper_defaults();
        let t_small = save_timing(&small_spec, &cfg, s, None, &consts);
        let t_big = save_timing(&big_spec, &cfg, s, None, &consts);
        // NIC sharing among g workers is the only growth term; totals
        // stay within one order of magnitude and the blocking stall is
        // identical.
        assert_eq!(t_small.step1_offload, t_big.step1_offload);
        let ratio = t_big.total.as_secs_f64() / t_small.total.as_secs_f64();
        assert!(ratio < 8.5, "per-worker time should not blow up: ratio {ratio}");
    }

    #[test]
    fn recovery_resend_is_faster_than_decode() {
        let (spec, cfg, consts) = paper_setup();
        let s = shard(&ModelConfig::gpt2(2560, 40, 64));
        let a = recovery_timing(&spec, &cfg, s, &FailureScenario::fig13a(), &consts);
        let b = recovery_timing(&spec, &cfg, s, &FailureScenario::fig13b(), &consts);
        assert_eq!(a.workflow, RecoveryWorkflow::Resend);
        assert_eq!(b.workflow, RecoveryWorkflow::Decode);
        assert!(a.total < b.total, "resend {:?} should beat decode {:?}", a.total, b.total);
    }

    #[test]
    fn recovery_is_much_faster_than_remote_reload() {
        // The paper's 13.9× headline: in-memory recovery vs reading the
        // whole checkpoint back over 5 Gbps.
        let (spec, cfg, consts) = paper_setup();
        let model = ModelConfig::gpt2(2560, 40, 64);
        let s = shard(&model);
        let b = recovery_timing(&spec, &cfg, s, &FailureScenario::fig13b(), &consts);
        let remote_reload = spec.remote().transfer_time(model.checkpoint_bytes());
        let speedup = remote_reload.as_secs_f64() / b.total.as_secs_f64();
        assert!(speedup > 4.0, "expected a large speedup, got {speedup:.1}x");
    }

    #[test]
    fn trace_save_timing_renders_the_model_timeline() {
        let (spec, cfg, consts) = paper_setup();
        let model = ModelConfig::gpt2(2560, 40, 64);
        let par = ParallelismSpec::new(4, 4, 1).unwrap();
        let tm = TrainingTimeModel::new(model, par, GpuSpec::a100_40g(), spec.nic()).unwrap();
        let profile = tm.profile(200);
        let s = shard(&model);

        let (tracer, _clock) = ecc_trace::Tracer::with_manual_clock();
        let timing = trace_save_timing(&tracer, &spec, &cfg, s, Some(&profile), &consts);
        assert_eq!(timing, save_timing(&spec, &cfg, s, Some(&profile), &consts));

        let json = tracer.chrome_trace_json();
        let stats = ecc_trace::validate_chrome_trace(&json).expect("valid trace");
        assert!(stats.spans > 0);
        // One p2p arrow per (data node, parity node) pair.
        assert_eq!(stats.flows % (cfg.k() * cfg.m()), 0);
        assert!(stats.flows >= cfg.k() * cfg.m());
        // Every node appears as its own process, plus the driver's
        // train-comm context track.
        assert!(stats.processes > spec.nodes());
        for needle in
            ["save.offload", "save.headers", "nic.burst", "p2p.recv", "train.comm", "pkt0"]
        {
            assert!(json.contains(needle), "trace should mention {needle}");
        }
    }

    #[test]
    fn trace_recovery_timing_renders_both_workflows() {
        let (spec, cfg, consts) = paper_setup();
        let s = shard(&ModelConfig::gpt2(2560, 40, 64));
        for (scenario, needles) in [
            (FailureScenario::fig13a(), vec!["recover.resend", "recover.recv", "p2p.resend"]),
            (
                FailureScenario::fig13b(),
                vec!["recover.gather", "recover.decode", "recover.redistribute", "p2p.chunk"],
            ),
        ] {
            let (tracer, _clock) = ecc_trace::Tracer::with_manual_clock();
            let timing = trace_recovery_timing(&tracer, &spec, &cfg, s, &scenario, &consts);
            assert_eq!(timing, recovery_timing(&spec, &cfg, s, &scenario, &consts));
            let json = tracer.chrome_trace_json();
            let stats = ecc_trace::validate_chrome_trace(&json).expect("valid trace");
            assert!(stats.flows > 0, "{:?} should draw arrows", timing.workflow);
            for needle in needles {
                assert!(
                    json.contains(needle),
                    "{:?} trace should mention {needle}",
                    timing.workflow
                );
            }
        }
    }

    #[test]
    fn trace_save_timing_is_deterministic() {
        let (spec, cfg, consts) = paper_setup();
        let s = shard(&ModelConfig::gpt2(1600, 32, 48));
        let render = || {
            let (tracer, _clock) = ecc_trace::Tracer::with_manual_clock();
            trace_save_timing(&tracer, &spec, &cfg, s, None, &consts);
            tracer.chrome_trace_json()
        };
        assert_eq!(render(), render(), "same model, same bytes");
    }

    #[test]
    #[should_panic(expected = "at most m nodes")]
    fn too_many_failures_panic() {
        let (spec, cfg, consts) = paper_setup();
        let scenario = FailureScenario::new(vec![0, 1, 2]);
        let _ = recovery_timing(&spec, &cfg, 1 << 20, &scenario, &consts);
    }
}
